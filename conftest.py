"""Repo-root pytest configuration.

Ensures ``src/`` is importable even when the package has not been
pip-installed (offline environments without the ``wheel`` package cannot
build PEP-517 editable installs).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
