"""Shared fixtures: small, fast machine configurations and traces."""

import pytest

from repro.common.config import default_system
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile


@pytest.fixture
def small_config():
    """A heavily scaled-down single-core machine for unit tests.

    128 MB nominal cache at 1/512 scale -> 64 cache pages; tiny on-die
    caches and a 16-entry L2 TLB (the cache must exceed total TLB reach
    or the tagless design rightly refuses to run).  Everything still
    uses the real code paths.
    """
    import dataclasses

    cfg = default_system(cache_megabytes=128, num_cores=1,
                         capacity_scale=512)
    return dataclasses.replace(cfg, tlb_scale=32)


@pytest.fixture
def small_mp_config():
    """Four-core version of the small machine (512 MB -> 256 pages,
    comfortably above the 4 x 32-entry minimum TLB reach)."""
    import dataclasses

    cfg = default_system(cache_megabytes=512, num_cores=4,
                         capacity_scale=512)
    return dataclasses.replace(cfg, tlb_scale=32)


@pytest.fixture
def tiny_trace():
    """A deterministic ~3k-access trace with a small footprint."""
    profile = spec_profile("sphinx3")
    generator = TraceGenerator(profile, capacity_scale=512)
    return generator.generate(3000)
