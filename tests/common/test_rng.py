"""Deterministic seeding behaviour."""

from repro.common.rng import BASE_SEED, derive_seed, generator_for, seed_for


def test_seed_stable_across_calls():
    assert seed_for("a", 1, 2.5) == seed_for("a", 1, 2.5)


def test_seed_differs_by_any_component():
    base = seed_for("spec", "mcf", 0)
    assert seed_for("spec", "mcf", 1) != base
    assert seed_for("spec", "milc", 0) != base
    assert seed_for("parsec", "mcf", 0) != base


def test_seed_is_63_bit_nonnegative():
    s = seed_for("anything")
    assert 0 <= s < 2**63


def test_derive_seed_stable():
    assert derive_seed(7, "cell", 3) == derive_seed(7, "cell", 3)


def test_derive_seed_sensitive_to_base():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_derive_seed_components_are_positional():
    # NUL-joined components: ("ab", "c") must not collide with ("a", "bc").
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


def test_derive_seed_range():
    assert 0 <= derive_seed(0) < 2**63
    assert 0 <= derive_seed(2**63 - 1, "x", 1, 2.5) < 2**63


def test_seed_for_is_derive_seed_from_base():
    """seed_for is the BASE_SEED specialisation -- the golden stats in
    EXPERIMENTS.md depend on this equivalence staying put."""
    assert seed_for("spec", "mcf", 0) == derive_seed(BASE_SEED, "spec",
                                                     "mcf", 0)


def test_generators_reproduce_streams():
    a = generator_for("x").random(8)
    b = generator_for("x").random(8)
    assert (a == b).all()


def test_generators_independent():
    a = generator_for("x").random(8)
    b = generator_for("y").random(8)
    assert (a != b).any()
