"""Deterministic seeding behaviour."""

from repro.common.rng import generator_for, seed_for


def test_seed_stable_across_calls():
    assert seed_for("a", 1, 2.5) == seed_for("a", 1, 2.5)


def test_seed_differs_by_any_component():
    base = seed_for("spec", "mcf", 0)
    assert seed_for("spec", "mcf", 1) != base
    assert seed_for("spec", "milc", 0) != base
    assert seed_for("parsec", "mcf", 0) != base


def test_seed_is_63_bit_nonnegative():
    s = seed_for("anything")
    assert 0 <= s < 2**63


def test_generators_reproduce_streams():
    a = generator_for("x").random(8)
    b = generator_for("x").random(8)
    assert (a == b).all()


def test_generators_independent():
    a = generator_for("x").random(8)
    b = generator_for("y").random(8)
    assert (a != b).any()
