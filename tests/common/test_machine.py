"""MachineSpec tests: validation, canonicalisation, resolution, files."""

import json

import pytest

from repro.common.config import SystemConfig, default_system
from repro.common.errors import ConfigurationError
from repro.common.machine import (
    DEFAULT_MACHINE,
    FROZEN_PATHS,
    PRESETS,
    MachineSpec,
    build_system,
    coerce_override,
    iter_override_paths,
    parse_assignment,
    system_config_to_dict,
)


class TestOverrideValidation:
    def test_unknown_path_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown override"):
            MachineSpec(overrides={"dram_cache.no_such_knob": 1})

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError, match="no field"):
            MachineSpec(overrides={"nonexistent.thing": 1})

    def test_path_through_scalar_rejected(self):
        with pytest.raises(ConfigurationError, match="not a config section"):
            MachineSpec(overrides={"core.frequency_ghz.deeper": 1.0})

    def test_section_path_rejected(self):
        with pytest.raises(ConfigurationError, match="config section"):
            MachineSpec(overrides={"dram_cache": {}})

    def test_bool_field_rejects_int(self):
        # 1 for gipt_in_package is almost always a typo; require a bool.
        with pytest.raises(ConfigurationError, match="expects a bool"):
            MachineSpec(overrides={"dram_cache.gipt_in_package": 1})

    def test_int_field_rejects_bool_and_float(self):
        with pytest.raises(ConfigurationError, match="expects an int"):
            MachineSpec(overrides={"core.rob_entries": True})
        with pytest.raises(ConfigurationError, match="expects an int"):
            MachineSpec(overrides={"core.rob_entries": 96.5})

    def test_str_field_rejects_number(self):
        with pytest.raises(ConfigurationError, match="expects a string"):
            MachineSpec(overrides={"core.model": 3})

    def test_float_field_canonicalises_int(self):
        spec = MachineSpec(overrides={"core.frequency_ghz": 4})
        value = dict(spec.overrides)["core.frequency_ghz"]
        assert isinstance(value, float) and value == 4.0

    @pytest.mark.parametrize("path", sorted(FROZEN_PATHS))
    def test_frozen_paths_rejected_with_reason(self, path):
        with pytest.raises(ConfigurationError, match="frozen"):
            coerce_override(path, 1)

    def test_duplicate_override_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            MachineSpec(overrides=(("core.model", "window"),
                                   ("core.model", "mlp")))

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="preset"):
            MachineSpec(preset="skylake")

    def test_bad_value_fails_eagerly(self):
        # The value passes type checks but violates a config invariant;
        # construction (not a worker process) must reject it.
        with pytest.raises(ConfigurationError):
            MachineSpec(overrides={"core.model": "oracle"})
        with pytest.raises(ConfigurationError):
            MachineSpec(overrides={"l1.hit_cycles": 0})

    def test_iter_override_paths_excludes_frozen(self):
        paths = list(iter_override_paths())
        assert "dram_cache.gipt_in_package" in paths
        assert "core.model" in paths
        for frozen in FROZEN_PATHS:
            assert frozen not in paths


class TestCanonicalisation:
    def test_hash_stable_across_key_order(self):
        a = MachineSpec(overrides=(("core.model", "window"),
                                   ("dram_cache.gipt_in_package", True)))
        b = MachineSpec(overrides=(("dram_cache.gipt_in_package", True),
                                   ("core.model", "window")))
        assert a == b
        assert a.spec_hash() == b.spec_hash()
        assert a.canonical() == b.canonical()

    def test_hash_stable_across_int_float_spelling(self):
        a = MachineSpec(overrides={"core.frequency_ghz": 4})
        b = MachineSpec(overrides={"core.frequency_ghz": 4.0})
        assert a.spec_hash() == b.spec_hash()

    def test_distinct_specs_hash_differently(self):
        assert (MachineSpec().spec_hash()
                != MachineSpec(preset="window-core").spec_hash())

    def test_is_default(self):
        assert MachineSpec().is_default
        assert DEFAULT_MACHINE.is_default
        assert not MachineSpec(preset="gipt-in-package").is_default
        assert not MachineSpec(
            overrides={"core.model": "window"}
        ).is_default


class TestResolution:
    def test_default_resolution_is_identity(self):
        base = default_system()
        assert MachineSpec().resolve(base) is base

    def test_override_reaches_nested_field(self):
        config = MachineSpec(
            overrides={"dram_cache.gipt_in_package": True}
        ).resolve(default_system())
        assert config.dram_cache.gipt_in_package is True
        # Everything else untouched.
        assert config.dram_cache.replacement == "fifo"
        assert config.core.model == "mlp"

    def test_preset_bundle_applies(self):
        config = MachineSpec(preset="window-core").resolve(default_system())
        assert config.core.model == "window"

    def test_user_override_wins_over_preset(self):
        spec = MachineSpec(preset="window-core",
                           overrides={"core.model": "mlp"})
        assert spec.resolve(default_system()).core.model == "mlp"

    def test_every_preset_resolves(self):
        for name in PRESETS:
            assert isinstance(
                MachineSpec(preset=name).resolve(default_system()),
                SystemConfig,
            )

    def test_build_system_default_is_default_system(self):
        assert build_system(cache_megabytes=512, num_cores=1,
                            capacity_scale=128) == default_system(
            cache_megabytes=512, num_cores=1, capacity_scale=128)

    def test_build_system_applies_machine(self):
        config = build_system(
            machine=MachineSpec(overrides={"tlb.walk_cycles": 99}),
            cache_megabytes=512,
        )
        assert config.tlb.walk_cycles == 99

    def test_system_config_to_dict_nests(self):
        data = system_config_to_dict(default_system())
        assert data["dram_cache"]["gipt_in_package"] is False
        assert data["l1"]["hit_cycles"] == 2


class TestSerialization:
    def test_dict_round_trip(self):
        spec = MachineSpec(preset="window-core",
                           overrides={"dram_cache.gipt_in_package": True})
        assert MachineSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            MachineSpec.from_dict({"preset": "table3", "typo": 1})

    def test_json_file_round_trip(self, tmp_path):
        spec = MachineSpec(overrides={"core.model": "window",
                                      "core.rob_entries": 96})
        path = tmp_path / "machine.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert MachineSpec.from_file(str(path)) == spec

    def test_toml_file_round_trip(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "machine.toml"
        path.write_text(
            'preset = "window-core"\n'
            "[overrides]\n"
            '"dram_cache.gipt_in_package" = true\n'
        )
        spec = MachineSpec.from_file(str(path))
        assert spec.preset == "window-core"
        assert dict(spec.overrides) == {"dram_cache.gipt_in_package": True}

    def test_bad_json_reported_as_configuration_error(self, tmp_path):
        path = tmp_path / "machine.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            MachineSpec.from_file(str(path))


class TestAssignments:
    def test_parse_assignment_types(self):
        assert parse_assignment("dram_cache.gipt_in_package=true") == (
            "dram_cache.gipt_in_package", True)
        assert parse_assignment("core.rob_entries=96") == (
            "core.rob_entries", 96)
        # Bare strings need no quoting.
        assert parse_assignment("core.model=window") == (
            "core.model", "window")

    def test_parse_assignment_requires_path_and_value(self):
        for text in ("core.model", "=window", "core.model="):
            with pytest.raises(ConfigurationError, match="PATH=VALUE"):
                parse_assignment(text)

    def test_with_assignments_layers_last_wins(self):
        spec = MachineSpec(overrides={"core.model": "window"})
        merged = spec.with_assignments(
            ["core.model=mlp", "dram_cache.gipt_in_package=true"]
        )
        assert dict(merged.overrides) == {
            "core.model": "mlp",
            "dram_cache.gipt_in_package": True,
        }
        assert merged.preset == spec.preset
