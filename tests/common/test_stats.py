"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import StatGroup, geometric_mean, merge_stat_dicts


class TestStatGroup:
    def test_add_and_get(self):
        g = StatGroup("x")
        g.add("hits")
        g.add("hits", 2.5)
        assert g["hits"] == pytest.approx(3.5)

    def test_missing_key_is_zero(self):
        assert StatGroup("x")["nothing"] == 0.0

    def test_set_overwrites(self):
        g = StatGroup("x")
        g.add("gauge", 5)
        g.set("gauge", 2)
        assert g["gauge"] == 2

    def test_ratio(self):
        g = StatGroup("x")
        g.add("hits", 3)
        g.add("total", 4)
        assert g.ratio("hits", "total") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        g = StatGroup("x")
        g.add("hits", 3)
        assert g.ratio("hits", "absent") == 0.0

    def test_as_dict_with_prefix(self):
        g = StatGroup("x")
        g.add("a", 1)
        assert g.as_dict("p_") == {"p_a": 1.0}

    def test_merge(self):
        a, b = StatGroup("a"), StatGroup("b")
        a.add("k", 1)
        b.add("k", 2)
        b.add("only_b", 5)
        a.merge(b)
        assert a["k"] == 3
        assert a["only_b"] == 5

    def test_reset(self):
        g = StatGroup("x")
        g.add("k", 9)
        g.reset()
        assert g["k"] == 0.0
        assert "k" not in g


class TestMergeStatDicts:
    def test_merges_keywise(self):
        merged = merge_stat_dicts([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert merged == {"a": 4.0, "b": 2.0}

    def test_empty(self):
        assert merge_stat_dicts([]) == {}


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_returns_zero(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=20),
           st.floats(min_value=0.1, max_value=10.0))
    def test_scale_equivariance(self, values, k):
        """gm(k * xs) == k * gm(xs): the property that makes geometric
        means the right aggregate for normalised speedups."""
        lhs = geometric_mean([k * v for v in values])
        rhs = k * geometric_mean(values)
        assert math.isclose(lhs, rhs, rel_tol=1e-9)
