"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    Histogram,
    StatGroup,
    geometric_mean,
    merge_stat_dicts,
)


class TestStatGroup:
    def test_add_and_get(self):
        g = StatGroup("x")
        g.add("hits")
        g.add("hits", 2.5)
        assert g["hits"] == pytest.approx(3.5)

    def test_missing_key_is_zero(self):
        assert StatGroup("x")["nothing"] == 0.0

    def test_set_overwrites(self):
        g = StatGroup("x")
        g.add("gauge", 5)
        g.set("gauge", 2)
        assert g["gauge"] == 2

    def test_ratio(self):
        g = StatGroup("x")
        g.add("hits", 3)
        g.add("total", 4)
        assert g.ratio("hits", "total") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        g = StatGroup("x")
        g.add("hits", 3)
        assert g.ratio("hits", "absent") == 0.0

    def test_as_dict_with_prefix(self):
        g = StatGroup("x")
        g.add("a", 1)
        assert g.as_dict("p_") == {"p_a": 1.0}

    def test_merge(self):
        a, b = StatGroup("a"), StatGroup("b")
        a.add("k", 1)
        b.add("k", 2)
        b.add("only_b", 5)
        a.merge(b)
        assert a["k"] == 3
        assert a["only_b"] == 5

    def test_reset(self):
        g = StatGroup("x")
        g.add("k", 9)
        g.reset()
        assert g["k"] == 0.0
        assert "k" not in g

    def test_add_after_set_accumulates(self):
        # set() establishes a gauge baseline; add() keeps counting on top
        # of it.  The two are the same counter namespace, not two kinds.
        g = StatGroup("x")
        g.set("gauge", 10)
        g.add("gauge", 2)
        assert g["gauge"] == 12

    def test_set_defines_membership(self):
        g = StatGroup("x")
        g.set("gauge", 0.0)
        assert "gauge" in g  # explicitly set, even to zero
        assert "other" not in g

    def test_merge_sums_gauges_too(self):
        # merge() is additive for *every* key: per-core groups merged at
        # report time sum their gauges (e.g. occupancy per device), so a
        # gauge meant to be machine-global must live in one group only.
        a, b = StatGroup("a"), StatGroup("b")
        a.set("occupancy", 3)
        b.set("occupancy", 4)
        a.merge(b)
        assert a["occupancy"] == 7

    def test_merge_does_not_alias_source(self):
        a, b = StatGroup("a"), StatGroup("b")
        b.add("k", 2)
        a.merge(b)
        b.add("k", 5)
        assert a["k"] == 2

    def test_as_dict_is_a_snapshot(self):
        g = StatGroup("x")
        g.add("k", 1)
        snapshot = g.as_dict()
        g.add("k", 1)
        assert snapshot == {"k": 1.0}


class TestMergeStatDicts:
    def test_merges_keywise(self):
        merged = merge_stat_dicts([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert merged == {"a": 4.0, "b": 2.0}

    def test_empty(self):
        assert merge_stat_dicts([]) == {}

    def test_single_dict_is_copied(self):
        source = {"a": 1.0}
        merged = merge_stat_dicts([source])
        merged["a"] = 9.0
        assert source == {"a": 1.0}

    def test_matches_statgroup_merge(self):
        # The flat-dict path and the StatGroup path are two routes to the
        # same aggregate; they must agree key-for-key.
        a, b = StatGroup("a"), StatGroup("b")
        a.add("hits", 1)
        a.set("occupancy", 3)
        b.add("hits", 2)
        b.set("occupancy", 4)
        flat = merge_stat_dicts([a.as_dict(), b.as_dict()])
        a.merge(b)
        assert flat == a.as_dict()


class TestHistogram:
    def test_bucket_placement(self):
        # Bucket i holds [2^(i-1), 2^i): 0.5 -> 0, 1 -> 1, 3 -> 2,
        # 900 -> 10 (512 <= 900 < 1024).
        h = Histogram("lat")
        for value in (0.5, 1.0, 3.0, 900.0):
            h.observe(value)
        assert h.count == 4
        assert h.buckets[0] == 1
        assert h.buckets[1] == 1
        assert h.buckets[2] == 1
        assert h.buckets[10] == 1

    def test_zero_and_negative_go_to_bucket_zero(self):
        h = Histogram("lat")
        h.observe(0.0)
        h.observe(-5.0)
        assert h.buckets[0] == 2

    def test_last_bucket_is_open_ended(self):
        h = Histogram("lat", num_buckets=4)
        h.observe(1e18)
        assert h.buckets[3] == 1
        assert h.max == 1e18

    def test_mean_min_max(self):
        h = Histogram("lat")
        for value in (10.0, 20.0, 30.0):
            h.observe(value)
        assert h.mean() == pytest.approx(20.0)
        assert h.min == 10.0
        assert h.max == 30.0

    def test_empty_mean_is_zero(self):
        assert Histogram("lat").mean() == 0.0

    def test_percentile_bucket_resolution(self):
        h = Histogram("lat")
        for _ in range(99):
            h.observe(4.0)  # bucket 3
        h.observe(1000.0)  # bucket 10
        assert h.percentile(0.5) == 8.0  # 2^3
        assert h.percentile(1.0) == 2.0 ** 10

    def test_percentile_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(0.0)
        with pytest.raises(ValueError):
            Histogram("lat").percentile(1.5)
        with pytest.raises(ValueError):
            Histogram("lat").percentile(-0.1)

    def test_percentile_empty_is_zero(self):
        h = Histogram("lat")
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 0.0

    def test_percentile_fraction_one_is_top_occupied_bucket(self):
        h = Histogram("lat")
        h.observe(1.0)    # bucket 1
        h.observe(600.0)  # bucket 10
        assert h.percentile(1.0) == 2.0 ** 10

    def test_percentile_single_occupied_bucket(self):
        # Every fraction lands in the one occupied bucket.
        h = Histogram("lat")
        for _ in range(5):
            h.observe(5.0)  # bucket 3: [4, 8)
        for fraction in (1e-9, 0.25, 0.5, 0.99, 1.0):
            assert h.percentile(fraction) == 8.0

    def test_percentile_tiny_fraction_hits_first_occupied_bucket(self):
        h = Histogram("lat")
        h.observe(0.0)
        h.observe(1000.0)
        assert h.percentile(1e-9) == 1.0  # 2^0: the below-1 bucket

    def test_merge(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.observe(2.0)
        b.observe(100.0)
        a.merge(b)
        assert a.count == 2
        assert a.min == 2.0
        assert a.max == 100.0
        assert a.mean() == pytest.approx(51.0)

    def test_merge_empty_keeps_extrema(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.observe(7.0)
        a.merge(b)
        assert a.min == 7.0 and a.max == 7.0

    def test_merge_rejects_bucket_mismatch(self):
        with pytest.raises(ValueError):
            Histogram("a", num_buckets=8).merge(Histogram("b", num_buckets=9))

    def test_to_dict_roundtrip(self):
        h = Histogram("lat")
        for value in (1.0, 5.0, 900.0):
            h.observe(value)
        clone = Histogram.from_dict(h.to_dict())
        assert clone.to_dict() == h.to_dict()
        assert clone.buckets == h.buckets

    def test_to_dict_empty_reports_zero_extrema(self):
        data = Histogram("lat").to_dict()
        assert data["min"] == 0.0 and data["max"] == 0.0
        assert data["count"] == 0

    def test_reset(self):
        h = Histogram("lat")
        h.observe(3.0)
        h.reset()
        assert h.count == 0
        assert sum(h.buckets) == 0
        assert h.to_dict()["min"] == 0.0

    def test_rejects_too_few_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", num_buckets=1)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e12), min_size=1,
                    max_size=50))
    def test_count_and_bounds_invariants(self, values):
        h = Histogram("lat")
        for value in values:
            h.observe(value)
        assert h.count == len(values)
        assert sum(h.buckets) == len(values)
        assert h.min == min(values)
        assert h.max == max(values)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e12), min_size=1,
                    max_size=30),
           st.lists(st.floats(min_value=0.0, max_value=1e12), min_size=0,
                    max_size=30),
           st.floats(min_value=0.001, max_value=1.0))
    def test_merge_then_percentile_matches_single_pass(self, left, right,
                                                       fraction):
        """Merging histograms then taking a percentile must equal
        observing the concatenated stream into one histogram."""
        a, b, combined = (Histogram("lat"), Histogram("lat"),
                          Histogram("lat"))
        for value in left:
            a.observe(value)
            combined.observe(value)
        for value in right:
            b.observe(value)
            combined.observe(value)
        a.merge(b)
        assert a.buckets == combined.buckets
        assert a.percentile(fraction) == combined.percentile(fraction)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_returns_zero(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=20),
           st.floats(min_value=0.1, max_value=10.0))
    def test_scale_equivariance(self, values, k):
        """gm(k * xs) == k * gm(xs): the property that makes geometric
        means the right aggregate for normalised speedups."""
        lhs = geometric_mean([k * v for v in values])
        rhs = k * geometric_mean(values)
        assert math.isclose(lhs, rhs, rel_tol=1e-9)
