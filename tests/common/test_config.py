"""Configuration presets must match the paper's Tables 3, 4 and 6."""

import dataclasses

import pytest

from repro.common.addressing import BYTES_PER_GB, BYTES_PER_MB
from repro.common.config import (
    DRAMCacheConfig,
    OnDieCacheConfig,
    SRAMTagConfig,
    TLBConfig,
    default_system,
    tag_array_parameters,
)
from repro.common.errors import ConfigurationError


class TestTable3:
    """Architectural parameters of Table 3."""

    def test_core(self):
        cfg = default_system()
        assert cfg.core.frequency_ghz == 3.0
        assert cfg.num_cores == 4

    def test_tlbs(self):
        cfg = default_system()
        assert cfg.tlb.l1_entries == 32
        assert cfg.tlb.l2_entries == 512

    def test_l1_cache(self):
        cfg = default_system()
        assert cfg.l1.capacity_bytes == 32 * 1024
        assert cfg.l1.associativity == 4
        assert cfg.l1.line_bytes == 64

    def test_l2_cache(self):
        cfg = default_system()
        assert cfg.l2.capacity_bytes == 2 * BYTES_PER_MB
        assert cfg.l2.associativity == 16
        assert cfg.l2.hit_cycles == 6

    def test_in_package_geometry(self):
        d = default_system().in_package
        assert d.channels == 1
        assert d.ranks == 2
        assert d.banks_per_rank == 16
        assert d.bus_bytes == 16  # 128 bits
        assert d.transfers_per_ns == pytest.approx(3.2)  # DDR 3.2 GT/s

    def test_off_package_geometry(self):
        d = default_system().off_package
        assert d.channels == 1
        assert d.ranks == 2
        assert d.banks_per_rank == 64
        assert d.bus_bytes == 8  # 64 bits
        assert d.transfers_per_ns == pytest.approx(1.6)

    def test_bandwidth_ratio_is_4x(self):
        """The paper: in-package bandwidth is 4x off-package."""
        cfg = default_system()
        ratio = cfg.in_package.bytes_per_ns / cfg.off_package.bytes_per_ns
        assert ratio == pytest.approx(4.0)


class TestTable4:
    """DRAM timing and energy parameters of Table 4."""

    def test_in_package_timing(self):
        d = default_system().in_package
        assert (d.trcd_ns, d.taa_ns, d.tras_ns, d.trp_ns) == (8, 10, 22, 14)

    def test_off_package_timing(self):
        d = default_system().off_package
        assert (d.trcd_ns, d.taa_ns, d.tras_ns, d.trp_ns) == (14, 14, 35, 14)

    def test_in_package_energy(self):
        e = default_system().in_package_energy
        assert e.io_pj_per_bit == pytest.approx(2.4)
        assert e.rw_pj_per_bit == pytest.approx(4.0)
        assert e.act_pre_nj == pytest.approx(15.0)

    def test_off_package_energy(self):
        e = default_system().off_package_energy
        assert e.io_pj_per_bit == pytest.approx(20.0)
        assert e.rw_pj_per_bit == pytest.approx(13.0)
        assert e.act_pre_nj == pytest.approx(15.0)

    def test_access_energy_formula(self):
        e = default_system().in_package_energy
        # 64 bytes = 512 bits at (2.4 + 4.0) pJ/b = 3276.8 pJ = ~3.28 nJ.
        assert e.access_nj(64) == pytest.approx(3.2768)
        assert e.access_nj(64, activations=1) == pytest.approx(18.2768)


class TestTable6:
    """SRAM tag array size/latency as a function of cache size."""

    @pytest.mark.parametrize(
        "cache_mb,tag_mb,cycles",
        [(128, 0.5, 5), (256, 1.0, 6), (512, 2.0, 9), (1024, 4.0, 11)],
    )
    def test_exact_table_entries(self, cache_mb, tag_mb, cycles):
        got_mb, got_cycles = tag_array_parameters(cache_mb * BYTES_PER_MB)
        assert got_mb == pytest.approx(tag_mb)
        assert got_cycles == cycles

    def test_interpolation_monotone(self):
        sizes = [128, 192, 256, 384, 512, 768, 1024]
        latencies = [
            tag_array_parameters(mb * BYTES_PER_MB)[1] for mb in sizes
        ]
        assert latencies == sorted(latencies)

    def test_extrapolation_beyond_1gb_grows(self):
        mb4, cyc4 = tag_array_parameters(4 * BYTES_PER_GB)
        assert mb4 == pytest.approx(16.0)
        assert cyc4 > 11

    def test_sram_tag_config_properties(self):
        cfg = SRAMTagConfig(cache_bytes=BYTES_PER_GB)
        assert cfg.tag_megabytes == pytest.approx(4.0)
        assert cfg.access_cycles == 11
        assert cfg.probe_nj > 0
        assert cfg.leakage_watts == pytest.approx(1.0)


class TestValidation:
    def test_bad_tlb_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            TLBConfig(l1_entries=64, l2_entries=32)

    def test_bad_cache_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            OnDieCacheConfig(capacity_bytes=1000, associativity=3)

    def test_bad_replacement_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMCacheConfig(replacement="mru")

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMCacheConfig(alpha=0)


class TestScaling:
    def test_cache_pages_scale(self):
        cfg = default_system(cache_megabytes=1024, capacity_scale=64)
        assert cfg.cache_pages == 1024 * BYTES_PER_MB // (4096 * 64)

    def test_scaled_ondie_keeps_geometry_valid(self):
        cfg = default_system()
        for scaled in (cfg.scaled_l1, cfg.scaled_l2):
            assert scaled.capacity_bytes % (
                scaled.line_bytes * scaled.associativity
            ) == 0
            assert scaled.num_sets >= 1

    def test_scaled_tlb_never_below_l1(self):
        cfg = dataclasses.replace(default_system(), tlb_scale=10_000)
        assert cfg.scaled_tlb.l2_entries >= cfg.scaled_tlb.l1_entries

    def test_with_cache_capacity(self):
        cfg = default_system().with_cache_capacity(256 * BYTES_PER_MB)
        assert cfg.dram_cache.nominal_capacity_bytes == 256 * BYTES_PER_MB

    def test_with_replacement(self):
        cfg = default_system().with_replacement("lru")
        assert cfg.dram_cache.replacement == "lru"

    def test_sram_tag_uses_nominal_capacity(self):
        """Tag latency must reflect the real 1 GB array, not the scaled
        simulation structure."""
        cfg = default_system(cache_megabytes=1024, capacity_scale=64)
        assert cfg.sram_tag.access_cycles == 11
