"""Configuration presets must match the paper's Tables 3, 4 and 6."""

import dataclasses

import pytest

from repro.common.addressing import BYTES_PER_GB, BYTES_PER_MB
from repro.common.config import (
    DRAMCacheConfig,
    OnDieCacheConfig,
    SRAMTagConfig,
    TLBConfig,
    default_system,
    tag_array_parameters,
)
from repro.common.errors import ConfigurationError


class TestTable3:
    """Architectural parameters of Table 3."""

    def test_core(self):
        cfg = default_system()
        assert cfg.core.frequency_ghz == 3.0
        assert cfg.num_cores == 4

    def test_tlbs(self):
        cfg = default_system()
        assert cfg.tlb.l1_entries == 32
        assert cfg.tlb.l2_entries == 512

    def test_l1_cache(self):
        cfg = default_system()
        assert cfg.l1.capacity_bytes == 32 * 1024
        assert cfg.l1.associativity == 4
        assert cfg.l1.line_bytes == 64

    def test_l2_cache(self):
        cfg = default_system()
        assert cfg.l2.capacity_bytes == 2 * BYTES_PER_MB
        assert cfg.l2.associativity == 16
        assert cfg.l2.hit_cycles == 6

    def test_in_package_geometry(self):
        d = default_system().in_package
        assert d.channels == 1
        assert d.ranks == 2
        assert d.banks_per_rank == 16
        assert d.bus_bytes == 16  # 128 bits
        assert d.transfers_per_ns == pytest.approx(3.2)  # DDR 3.2 GT/s

    def test_off_package_geometry(self):
        d = default_system().off_package
        assert d.channels == 1
        assert d.ranks == 2
        assert d.banks_per_rank == 64
        assert d.bus_bytes == 8  # 64 bits
        assert d.transfers_per_ns == pytest.approx(1.6)

    def test_bandwidth_ratio_is_4x(self):
        """The paper: in-package bandwidth is 4x off-package."""
        cfg = default_system()
        ratio = cfg.in_package.bytes_per_ns / cfg.off_package.bytes_per_ns
        assert ratio == pytest.approx(4.0)


class TestTable4:
    """DRAM timing and energy parameters of Table 4."""

    def test_in_package_timing(self):
        d = default_system().in_package
        assert (d.trcd_ns, d.taa_ns, d.tras_ns, d.trp_ns) == (8, 10, 22, 14)

    def test_off_package_timing(self):
        d = default_system().off_package
        assert (d.trcd_ns, d.taa_ns, d.tras_ns, d.trp_ns) == (14, 14, 35, 14)

    def test_in_package_energy(self):
        e = default_system().in_package_energy
        assert e.io_pj_per_bit == pytest.approx(2.4)
        assert e.rw_pj_per_bit == pytest.approx(4.0)
        assert e.act_pre_nj == pytest.approx(15.0)

    def test_off_package_energy(self):
        e = default_system().off_package_energy
        assert e.io_pj_per_bit == pytest.approx(20.0)
        assert e.rw_pj_per_bit == pytest.approx(13.0)
        assert e.act_pre_nj == pytest.approx(15.0)

    def test_access_energy_formula(self):
        e = default_system().in_package_energy
        # 64 bytes = 512 bits at (2.4 + 4.0) pJ/b = 3276.8 pJ = ~3.28 nJ.
        assert e.access_nj(64) == pytest.approx(3.2768)
        assert e.access_nj(64, activations=1) == pytest.approx(18.2768)


class TestTable6:
    """SRAM tag array size/latency as a function of cache size."""

    @pytest.mark.parametrize(
        "cache_mb,tag_mb,cycles",
        [(128, 0.5, 5), (256, 1.0, 6), (512, 2.0, 9), (1024, 4.0, 11)],
    )
    def test_exact_table_entries(self, cache_mb, tag_mb, cycles):
        got_mb, got_cycles = tag_array_parameters(cache_mb * BYTES_PER_MB)
        assert got_mb == pytest.approx(tag_mb)
        assert got_cycles == cycles

    def test_interpolation_monotone(self):
        sizes = [128, 192, 256, 384, 512, 768, 1024]
        latencies = [
            tag_array_parameters(mb * BYTES_PER_MB)[1] for mb in sizes
        ]
        assert latencies == sorted(latencies)

    def test_extrapolation_beyond_1gb_grows(self):
        mb4, cyc4 = tag_array_parameters(4 * BYTES_PER_GB)
        assert mb4 == pytest.approx(16.0)
        assert cyc4 > 11

    def test_sram_tag_config_properties(self):
        cfg = SRAMTagConfig(cache_bytes=BYTES_PER_GB)
        assert cfg.tag_megabytes == pytest.approx(4.0)
        assert cfg.access_cycles == 11
        assert cfg.probe_nj > 0
        assert cfg.leakage_watts == pytest.approx(1.0)


class TestValidation:
    def test_bad_tlb_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            TLBConfig(l1_entries=64, l2_entries=32)

    def test_bad_cache_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            OnDieCacheConfig(capacity_bytes=1000, associativity=3)

    def test_bad_replacement_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMCacheConfig(replacement="mru")

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMCacheConfig(alpha=0)


class TestScaling:
    def test_cache_pages_scale(self):
        cfg = default_system(cache_megabytes=1024, capacity_scale=64)
        assert cfg.cache_pages == 1024 * BYTES_PER_MB // (4096 * 64)

    def test_scaled_ondie_keeps_geometry_valid(self):
        cfg = default_system()
        for scaled in (cfg.scaled_l1, cfg.scaled_l2):
            assert scaled.capacity_bytes % (
                scaled.line_bytes * scaled.associativity
            ) == 0
            assert scaled.num_sets >= 1

    def test_scaled_tlb_never_below_l1(self):
        cfg = dataclasses.replace(default_system(), tlb_scale=10_000)
        assert cfg.scaled_tlb.l2_entries >= cfg.scaled_tlb.l1_entries

    def test_with_cache_capacity(self):
        cfg = default_system().with_cache_capacity(256 * BYTES_PER_MB)
        assert cfg.dram_cache.nominal_capacity_bytes == 256 * BYTES_PER_MB

    def test_with_replacement(self):
        cfg = default_system().with_replacement("lru")
        assert cfg.dram_cache.replacement == "lru"

    def test_sram_tag_uses_nominal_capacity(self):
        """Tag latency must reflect the real 1 GB array, not the scaled
        simulation structure."""
        cfg = default_system(cache_megabytes=1024, capacity_scale=64)
        assert cfg.sram_tag.access_cycles == 11


class TestScalingFloors:
    """The old silent clamps are now hard errors (PR: config correctness)."""

    def test_cache_pages_floor_raises_not_clamps(self):
        # 16 MB at scale 512 is 8 pages -- below MIN_CACHE_PAGES.  The
        # old max(16, pages) clamp made this silently identical to a
        # 32 MB cache at the same scale.
        with pytest.raises(ConfigurationError, match="simulation floor"):
            default_system(cache_megabytes=16, capacity_scale=512)

    def test_distinct_sweep_points_stay_distinct(self):
        # Just above the floor both points are legal and different.
        small = default_system(cache_megabytes=64, capacity_scale=512)
        large = default_system(cache_megabytes=128, capacity_scale=512)
        assert small.cache_pages == 32
        assert large.cache_pages == 64

    def test_floor_boundary_is_exact(self):
        at_floor = default_system(cache_megabytes=32, capacity_scale=512)
        assert at_floor.cache_pages == 16
        with pytest.raises(ConfigurationError):
            dataclasses.replace(at_floor, capacity_scale=1024)

    def test_off_package_floor_raises(self):
        # Shrink backing memory below 2x the cache: must refuse.
        cfg = default_system(cache_megabytes=1024, capacity_scale=64)
        with pytest.raises(ConfigurationError, match="off-package"):
            dataclasses.replace(
                cfg, off_package_bytes=BYTES_PER_GB
            )

    def test_scale_ondie_floors_at_one_set(self):
        from repro.common.config import _scale_ondie

        base = OnDieCacheConfig(capacity_bytes=32 * 1024, associativity=4,
                                line_bytes=64, hit_cycles=2)
        scaled = _scale_ondie(base, 10**9)
        # One full set survives arbitrary shrinking, geometry intact.
        assert scaled.capacity_bytes == 64 * 4
        assert scaled.num_sets == 1
        assert scaled.capacity_bytes % (
            scaled.line_bytes * scaled.associativity
        ) == 0

    def test_scale_ondie_truncates_to_set_multiple(self):
        from repro.common.config import _scale_ondie

        base = OnDieCacheConfig(capacity_bytes=2 * BYTES_PER_MB,
                                associativity=16, line_bytes=64,
                                hit_cycles=6)
        scaled = _scale_ondie(base, 3)
        floor = base.line_bytes * base.associativity
        assert scaled.capacity_bytes % floor == 0
        assert scaled.capacity_bytes <= base.capacity_bytes // 3

    def test_scaled_tlb_extreme_scale_floors_at_l1(self):
        cfg = dataclasses.replace(default_system(), tlb_scale=10**6)
        assert cfg.scaled_tlb.l2_entries == cfg.scaled_tlb.l1_entries

    def test_scaled_tlb_scale_one_keeps_full_size(self):
        cfg = dataclasses.replace(default_system(), tlb_scale=1)
        assert cfg.scaled_tlb.l2_entries == cfg.tlb.l2_entries


class TestTagArrayExtrapolation:
    def test_below_128mb_shrinks_proportionally(self):
        mb, cycles = tag_array_parameters(64 * BYTES_PER_MB)
        assert mb == pytest.approx(0.25)
        assert 1 <= cycles < 5

    def test_far_below_floor_latency_clamps_at_one(self):
        _mb, cycles = tag_array_parameters(BYTES_PER_MB)
        assert cycles >= 1

    def test_above_1gb_latency_grows_superlinearly(self):
        _mb2, cyc2 = tag_array_parameters(2 * BYTES_PER_GB)
        _mb8, cyc8 = tag_array_parameters(8 * BYTES_PER_GB)
        assert 11 < cyc2 < cyc8

    def test_extrapolated_sizes_stay_positive_and_monotone(self):
        sizes = [8, 32, 64, 128, 1024, 2048, 8192]
        params = [tag_array_parameters(mb * BYTES_PER_MB) for mb in sizes]
        megabytes = [p[0] for p in params]
        cycles = [p[1] for p in params]
        assert all(m > 0 for m in megabytes)
        assert megabytes == sorted(megabytes)
        assert cycles == sorted(cycles)


class TestHitCycleSourceOfTruth:
    """OnDieCacheConfig.hit_cycles is the only on-die latency source."""

    def test_core_config_has_no_hit_cycle_fields(self):
        from repro.common.config import CoreConfig

        names = {f.name for f in dataclasses.fields(CoreConfig)}
        assert "l1_hit_cycles" not in names
        assert "l2_hit_cycles" not in names

    def test_designs_read_cache_config_latencies(self):
        from repro.designs import create_design

        cfg = default_system(cache_megabytes=128, num_cores=1,
                             capacity_scale=512)
        cfg = dataclasses.replace(
            cfg,
            l1=dataclasses.replace(cfg.l1, hit_cycles=4),
            l2=dataclasses.replace(cfg.l2, hit_cycles=9),
        )
        design = create_design("no-l3", cfg)
        assert design._l1_hit_cycles == 4
        assert design._l2_hit_cycles == 9
        # And the hoisted values drive the actual access cost.
        design.access(0, 0, 1, 0, False, 0.0)
        cost = design.access(0, 0, 1, 0, False, 100.0)
        assert cost.cycles == pytest.approx(4.0)

    def test_hit_cycles_validated(self):
        with pytest.raises(ConfigurationError):
            OnDieCacheConfig(capacity_bytes=32 * 1024, associativity=4,
                             hit_cycles=0)
