"""Unit tests for address arithmetic."""

import pytest

from repro.common.addressing import (
    AddressSpace,
    CACHE_LINE_BYTES,
    LINES_PER_PAGE,
    PAGE_BYTES,
    address_of_line,
    address_of_page,
    line_index_in_page,
    line_of_address,
    lines_of_page,
    page_of_address,
    page_of_line,
)


def test_geometry_constants():
    assert PAGE_BYTES == 4096
    assert CACHE_LINE_BYTES == 64
    assert LINES_PER_PAGE == 64


def test_page_of_address_boundaries():
    assert page_of_address(0) == 0
    assert page_of_address(PAGE_BYTES - 1) == 0
    assert page_of_address(PAGE_BYTES) == 1
    assert page_of_address(10 * PAGE_BYTES + 17) == 10


def test_line_of_address_boundaries():
    assert line_of_address(0) == 0
    assert line_of_address(63) == 0
    assert line_of_address(64) == 1


def test_line_index_in_page_wraps_within_page():
    assert line_index_in_page(0) == 0
    assert line_index_in_page(PAGE_BYTES - 1) == LINES_PER_PAGE - 1
    assert line_index_in_page(PAGE_BYTES) == 0


def test_address_page_round_trip():
    for page in (0, 1, 7, 123456):
        assert page_of_address(address_of_page(page)) == page


def test_address_line_round_trip():
    for line in (0, 1, 63, 64, 99999):
        assert line_of_address(address_of_line(line)) == line


def test_lines_of_page_covers_exactly_one_page():
    lines = list(lines_of_page(5))
    assert len(lines) == LINES_PER_PAGE
    assert lines[0] == 5 * LINES_PER_PAGE
    assert all(page_of_line(line) == 5 for line in lines)


def test_page_of_line_inverse_of_lines_of_page():
    assert page_of_line(0) == 0
    assert page_of_line(LINES_PER_PAGE - 1) == 0
    assert page_of_line(LINES_PER_PAGE) == 1


class TestAddressSpace:
    def test_contains_page(self):
        space = AddressSpace(base_page=10, num_pages=5)
        assert not space.contains_page(9)
        assert space.contains_page(10)
        assert space.contains_page(14)
        assert not space.contains_page(15)

    def test_contains_address(self):
        space = AddressSpace(base_page=1, num_pages=1)
        assert space.contains_address(PAGE_BYTES)
        assert space.contains_address(2 * PAGE_BYTES - 1)
        assert not space.contains_address(2 * PAGE_BYTES)

    def test_offset_of_page(self):
        space = AddressSpace(base_page=100, num_pages=10)
        assert space.offset_of_page(100) == 0
        assert space.offset_of_page(109) == 9

    def test_offset_of_page_out_of_range_raises(self):
        space = AddressSpace(base_page=100, num_pages=10)
        with pytest.raises(ValueError):
            space.offset_of_page(110)

    def test_invalid_construction_raises(self):
        with pytest.raises(ValueError):
            AddressSpace(base_page=-1, num_pages=5)
        with pytest.raises(ValueError):
            AddressSpace(base_page=0, num_pages=0)

    def test_num_bytes(self):
        assert AddressSpace(0, 4).num_bytes == 4 * PAGE_BYTES
