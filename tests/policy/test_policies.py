"""Caching-policy layer tests (Section 3.5's flexibility hook)."""

import numpy as np
import pytest

from repro.policy import (
    AlwaysCachePolicy,
    PolicyDecision,
    StaticProfilePolicy,
    TouchCountFilterPolicy,
)
from repro.vm.page_table import PageTableEntry
from repro.workloads.trace import AccessTrace


def pte_for(vpn=1):
    return PageTableEntry(virtual_page=vpn, physical_page=vpn + 100)


class TestAlwaysCache:
    def test_always_caches(self):
        policy = AlwaysCachePolicy()
        for vpn in range(5):
            assert policy.decide(0, vpn, pte_for(vpn), 0.0) \
                is PolicyDecision.CACHE
        assert policy.stats("p_")["p_decisions"] == 5.0


class TestStaticProfile:
    def test_pins_listed_pages(self):
        policy = StaticProfilePolicy({0: [1, 2], 1: [3]})
        assert policy.decide(0, 1, pte_for(1), 0.0) is PolicyDecision.PIN_NC
        assert policy.decide(0, 3, pte_for(3), 0.0) is PolicyDecision.CACHE
        assert policy.decide(1, 3, pte_for(3), 0.0) is PolicyDecision.PIN_NC
        assert policy.nc_page_count == 3

    def test_from_traces(self):
        trace = AccessTrace(
            name="t",
            virtual_pages=np.array([1] * 40 + [2] * 3, dtype=np.int64),
            lines=np.zeros(43, dtype=np.int16),
            writes=np.zeros(43, dtype=bool),
            instruction_gaps=np.full(43, 10, dtype=np.int64),
        )
        policy = StaticProfilePolicy.from_traces({0: trace}, threshold=32)
        assert policy.decide(0, 2, pte_for(2), 0.0) is PolicyDecision.PIN_NC
        assert policy.decide(0, 1, pte_for(1), 0.0) is PolicyDecision.CACHE

    def test_stats(self):
        policy = StaticProfilePolicy({0: [1]})
        policy.decide(0, 1, pte_for(1), 0.0)
        policy.decide(0, 9, pte_for(9), 0.0)
        stats = policy.stats("p_")
        assert stats["p_pinned"] == 1.0
        assert stats["p_cached"] == 1.0


class TestTouchCountFilter:
    def test_bypasses_until_threshold(self):
        policy = TouchCountFilterPolicy(threshold=3)
        assert policy.decide(0, 1, pte_for(), 0.0) is PolicyDecision.BYPASS
        assert policy.decide(0, 1, pte_for(), 1.0) is PolicyDecision.BYPASS
        assert policy.decide(0, 1, pte_for(), 2.0) is PolicyDecision.CACHE
        assert policy.promotions == 1
        assert policy.bypasses == 2

    def test_threshold_one_behaves_like_always(self):
        policy = TouchCountFilterPolicy(threshold=1)
        assert policy.decide(0, 1, pte_for(), 0.0) is PolicyDecision.CACHE

    def test_counters_are_per_page_and_process(self):
        policy = TouchCountFilterPolicy(threshold=2)
        policy.decide(0, 1, pte_for(), 0.0)
        assert policy.decide(1, 1, pte_for(), 0.0) is PolicyDecision.BYPASS
        assert policy.pending_pages() == 2

    def test_decay_halves_counts(self):
        policy = TouchCountFilterPolicy(threshold=4, decay_interval_ns=100.0)
        policy.decide(0, 1, pte_for(), 0.0)
        policy.decide(0, 1, pte_for(), 1.0)  # count 2
        # Past the decay interval: count halves to 1 before incrementing.
        assert policy.decide(0, 1, pte_for(), 500.0) is PolicyDecision.BYPASS
        assert policy.decays == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TouchCountFilterPolicy(threshold=0)
        with pytest.raises(ValueError):
            TouchCountFilterPolicy(decay_interval_ns=0.0)


class TestHandlerIntegration:
    def make_design(self, small_config):
        from repro.designs.tagless_design import TaglessDesign

        return TaglessDesign(small_config)

    def test_bypass_serves_off_package_without_pinning(self, small_config):
        design = self.make_design(small_config)
        design.set_caching_policy(
            TouchCountFilterPolicy(threshold=2, decay_interval_ns=1e12)
        )
        design.access(0, 0, 5, 0, False, 0.0)
        assert design.engine.fills == 0  # bypassed
        pte = design.page_table(0).entry(5)
        assert not pte.non_cacheable  # not pinned: will be reconsidered
        # Push it out of the TLB and touch again: second miss promotes.
        entries = small_config.scaled_tlb.l2_entries
        for i in range(entries + 2):
            design.access(0, 0, 100 + i, 0, False, 1000.0 * (i + 1))
        design.access(0, 0, 5, 1, False, 10**7)
        assert design.engine.fills >= 1

    def test_pin_nc_sets_pte_bit(self, small_config):
        design = self.make_design(small_config)
        design.set_caching_policy(StaticProfilePolicy({0: [5]}))
        design.access(0, 0, 5, 0, False, 0.0)
        assert design.page_table(0).entry(5).non_cacheable
        assert design.engine.fills == 0

    def test_policy_stats_surface(self, small_config):
        design = self.make_design(small_config)
        design.set_caching_policy(AlwaysCachePolicy())
        design.access(0, 0, 5, 0, False, 0.0)
        assert design.stats()["policy_decisions"] == 1.0

    def test_simulator_plumbs_policy(self, small_config, tiny_trace):
        from repro.cpu.multicore import BoundTrace
        from repro.cpu.simulator import Simulator

        policy = TouchCountFilterPolicy(threshold=2)
        result = Simulator(small_config).run(
            "tagless",
            [BoundTrace(0, 0, tiny_trace)],
            caching_policy=policy,
        )
        assert "policy_promotions" in result.stats
        assert result.stats["policy_bypasses"] > 0
