"""Guards for the throughput benchmark's degenerate inputs.

The benchmark lives outside the package (it is a script), so it is
loaded by file path here.
"""

import importlib.util
import os

_BENCH_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks",
    "bench_throughput.py",
)


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_throughput", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_zero_length_run_reports_zero_rate():
    bench = _load_bench()
    args = bench.parse_args([
        "--designs", "no-l3", "--accesses", "0", "--repeat", "1",
        "--no-archive",
    ])
    records = bench.run(args)
    assert records[0]["accesses"] == 0
    assert records[0]["accesses_per_second"] == 0.0
    text = bench.table(records, args)
    assert "nan" not in text
    assert "inf" not in text


def test_rate_guard_handles_zero_elapsed(monkeypatch):
    bench = _load_bench()

    class InstantSimulator:
        def run(self, design_name, bindings, engine="scalar"):
            class Result:
                ipc_sum = 0.0
            return Result()

    # perf_counter frozen: elapsed is exactly zero, the division guard
    # must kick in rather than produce inf/nan.
    monkeypatch.setattr(bench.time, "perf_counter", lambda: 0.0)
    record = bench.time_design("no-l3", InstantSimulator(), [], repeat=1)
    assert record["accesses_per_second"] == 0.0
