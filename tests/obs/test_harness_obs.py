"""Harness observer tests: job lifecycle recording and artifact export."""

import pytest

from repro.harness.jobs import JobResult, JobSpec
from repro.harness.runner import Harness, run_jobs
from repro.obs import load_timeseries
from repro.obs.harness import HarnessObserver


def _spec(**overrides) -> JobSpec:
    base = dict(design="no-l3", workload="sphinx3", workload_kind="spec",
                accesses=500, cache_megabytes=128, num_cores=1,
                capacity_scale=512)
    base.update(overrides)
    return JobSpec(**base)


def _outcome(ok=True, cache="miss", wall=0.25) -> JobResult:
    return JobResult(spec=_spec(), result=None if not ok else object(),
                     error=None if ok else "Boom: bang",
                     wall_time_s=wall, cache_status=cache)


class FakeClock:
    """Deterministic monotonic clock the observer can be driven with."""

    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestHarnessObserver:
    def test_counts_and_columns(self):
        clock = FakeClock()
        observer = HarnessObserver(label="sweep", clock=clock)
        clock.t += 1.0
        observer.job_done(_outcome(cache="hit", wall=0.0))
        clock.t += 2.0
        observer.job_done(_outcome(ok=False, wall=1.5))
        assert observer.done == 2
        assert observer.cache_hits == 1
        assert observer.errors == 1
        assert observer.columns["t_ns"] == [pytest.approx(1e9),
                                            pytest.approx(3e9)]
        assert observer.columns["jobs_done"] == [1.0, 2.0]
        assert observer.columns["job_wall_s"] == [0.0, 1.5]

    def test_job_slices_cover_their_wall_time(self):
        clock = FakeClock()
        observer = HarnessObserver(clock=clock)
        clock.t += 2.0
        observer.job_done(_outcome(wall=0.5))
        slices = [e for e in observer.tracer.events() if e[1] == "X"]
        assert len(slices) == 1
        ts_ns, _ph, _cat, _name, dur_ns, _tid, args = slices[0]
        assert ts_ns == pytest.approx(1.5e9)  # landed at 2s, ran 0.5s
        assert dur_ns == pytest.approx(0.5e9)
        assert args["cache"] == "miss" and args["ok"] is True

    def test_slice_start_clamps_to_run_origin(self):
        # A cache hit "ran" for longer than the observer has existed
        # (clock skew); its slice must not start before t=0.
        observer = HarnessObserver(clock=FakeClock())
        observer.job_done(_outcome(wall=99.0))
        slices = [e for e in observer.tracer.events() if e[1] == "X"]
        assert slices[0][0] == 0.0

    def test_finish_writes_artifacts_and_is_idempotent(self, tmp_path):
        clock = FakeClock()
        observer = HarnessObserver(label="sweep", clock=clock)
        observer.trace_path = str(tmp_path / "h.perfetto.json")
        observer.timeseries_path = str(tmp_path / "h.jsonl")
        clock.t += 1.0
        observer.job_done(_outcome())
        observer.finish()
        observer.finish()  # no double-write, no error
        meta, columns, _ = load_timeseries(observer.timeseries_path)
        assert meta["design"] == "harness"
        assert meta["unit"] == "jobs"
        assert columns["jobs_done"] == [1.0]
        import json

        with open(observer.trace_path) as handle:
            document = json.load(handle)
        names = [e["name"] for e in document["traceEvents"]]
        assert "sweep" in names  # the harness B/E run slice

    def test_run_jobs_reports_to_observer(self, tmp_path):
        observer = HarnessObserver(label="unit")
        outcomes = run_jobs([_spec(accesses=400)], observer=observer)
        assert len(outcomes) == 1 and outcomes[0].ok
        assert observer.done == 1

    def test_harness_dataclass_threads_observer(self):
        observer = HarnessObserver(label="unit")
        harness = Harness(observer=observer)
        harness.run([_spec(accesses=400)])
        assert observer.done == 1
