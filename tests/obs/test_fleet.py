"""Fleet-observability tests: lifecycle ordering, heartbeats, --live.

The pooled runner's per-attempt hooks (``job_dispatched`` /
``job_finished`` / ``worker_heartbeat``) are the substrate everything
in this PR renders from, so their *ordering* under faults is pinned
here: every attempt's finish is preceded by its own dispatch, retried
attempts leave one finish per attempt, timeouts and worker crashes
report their status on the attempt that suffered them, and the
per-job ``job_done`` lands after the job's terminal attempt.  The
LiveMonitor and CompositeObserver tests run hermetically on a fake
clock and an in-memory stream.
"""

import io

import pytest

from repro.harness import JobSpec, run_jobs
from repro.obs.harness import HarnessObserver
from repro.obs.live import CompositeObserver, LiveMonitor

SPECS = [
    JobSpec(design="no-l3", workload="sphinx3", accesses=2_000),
    JobSpec(design="tagless", workload="sphinx3", accesses=2_000),
    JobSpec(design="tagless", workload="libquantum", accesses=2_000),
]

HANG = "hang:tagless/sphinx3"
CRASH = "crash:no-l3/sphinx3"
FLAKY2 = "flaky:tagless/libquantum:2"


class RecordingObserver:
    """Flat hook log: (kind, job index, attempt, payload...)."""

    def __init__(self):
        self.events = []

    def job_dispatched(self, index, spec, attempt, worker_id,
                       queue_wait_s):
        assert queue_wait_s >= 0.0
        self.events.append(("dispatch", index, attempt, worker_id))

    def job_finished(self, index, spec, attempt, worker_id, status,
                     wall_s):
        assert wall_s >= 0.0
        self.events.append(("finish", index, attempt, worker_id, status))

    def job_retry(self, spec, attempt, error):
        self.events.append(("retry", None, attempt, error))

    def job_done(self, outcome):
        self.events.append(("done", outcome.spec.label, None,
                            outcome.status))

    def worker_heartbeat(self, payload):
        self.events.append(("hb", payload["index"], payload["attempt"],
                            payload["worker"]))

    # ------------------------------------------------------------------
    def per_job(self, index):
        return [e for e in self.events
                if e[0] in ("dispatch", "finish") and e[1] == index]


class TestLifecycleOrdering:
    def test_every_finish_follows_its_own_dispatch(self):
        observer = RecordingObserver()
        outcomes = run_jobs(SPECS, jobs=2, timeout_s=60.0,
                            observer=observer)
        assert all(o.ok for o in outcomes)
        for index in range(len(SPECS)):
            events = observer.per_job(index)
            # Exactly one attempt: dispatch then finish, same worker.
            assert [e[0] for e in events] == ["dispatch", "finish"]
            assert events[0][2] == events[1][2] == 0  # attempt 0
            assert events[0][3] == events[1][3]  # same worker id
            assert events[1][4] == "ok"

    def test_retries_leave_one_finish_per_attempt(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", FLAKY2)
        observer = RecordingObserver()
        outcomes = run_jobs(SPECS, jobs=2, timeout_s=60.0, retries=2,
                            observer=observer)
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        events = observer.per_job(2)  # the flaky job
        assert [e[0] for e in events] == ["dispatch", "finish"] * 3
        attempts = [e[2] for e in events]
        assert attempts == [0, 0, 1, 1, 2, 2]
        statuses = [e[4] for e in events if e[0] == "finish"]
        assert statuses == ["error", "error", "ok"]
        retries = [e for e in observer.events if e[0] == "retry"]
        assert [r[2] for r in retries] == [0, 1]
        # The per-job terminal callback lands after the last attempt.
        done_pos = observer.events.index(
            ("done", SPECS[2].label, None, "ok"))
        last_finish = max(i for i, e in enumerate(observer.events)
                          if e[0] == "finish" and e[1] == 2)
        assert done_pos > last_finish

    def test_timeout_status_lands_on_the_hung_attempt(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", HANG)
        observer = RecordingObserver()
        outcomes = run_jobs(SPECS, jobs=2, timeout_s=1.0,
                            observer=observer)
        assert [o.status for o in outcomes] == ["ok", "timeout", "ok"]
        events = observer.per_job(1)
        assert [e[0] for e in events] == ["dispatch", "finish"]
        assert events[1][4] == "timeout"

    def test_crash_status_lands_on_the_dead_workers_attempt(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", CRASH)
        observer = RecordingObserver()
        outcomes = run_jobs(SPECS, jobs=2, timeout_s=60.0,
                            observer=observer)
        assert [o.status for o in outcomes] == ["worker-crashed", "ok",
                                                "ok"]
        events = observer.per_job(0)
        assert [e[0] for e in events] == ["dispatch", "finish"]
        assert events[1][4] == "worker-crashed"

    def test_heartbeats_carry_the_beating_attempts_identity(
            self, monkeypatch):
        # A hung job can do nothing *but* beat: with a 50 ms cadence and
        # a 1 s timeout the worker must get several beats out, each
        # tagged with the job/attempt it was executing.
        monkeypatch.setenv("REPRO_FAULT_INJECT", HANG)
        observer = RecordingObserver()
        run_jobs(SPECS, jobs=2, timeout_s=1.0, heartbeat_s=0.05,
                 observer=observer)
        beats = [e for e in observer.events if e[0] == "hb"]
        assert beats, "no heartbeats arrived during a 1s hang"
        hung_beats = [b for b in beats if b[1] == 1]
        assert hung_beats and all(b[2] == 0 for b in hung_beats)
        # Beats for a job arrive between its dispatch and its finish.
        positions = [i for i, e in enumerate(observer.events)
                     if e[1] == 1 and e[0] in ("dispatch", "finish", "hb")]
        kinds = [observer.events[i][0] for i in positions]
        assert kinds[0] == "dispatch" and kinds[-1] == "finish"
        assert set(kinds[1:-1]) <= {"hb"}


class TestHarnessObserverTracks:
    def test_retried_attempts_leave_exec_slices(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", FLAKY2)
        observer = HarnessObserver(label="unit")
        run_jobs(SPECS, jobs=2, timeout_s=60.0, retries=2,
                 observer=observer)
        execs = [e for e in observer.tracer.events() if e[2] == "exec"
                 and e[3] == SPECS[2].label]
        assert [e[6]["attempt"] for e in execs] == [0, 1, 2]
        assert [e[6]["status"] for e in execs] == ["error", "error", "ok"]
        # Worker tracks exist and are named in the export map.
        assert observer.worker_ids
        names = observer.thread_names()
        assert names[0] == "run"
        for worker_id in observer.worker_ids:
            assert names[worker_id + 1] == f"worker {worker_id}"

    def test_queue_wait_slices_precede_exec_on_same_track(self):
        observer = HarnessObserver(label="unit")
        run_jobs(SPECS, jobs=1, timeout_s=60.0, observer=observer)
        events = observer.tracer.events()
        waits = [e for e in events if e[2] == "queue"]
        execs = [e for e in events if e[2] == "exec"]
        assert len(waits) == len(execs) == len(SPECS)
        for wait, exc in zip(waits, execs):
            assert wait[5] == exc[5]  # same tid
            assert wait[0] <= exc[0] + 1e-6


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _Spec:
    def __init__(self, label):
        self.label = label


class _Outcome:
    def __init__(self, label, ok=True, cache_status="off", status=None):
        self.spec = _Spec(label)
        self.ok = ok
        self.cache_status = cache_status
        self.status = status or ("ok" if ok else "error")
        self.wall_time_s = 1.0


class TestLiveMonitor:
    def _monitor(self, total=4, tty=False):
        clock = FakeClock()
        stream = io.StringIO()
        monitor = LiveMonitor(total=total, label="sweep", stream=stream,
                              interval_s=0.5, clock=clock, is_tty=tty)
        return monitor, clock, stream

    def test_rows_track_dispatch_heartbeat_finish(self):
        monitor, clock, _ = self._monitor()
        monitor.job_dispatched(0, _Spec("tagless/mcf"), 0, 7, 0.01)
        assert monitor.workers[7].busy
        clock.now = 3.0
        monitor.worker_heartbeat({"worker": 7, "index": 0,
                                  "label": "tagless/mcf", "attempt": 0,
                                  "elapsed_s": 3.0,
                                  "accesses_done": 60_000})
        row = monitor.workers[7]
        assert row.accesses_done == 60_000
        assert row.rate(clock.now) == pytest.approx(20_000)
        monitor.job_finished(0, _Spec("tagless/mcf"), 0, 7, "ok", 3.0)
        monitor.job_done(_Outcome("tagless/mcf"))
        assert not monitor.workers[7].busy
        assert monitor.workers[7].jobs_done == 1
        assert monitor.done == 1

    def test_render_lines_shape_and_counters(self):
        monitor, clock, _ = self._monitor(total=8)
        monitor.job_dispatched(0, _Spec("tagless/mcf"), 0, 0, 0.0)
        monitor.job_done(_Outcome("a", cache_status="hit"))
        monitor.job_done(_Outcome("b", cache_status="resume"))
        monitor.job_retry(_Spec("c"), 0, "boom")
        monitor.job_done(_Outcome("c", ok=False))
        clock.now = 10.0
        lines = monitor.render_lines()
        head = lines[0]
        assert "jobs 3/8 (38%)" in head
        assert "cache 1" in head and "resumed 1" in head
        assert "retries 1" in head and "errors 1" in head
        assert "eta" in head
        assert len(lines) == 2  # header + one worker row
        assert lines[1].lstrip().startswith("w0")

    def test_pipe_output_is_throttled(self):
        monitor, clock, stream = self._monitor(tty=False)
        for i in range(50):
            clock.now = i * 0.01  # 10 ms apart: far below the gap
            monitor.worker_heartbeat({"worker": 0, "index": 0,
                                      "attempt": 0, "elapsed_s": 0.0,
                                      "accesses_done": 0})
        frames = stream.getvalue().count("sweep:")
        assert frames <= 2
        monitor.finish()
        assert stream.getvalue().count("sweep:") == frames + 1

    def test_tty_redraw_rewinds_previous_frame(self):
        monitor, clock, stream = self._monitor(tty=True)
        monitor.job_done(_Outcome("a"))
        clock.now = 1.0
        monitor.job_done(_Outcome("b"))
        text = stream.getvalue()
        assert "\x1b[1F\x1b[J" in text  # rewound the 1-line first frame

    def test_finish_is_idempotent(self):
        monitor, _, stream = self._monitor()
        monitor.finish()
        once = stream.getvalue()
        monitor.finish()
        assert stream.getvalue() == once


class TestCompositeObserver:
    def test_fans_out_only_to_defined_hooks(self):
        class OnlyDone:
            def __init__(self):
                self.seen = []

            def job_done(self, outcome):
                self.seen.append(outcome.spec.label)

        class Everything(RecordingObserver):
            def finish(self):
                self.events.append(("finish-call",))

        only = OnlyDone()
        everything = Everything()
        composite = CompositeObserver(only, None, everything)
        assert [type(o).__name__ for o in composite.observers] == [
            "OnlyDone", "Everything"]
        composite.job_done(_Outcome("x"))
        composite.job_dispatched(0, _Spec("x"), 0, 0, 0.0)
        composite.finish()
        assert only.seen == ["x"]
        assert ("dispatch", 0, 0, 0) in everything.events
        assert ("finish-call",) in everything.events

    def test_absent_hooks_stay_absent(self):
        class Silent:
            pass

        composite = CompositeObserver(Silent())
        assert not hasattr(composite, "worker_heartbeat")
        assert not hasattr(composite, "job_done")
