"""Report rendering tests: sparklines and the artifact text view."""

from repro.obs.report import SPARK_CHARS, render_timeseries, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_uses_lowest_glyph(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert line == SPARK_CHARS[0] * 3

    def test_monotone_ramp_is_monotone(self):
        line = sparkline([float(i) for i in range(8)])
        indices = [SPARK_CHARS.index(ch) for ch in line]
        assert indices == sorted(indices)
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]

    def test_downsamples_to_width(self):
        line = sparkline([float(i) for i in range(1000)], width=20)
        assert len(line) == 20

    def test_short_series_keeps_one_char_per_point(self):
        assert len(sparkline([1.0, 2.0], width=60)) == 2


class TestRenderTimeseries:
    def _artifact(self):
        meta = {"design": "tagless", "workload": "mcf",
                "interval": 512, "unit": "accesses"}
        columns = {
            "t_ns": [100.0, 200.0, 300.0],
            "ipc": [0.3, 0.4, 0.5],
            "free_queue_depth": [40.0, 30.0, 20.0],
        }
        return meta, columns

    def test_header_and_series_lines(self):
        meta, columns = self._artifact()
        text = render_timeseries(meta, columns)
        assert "tagless on mcf" in text
        assert "3 windows of 512 accesses" in text
        assert "ipc" in text and "free_queue_depth" in text
        assert "t_ns " not in text  # the axis is not its own series

    def test_metrics_filter(self):
        meta, columns = self._artifact()
        text = render_timeseries(meta, columns, metrics=["ipc"])
        assert "ipc" in text
        assert "free_queue_depth" not in text

    def test_histogram_section(self):
        meta, columns = self._artifact()
        histogram = {"name": "offpkg_demand_latency_ns", "count": 10,
                     "mean": 120.0, "min": 50.0, "max": 700.0,
                     "buckets": [0, 0, 0, 0, 0, 0, 6, 2, 1, 1, 0, 0]}
        text = render_timeseries(meta, columns, histogram=histogram)
        assert "histogram offpkg_demand_latency_ns" in text
        assert "n=10" in text

    def test_empty_histogram_is_omitted(self):
        meta, columns = self._artifact()
        histogram = {"name": "x", "count": 0, "mean": 0.0, "min": 0.0,
                     "max": 0.0, "buckets": [0, 0]}
        assert "histogram" not in render_timeseries(meta, columns,
                                                    histogram=histogram)
