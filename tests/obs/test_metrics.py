"""Metrics-registry tests: instruments, exposition, round trip, gating.

The registry is the fleet-level half of ``repro.obs``: these tests pin
the instrument semantics (counters only go up, labels are separate
series, histograms bucket correctly), the two export formats (JSONL
must round-trip bit-identically, the Prometheus text must be valid
exposition with cumulative buckets), and the zero-cost-off contract (a
disabled registry hands out the shared null singleton and the env
switch arms the global one).
"""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_ENV,
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestInstruments:
    def test_counter_accumulates_per_label_set(self, registry):
        lookups = registry.counter("c_total", "cache lookups")
        lookups.inc(outcome="hit")
        lookups.inc(2, outcome="hit")
        lookups.inc(outcome="miss")
        assert lookups.value(outcome="hit") == 3
        assert lookups.value(outcome="miss") == 1
        assert lookups.value(outcome="stale") == 0

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        busy = registry.gauge("g_busy")
        busy.set(3)
        busy.inc()
        busy.dec(2)
        assert busy.value() == 2

    def test_histogram_buckets_and_moments(self, registry):
        waits = registry.histogram("h_wait", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            waits.observe(value)
        assert waits.count() == 4
        assert waits.sum() == pytest.approx(6.05)
        (sample,) = waits.samples()
        # Non-cumulative internal form: [<=0.1, <=1.0, +Inf].
        assert sample["buckets"] == [1, 2, 1]

    def test_label_order_is_canonical(self, registry):
        c = registry.counter("c_total")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_bad_metric_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name")


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("c_total")
        second = registry.counter("c_total")
        assert first is second

    def test_kind_conflict_raises(self, registry):
        registry.counter("c_total")
        with pytest.raises(ValueError):
            registry.gauge("c_total")

    def test_disabled_registry_hands_out_the_null_singleton(self):
        disabled = MetricsRegistry(enabled=False)
        assert disabled.counter("c_total") is NULL_INSTRUMENT
        assert disabled.gauge("g") is NULL_INSTRUMENT
        assert disabled.histogram("h") is NULL_INSTRUMENT
        assert disabled.snapshot() == []
        # The null instrument absorbs the full emission API.
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.dec()
        NULL_INSTRUMENT.set(1.0)
        NULL_INSTRUMENT.observe(0.5, outcome="hit")

    def test_snapshot_orders_by_instrument_name(self, registry):
        registry.counter("z_total").inc()
        registry.counter("a_total").inc()
        names = [record["name"] for record in registry.snapshot()]
        assert names == ["a_total", "z_total"]


class TestExports:
    def _populate(self, registry):
        lookups = registry.counter("repro_cache_lookups_total", "lookups")
        lookups.inc(3, outcome="hit")
        lookups.inc(outcome="miss")
        registry.gauge("repro_pool_busy_workers", "busy now").set(2)
        waits = registry.histogram("repro_queue_wait_seconds", "wait",
                                   buckets=(0.1, 1.0))
        waits.observe(0.05)
        waits.observe(0.5)
        waits.observe(5.0)

    def test_jsonl_round_trip_is_bit_identical(self, registry, tmp_path):
        self._populate(registry)
        path = tmp_path / "metrics.jsonl"
        registry.to_jsonl(str(path))
        rebuilt = MetricsRegistry.from_jsonl(str(path))
        assert rebuilt.snapshot() == registry.snapshot()
        # And a second hop stays fixed (the round trip is a fixpoint).
        again = tmp_path / "again.jsonl"
        rebuilt.to_jsonl(str(again))
        assert again.read_text() == path.read_text()

    def test_prometheus_exposition_shape(self, registry):
        self._populate(registry)
        text = registry.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_cache_lookups_total counter" in lines
        assert "# HELP repro_cache_lookups_total lookups" in lines
        assert 'repro_cache_lookups_total{outcome="hit"} 3' in lines
        assert 'repro_cache_lookups_total{outcome="miss"} 1' in lines
        assert "# TYPE repro_pool_busy_workers gauge" in lines
        assert "repro_pool_busy_workers 2" in lines
        # Histogram buckets are cumulative and close with +Inf.
        assert 'repro_queue_wait_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_queue_wait_seconds_bucket{le="1"} 2' in lines
        assert 'repro_queue_wait_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_queue_wait_seconds_sum 5.55" in lines
        assert "repro_queue_wait_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_label_values_are_escaped(self, registry):
        registry.counter("c_total").inc(label='say "hi"\nbye')
        text = registry.to_prometheus()
        assert 'label="say \\"hi\\"\\nbye"' in text

    def test_write_dispatches_on_suffix(self, registry, tmp_path):
        self._populate(registry)
        prom = tmp_path / "m.prom"
        jsonl = tmp_path / "m.jsonl"
        registry.write(str(prom))
        registry.write(str(jsonl))
        assert prom.read_text().startswith("# HELP")
        assert jsonl.read_text().startswith("{")

    def test_empty_registry_exports_empty(self, registry, tmp_path):
        assert registry.to_prometheus() == ""
        path = tmp_path / "empty.jsonl"
        registry.to_jsonl(str(path))
        assert path.read_text() == ""
        assert MetricsRegistry.from_jsonl(str(path)).snapshot() == []


class TestGlobalRegistry:
    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        assert not metrics_enabled()
        for value in ("1", "on", "true", "yes", "ON"):
            monkeypatch.setenv(METRICS_ENV, value)
            assert metrics_enabled()
        monkeypatch.setenv(METRICS_ENV, "0")
        assert not metrics_enabled()

    def test_set_registry_swaps_and_restores(self):
        mine = MetricsRegistry(enabled=True)
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is not mine

    def test_default_registry_is_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        previous = set_registry(None)  # force lazy re-creation
        try:
            registry = get_registry()
            assert not registry.enabled
            assert registry.counter("x_total") is NULL_INSTRUMENT
        finally:
            set_registry(previous)


class TestInstrumentedCallSites:
    """The harness layers feed real series when a registry is armed."""

    def test_result_cache_emits_lookup_series(self, tmp_path):
        from repro.harness.cache import ResultCache
        from repro.harness.jobs import JobSpec, execute_job
        spec = JobSpec(design="tagless", workload="sphinx3", accesses=2_000)
        mine = MetricsRegistry(enabled=True)
        previous = set_registry(mine)
        try:
            cache = ResultCache(str(tmp_path / "cache"))
            assert cache.get(spec) is None
            cache.put(spec, execute_job(spec))
            assert cache.get(spec) is not None
        finally:
            set_registry(previous)
        lookups = mine.counter("repro_cache_lookups_total")
        assert lookups.value(outcome="miss") == 1
        assert lookups.value(outcome="hit") == 1
        assert mine.counter("repro_cache_stores_total").value() == 1

    def test_campaign_expand_counts_points(self):
        from repro.campaign.compile import expand
        from repro.campaign.spec import CampaignSpec
        spec = CampaignSpec.from_dict({
            "name": "m", "repetitions": 2,
            "factors": {"design": ["tagless", "no-l3"],
                        "workload": ["mcf"]},
            "fixed": {"accesses": 1000},
            "metrics": ["ipc"],
        })
        mine = MetricsRegistry(enabled=True)
        previous = set_registry(mine)
        try:
            jobs = expand(spec)
        finally:
            set_registry(previous)
        cells = mine.counter("repro_campaign_cells_expanded_total")
        points = mine.counter("repro_campaign_points_expanded_total")
        assert cells.value() == 2
        assert points.value() == len(jobs) == 4
