"""Event tracer tests: ring-buffer retention and Perfetto export."""

import json

import pytest

from repro.obs.events import DEFAULT_CAPACITY, EventTracer, null_event


class TestNullEvent:
    def test_is_a_no_op(self):
        assert null_event("cat", "name", 1.0) is None
        assert null_event("cat", "name", 1.0, dur_ns=2.0, tid=3,
                          args={"k": 1}) is None

    def test_signature_matches_tracer_event(self):
        # Rebinding the attribute is the whole enable mechanism, so the
        # no-op must accept exactly what the real emitter accepts.
        tracer = EventTracer()
        for call in (null_event, tracer.event):
            call("cat", "name", 5.0)
            call("cat", "name", 5.0, 2.0, 1, {"a": 1})
            call("cat", "name", 5.0, dur_ns=None, tid=0, args=None)


class TestRingBuffer:
    def test_retains_everything_under_capacity(self):
        tracer = EventTracer(capacity=10)
        for i in range(7):
            tracer.event("c", "e", float(i))
        assert len(tracer) == 7
        assert tracer.emitted == 7
        assert tracer.dropped == 0

    def test_overflow_drops_oldest(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.event("c", f"e{i}", float(i))
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        names = [event[3] for event in tracer.events()]
        assert names == ["e6", "e7", "e8", "e9"]

    def test_all_phases_count_against_capacity(self):
        tracer = EventTracer(capacity=3)
        tracer.begin("c", "slice", 0.0)
        tracer.counter("free_queue", 1.0, {"depth": 5.0})
        tracer.event("c", "instant", 2.0)
        tracer.end("c", "slice", 3.0)
        assert len(tracer) == 3  # begin fell off the ring
        assert tracer.dropped == 1

    def test_clear(self):
        tracer = EventTracer(capacity=4)
        tracer.event("c", "e", 0.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_default_capacity(self):
        assert EventTracer().capacity == DEFAULT_CAPACITY


class TestPerfettoExport:
    def _sample_tracer(self) -> EventTracer:
        tracer = EventTracer()
        tracer.begin("sim", "measured", 0.0)
        tracer.event("tlb", "walk_fill", 100.0, dur_ns=50.0, tid=1,
                     args={"outcome": "resident"})
        tracer.event("cache", "nc_pin", 150.0)
        tracer.counter("free_queue", 200.0, {"depth": 9.0})
        tracer.end("sim", "measured", 300.0)
        return tracer

    def test_roundtrip_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.perfetto.json")
        self._sample_tracer().to_perfetto(path, process_name="tagless")
        with open(path) as handle:
            document = json.load(handle)
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ns"
        assert document["otherData"]["dropped"] == 0

    def test_first_event_names_the_process(self):
        document = self._sample_tracer().to_perfetto_dict(
            process_name="tagless"
        )
        head = document["traceEvents"][0]
        assert head["ph"] == "M"
        assert head["args"]["name"] == "tagless"

    def test_timestamps_monotonic_and_microseconds(self):
        tracer = EventTracer()
        # Emit deliberately out of order; the exporter sorts.
        tracer.event("c", "late", 3000.0)
        tracer.event("c", "early", 1000.0)
        events = self._nonmeta(tracer.to_perfetto_dict())
        ts = [event["ts"] for event in events]
        assert ts == sorted(ts)
        assert ts == [1.0, 3.0]  # ns -> us

    def test_b_e_pairs_matched(self):
        events = self._nonmeta(self._sample_tracer().to_perfetto_dict())
        opens = 0
        for event in events:
            if event["ph"] == "B":
                opens += 1
            elif event["ph"] == "E":
                opens -= 1
                assert opens >= 0, "E without a matching B"
        assert opens == 0

    def test_complete_events_carry_duration(self):
        events = self._nonmeta(self._sample_tracer().to_perfetto_dict())
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and complete[0]["dur"] == pytest.approx(0.05)
        assert complete[0]["args"] == {"outcome": "resident"}

    def test_equal_timestamp_keeps_emission_order(self):
        tracer = EventTracer()
        tracer.begin("c", "outer", 10.0)
        tracer.begin("c", "inner", 10.0)
        tracer.end("c", "inner", 10.0)
        tracer.end("c", "outer", 10.0)
        phases = [(e["ph"], e["name"])
                  for e in self._nonmeta(tracer.to_perfetto_dict())]
        assert phases == [("B", "outer"), ("B", "inner"),
                          ("E", "inner"), ("E", "outer")]

    def test_dropped_count_reported(self):
        tracer = EventTracer(capacity=2)
        for i in range(5):
            tracer.event("c", "e", float(i))
        other = tracer.to_perfetto_dict()["otherData"]
        assert other == {"emitted": 5, "retained": 2, "dropped": 3}

    @staticmethod
    def _nonmeta(document):
        return [e for e in document["traceEvents"] if e["ph"] != "M"]
