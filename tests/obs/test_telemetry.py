"""Telemetry bundle tests: the bit-identity contract and the artifacts.

The load-bearing property of PR 4 is that observability never perturbs
the simulation: a run with a full telemetry bundle attached -- at any
sampling interval -- must produce *exactly* the statistics of a plain
run.  These tests pin that, and that every registered design yields
schema-valid artifacts carrying the series the paper's figures need.
"""

import json

import pytest

from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.designs.registry import ALL_DESIGN_NAMES
from repro.obs import load_timeseries, make_telemetry


@pytest.fixture(scope="module")
def bindings():
    from repro.workloads.generator import TraceGenerator
    from repro.workloads.spec import spec_profile

    trace = TraceGenerator(spec_profile("mcf"),
                           capacity_scale=512).generate(4000)
    return [BoundTrace(0, 0, trace)]


@pytest.fixture(scope="module")
def config():
    import dataclasses

    from repro.common.config import default_system

    cfg = default_system(cache_megabytes=128, num_cores=1,
                         capacity_scale=512)
    return dataclasses.replace(cfg, tlb_scale=32)


@pytest.fixture(scope="module")
def plain_result(config, bindings):
    return Simulator(config).run("tagless", bindings)


class TestGoldenInvariance:
    @pytest.mark.parametrize("interval", [1, 64, 4096])
    def test_stats_bit_identical_at_any_interval(
            self, config, bindings, plain_result, interval):
        telemetry = make_telemetry(interval=interval)
        observed = Simulator(config).run("tagless", bindings,
                                         telemetry=telemetry)
        # Exact float equality: telemetry must be strictly observational.
        assert observed.stats == plain_result.stats
        assert observed.elapsed_ns == plain_result.elapsed_ns
        assert [c.ipc for c in observed.cores] == \
            [c.ipc for c in plain_result.cores]

    def test_cycle_windows_are_also_invariant(self, config, bindings,
                                              plain_result):
        telemetry = make_telemetry(interval=2000, unit="cycles")
        observed = Simulator(config).run("tagless", bindings,
                                         telemetry=telemetry)
        assert observed.stats == plain_result.stats
        assert observed.elapsed_ns == plain_result.elapsed_ns

    def test_uninstall_restores_the_fast_path(self, config, bindings):
        simulator = Simulator(config)
        design = simulator.build_design("tagless")
        telemetry = make_telemetry(interval=8)
        telemetry.install(design)
        telemetry.uninstall()
        # No instance-level wrapper left behind, no tracer bindings.
        assert "access_cycles" not in design.__dict__
        assert "obs_attach_cores" not in design.__dict__
        from repro.obs.events import null_event

        assert design.trace_event is null_event
        assert design.engine.trace_event is null_event
        assert design.off_package.latency_histogram is None

    def test_composes_with_invariant_checker(self, config, bindings,
                                             plain_result):
        telemetry = make_telemetry(interval=64)
        observed = Simulator(config).run(
            "tagless", bindings, telemetry=telemetry,
            validate=True, validate_every=500,
        )
        assert observed.stats == plain_result.stats
        # The checker's sweeps appear as matched validate slices.
        sweeps = [e for e in telemetry.tracer.events()
                  if e[3] == "sweep"]
        assert sweeps, "validation sweeps should be traced"
        assert len([e for e in sweeps if e[1] == "B"]) == \
            len([e for e in sweeps if e[1] == "E"])


class TestArtifactsAcrossDesigns:
    #: Series the acceptance criteria require in every artifact.
    REQUIRED = ("free_queue_depth", "ctlb_hit_rate", "offpkg_gbps")

    @pytest.mark.parametrize("design", ALL_DESIGN_NAMES)
    def test_every_design_produces_both_artifacts(
            self, tmp_path, config, bindings, design):
        telemetry = make_telemetry(interval=256)
        Simulator(config).run(design, bindings, telemetry=telemetry)
        trace_path = str(tmp_path / f"{design}.perfetto.json")
        series_path = str(tmp_path / f"{design}.timeseries.jsonl")
        telemetry.write_artifacts(trace_path, series_path, workload="mcf")

        with open(trace_path) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == design
        timestamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert timestamps == sorted(timestamps)

        meta, columns, histogram = load_timeseries(series_path)
        assert meta["design"] == design
        assert meta["workload"] == "mcf"
        assert meta["windows"] >= 2
        for name in self.REQUIRED:
            assert name in columns, f"{design} artifact missing {name}"
            assert len(columns[name]) == meta["windows"]
        # The off-package latency histogram rides along in JSONL form.
        assert histogram is not None
        assert histogram["name"] == "offpkg_demand_latency_ns"

    def test_tagless_series_show_cache_behaviour(self, tmp_path, config,
                                                 bindings):
        telemetry = make_telemetry(interval=256)
        Simulator(config).run("tagless", bindings, telemetry=telemetry)
        path = str(tmp_path / "t.jsonl")
        telemetry.write_artifacts(None, path, workload="mcf")
        _meta, columns, _histogram = load_timeseries(path)
        # The small cache forces allocation: the free queue drains and
        # GIPT occupancy rises over the run.
        assert max(columns["gipt_occupancy"]) > 0.0
        assert min(columns["free_queue_depth"]) < \
            max(columns["free_queue_depth"]) or \
            max(columns["d_fills"]) > 0.0
        assert any(v > 0.0 for v in columns["ctlb_hit_rate"])

    def test_csv_artifact_roundtrips(self, tmp_path, config, bindings):
        telemetry = make_telemetry(interval=512)
        Simulator(config).run("tagless", bindings, telemetry=telemetry)
        path = str(tmp_path / "t.csv")
        telemetry.write_artifacts(None, path, workload="mcf")
        meta, columns, histogram = load_timeseries(path)
        assert meta == {} and histogram is None  # CSV carries data only
        for name in self.REQUIRED:
            assert columns[name]
