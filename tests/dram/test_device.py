"""DRAM device facade: latency composition, energy and accounting."""

import pytest

from repro.common.addressing import PAGE_BYTES
from repro.common.config import default_system
from repro.dram.device import DRAMDevice


@pytest.fixture
def off_pkg():
    cfg = default_system()
    return DRAMDevice(cfg.off_package, cfg.off_package_energy)


@pytest.fixture
def in_pkg():
    cfg = default_system()
    return DRAMDevice(cfg.in_package, cfg.in_package_energy)


def test_block_access_closed_page_latency(off_pkg):
    t = off_pkg.timing
    expected = t.row_empty_ns(64) + t.controller_ns
    assert off_pkg.access_block(0.0, 5) == pytest.approx(expected)


def test_block_access_open_page_uses_row_state(off_pkg):
    first = off_pkg.access_block(0.0, 5, open_page=True)
    # Issue at a time the channel is free again to isolate service time.
    second = off_pkg.access_block(1000.0, 5, open_page=True)
    assert second < first  # row hit after activation


def test_in_package_faster_than_off_package(in_pkg, off_pkg):
    assert in_pkg.access_block(0.0, 1) < off_pkg.access_block(0.0, 1)


def test_fill_page_critical_block_first(off_pkg):
    t = off_pkg.timing
    latency = off_pkg.fill_page(0.0, 3)
    # Core waits ~ a block access, far less than the full page stream.
    assert latency == pytest.approx(t.row_empty_ns(64) + t.controller_ns)
    assert latency < t.transfer_ns(PAGE_BYTES)
    # But the channel is reserved for the whole page.
    assert off_pkg.channels.free_at(0) == pytest.approx(
        t.transfer_ns(PAGE_BYTES)
    )


def test_fill_page_charges_full_page_energy(off_pkg):
    off_pkg.fill_page(0.0, 3)
    assert off_pkg.energy.read_bytes == PAGE_BYTES
    assert off_pkg.energy.activations == 1


def test_stream_page_async_zero_latency_but_occupies(in_pkg):
    latency = in_pkg.stream_page(0.0, 2, is_write=True, asynchronous=True)
    assert latency == 0.0
    assert in_pkg.channels.background_until(0) > 0.0
    assert in_pkg.channels.background_busy_ns > 0.0
    assert in_pkg.energy.write_bytes == PAGE_BYTES
    assert in_pkg.demand_accesses == 0


def test_stream_page_sync_waits_for_whole_page(in_pkg):
    latency = in_pkg.stream_page(0.0, 2)
    assert latency >= in_pkg.timing.row_empty_ns(PAGE_BYTES)


def test_posted_write_returns_service_only(off_pkg):
    # Saturate the channel first; a posted write must not report queue.
    off_pkg.fill_page(0.0, 1)
    service = off_pkg.posted_write_block(1.0, 1)
    assert service < 100.0  # no 320 ns page-stream wait folded in
    assert off_pkg.energy.write_bytes == 64


def test_demand_accounting(off_pkg):
    off_pkg.access_block(0.0, 1)
    off_pkg.access_block(0.0, 2)
    assert off_pkg.demand_accesses == 2
    assert off_pkg.mean_demand_latency_ns() > 0


def test_queue_included_in_latency(off_pkg):
    first = off_pkg.fill_page(0.0, 1)
    second = off_pkg.access_block(0.0, 2)
    # The second access queues behind the 4 KB stream.
    assert second > first


def test_stats_keys(off_pkg):
    off_pkg.access_block(0.0, 1)
    stats = off_pkg.stats("off_")
    assert stats["off_demand_accesses"] == 1.0
    assert "off_dynamic_nj" in stats
    assert "off_queue_ns_total" in stats


def test_reset_stats_keeps_rows_clears_counters(off_pkg):
    off_pkg.access_block(0.0, 1, open_page=True)
    off_pkg.reset_stats()
    assert off_pkg.demand_accesses == 0
    assert off_pkg.channels.free_at(0) == 0.0
    # Row stays open: the next open-page access row-hits.
    latency = off_pkg.access_block(0.0, 1, open_page=True)
    assert latency == pytest.approx(
        off_pkg.timing.row_hit_ns(64) + off_pkg.timing.controller_ns
    )


def test_full_reset_clears_rows(off_pkg):
    off_pkg.access_block(0.0, 1, open_page=True)
    off_pkg.reset()
    latency = off_pkg.access_block(0.0, 1, open_page=True)
    assert latency == pytest.approx(
        off_pkg.timing.row_empty_ns(64) + off_pkg.timing.controller_ns
    )
