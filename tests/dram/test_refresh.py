"""DRAM refresh (tREFI/tRFC) model tests."""

import pytest

from repro.common.config import default_system
from repro.dram.device import DRAMDevice


@pytest.fixture
def device():
    cfg = default_system()
    return DRAMDevice(cfg.off_package, cfg.off_package_energy)


def test_no_refresh_before_first_trefi(device):
    device.access_block(10.0, 1)
    assert device.refreshes == 0


def test_refresh_issued_at_trefi(device):
    trefi = device.timing.trefi_ns
    device.access_block(trefi + 1.0, 1)
    assert device.refreshes == 1


def test_catch_up_over_long_idle(device):
    trefi = device.timing.trefi_ns
    device.access_block(10.5 * trefi, 1)
    assert device.refreshes == 10


def test_refresh_blocks_demand(device):
    """An access issued right at a refresh boundary waits out tRFC."""
    trefi = device.timing.trefi_ns
    latency = device.access_block(trefi + 1.0, 1)
    baseline = device.timing.row_empty_ns(64) + device.timing.controller_ns
    assert latency > baseline  # queued behind the refresh
    assert latency >= device.timing.trfc_ns * 0.5


def test_refresh_schedule_monotone(device):
    trefi = device.timing.trefi_ns
    device.access_block(trefi + 1.0, 1)
    # Going "back in time" (another core slightly behind) never double
    # issues or crashes.
    device.access_block(trefi - 100.0, 2)
    assert device.refreshes == 1


def test_reset_restarts_schedule(device):
    trefi = device.timing.trefi_ns
    device.access_block(trefi + 1.0, 1)
    device.reset_stats()
    assert device.refreshes == 0
    device.access_block(1.0, 1)
    assert device.refreshes == 0  # schedule restarted with the clock


def test_in_package_has_shorter_trfc():
    cfg = default_system()
    assert cfg.in_package.trfc_ns < cfg.off_package.trfc_ns


def test_refresh_overhead_is_bounded(device):
    """Refresh consumes ~tRFC/tREFI of the channel (about 4.5 %), so a
    steady access stream sees only a small average penalty."""
    total = 0.0
    n = 200
    for i in range(n):
        now = i * 100.0  # one access per 100 ns
        total += device.access_block(now, i)
    baseline = device.timing.row_empty_ns(64) + device.timing.controller_ns
    assert total / n < baseline * 1.6
