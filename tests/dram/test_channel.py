"""Channel occupancy / queuing model tests."""

import pytest

from repro.dram.channel import ChannelScheduler


def test_idle_channel_has_no_queue():
    sched = ChannelScheduler(1)
    assert sched.occupy(0, now_ns=100.0, busy_ns=10.0) == 0.0
    assert sched.free_at(0) == pytest.approx(110.0)


def test_busy_channel_queues():
    sched = ChannelScheduler(1)
    sched.occupy(0, 0.0, 50.0)
    queue = sched.occupy(0, 10.0, 5.0)
    assert queue == pytest.approx(40.0)
    assert sched.free_at(0) == pytest.approx(55.0)


def test_late_arrival_after_free_no_queue():
    sched = ChannelScheduler(1)
    sched.occupy(0, 0.0, 50.0)
    assert sched.occupy(0, 60.0, 5.0) == 0.0
    assert sched.free_at(0) == pytest.approx(65.0)


def test_background_delays_demand_by_at_most_preemption_window():
    sched = ChannelScheduler(1, preemption_ns=8.0)
    sched.occupy_background(0, 0.0, 100.0)
    assert sched.requests == 0
    assert sched.background_busy_ns == pytest.approx(100.0)
    # Demand preempts the in-flight background burst after 8 ns instead
    # of waiting out the full 100 ns stream.
    assert sched.occupy(0, 10.0, 5.0) == pytest.approx(8.0)


def test_background_queues_behind_background():
    sched = ChannelScheduler(1, preemption_ns=0.0)
    sched.occupy_background(0, 0.0, 100.0)
    sched.occupy_background(0, 50.0, 100.0)
    assert sched.background_until(0) == pytest.approx(200.0)


def test_demand_ignores_background_with_zero_preemption():
    sched = ChannelScheduler(1)
    sched.occupy_background(0, 0.0, 100.0)
    assert sched.occupy(0, 10.0, 5.0) == 0.0


def test_channels_are_independent():
    sched = ChannelScheduler(2)
    sched.occupy(0, 0.0, 100.0)
    assert sched.occupy(1, 0.0, 10.0) == 0.0


def test_channel_of_page_interleaves():
    sched = ChannelScheduler(2)
    assert sched.channel_of_page(0) == 0
    assert sched.channel_of_page(1) == 1
    assert sched.channel_of_page(2) == 0


def test_mean_queue(atol=1e-9):
    sched = ChannelScheduler(1)
    assert sched.mean_queue_ns() == 0.0
    sched.occupy(0, 0.0, 10.0)
    sched.occupy(0, 0.0, 10.0)  # waits 10
    assert sched.mean_queue_ns() == pytest.approx(5.0)


def test_reset():
    sched = ChannelScheduler(1)
    sched.occupy(0, 0.0, 10.0)
    sched.reset()
    assert sched.free_at(0) == 0.0
    assert sched.requests == 0
    assert sched.queue_ns_total == 0.0


def test_zero_channels_rejected():
    with pytest.raises(ValueError):
        ChannelScheduler(0)
