"""Energy accounting tests against Table 4 arithmetic."""

import pytest

from repro.common.config import DRAMEnergyConfig
from repro.dram.energy import EnergyAccount


@pytest.fixture
def account():
    return EnergyAccount(
        DRAMEnergyConfig(
            io_pj_per_bit=20.0,
            rw_pj_per_bit=13.0,
            act_pre_nj=15.0,
            background_watts=1.0,
        )
    )


def test_charge_read(account):
    nj = account.charge(64, activations=0, is_write=False)
    # 512 bits * 33 pJ/b = 16.896 nJ
    assert nj == pytest.approx(16.896)
    assert account.read_bytes == 64
    assert account.write_bytes == 0


def test_charge_write_with_activation(account):
    nj = account.charge(64, activations=1, is_write=True)
    assert nj == pytest.approx(16.896 + 15.0)
    assert account.write_bytes == 64
    assert account.activations == 1


def test_charges_accumulate(account):
    account.charge(64, 0, False)
    account.charge(64, 1, True)
    assert account.dynamic_nj == pytest.approx(2 * 16.896 + 15.0)


def test_background_energy_watts_times_ns(account):
    # 1 W for 1000 ns = 1000 nJ (W * ns == nJ).
    assert account.background_nj(1000.0) == pytest.approx(1000.0)


def test_total_includes_background(account):
    account.charge(64, 0, False)
    assert account.total_nj(100.0) == pytest.approx(16.896 + 100.0)


def test_as_dict(account):
    account.charge(128, 2, False)
    d = account.as_dict("x_")
    assert d["x_read_bytes"] == 128.0
    assert d["x_activations"] == 2.0
    assert d["x_dynamic_nj"] > 0
