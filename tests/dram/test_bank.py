"""Row-buffer state machine tests."""

import pytest

from repro.common.config import default_system
from repro.dram.bank import BankArray


@pytest.fixture
def banks():
    return BankArray(default_system().in_package)


def test_first_access_is_row_empty(banks):
    latency, activations = banks.access(page_number=0, num_bytes=64)
    assert activations == 1
    assert latency == pytest.approx(banks.timing.row_empty_ns(64))
    assert banks.row_empties == 1


def test_second_access_same_page_row_hits(banks):
    banks.access(0, 64)
    latency, activations = banks.access(0, 64)
    assert activations == 0
    assert latency == pytest.approx(banks.timing.row_hit_ns(64))
    assert banks.row_hits == 1


def test_conflicting_page_row_misses(banks):
    total = banks.timing.total_banks
    banks.access(0, 64)
    # Same bank, different row.
    latency, activations = banks.access(total, 64)
    assert activations == 1
    assert latency == pytest.approx(banks.timing.row_miss_ns(64))
    assert banks.row_misses == 1


def test_different_banks_do_not_conflict(banks):
    banks.access(0, 64)
    latency, activations = banks.access(1, 64)  # different bank
    assert activations == 1
    assert latency == pytest.approx(banks.timing.row_empty_ns(64))


def test_bank_mapping_is_modulo(banks):
    total = banks.timing.total_banks
    assert banks.bank_of_page(0) == banks.bank_of_page(total)
    assert banks.bank_of_page(1) != banks.bank_of_page(0)


def test_precharge_all_closes_rows(banks):
    banks.access(0, 64)
    banks.precharge_all()
    __, activations = banks.access(0, 64)
    assert activations == 1
    assert banks.row_empties == 2


def test_row_hit_rate(banks):
    assert banks.row_hit_rate() == 0.0
    banks.access(0, 64)
    banks.access(0, 64)
    assert banks.row_hit_rate() == pytest.approx(0.5)


def test_latency_ordering():
    """row hit < row empty < row miss, always."""
    timing = default_system().off_package
    assert timing.row_hit_ns(64) < timing.row_empty_ns(64)
    assert timing.row_empty_ns(64) < timing.row_miss_ns(64)
