"""End-to-end `repro campaign` CLI tests (tiny grids, no workers)."""

import json

import pytest

from repro.cli.main import main

STUDY = {
    "name": "cli-unit",
    "repetitions": 2,
    "factors": {
        "design": ["tagless", "no-l3"],
        "workload": ["mcf"],
    },
    "fixed": {"accesses": 1500, "cache_mb": 256, "scale": 512},
    "metrics": ["ipc"],
    "baseline": "no-l3",
    "bootstrap_resamples": 200,
}


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


@pytest.fixture
def study_path(tmp_path):
    path = tmp_path / "study.json"
    path.write_text(json.dumps(STUDY))
    return str(path)


def run_study(capsys, tmp_path, study_path, *extra):
    out_dir = str(tmp_path / "camp")
    code, out = run_cli(
        capsys, "campaign", "run", study_path, "--out", out_dir,
        "--jobs", "1", "--no-cache", "--json", *extra,
    )
    return code, out, out_dir


def test_campaign_run_writes_reports(capsys, tmp_path, study_path):
    code, out, out_dir = run_study(capsys, tmp_path, study_path)
    assert code == 0
    summary = json.loads(out)
    assert summary["campaign"] == "cli-unit"
    assert summary["jobs"] == 4
    assert summary["computed"] == 4
    assert summary["errors"] == 0
    assert summary["missing_points"] == 0
    for name in ("spec.json", "jobs.jsonl", "report.md", "report.json",
                 "cells.csv", "pairs.csv"):
        assert (tmp_path / "camp" / name).exists(), name
    with open(tmp_path / "camp" / "report.json") as handle:
        data = json.load(handle)
    assert data["kind"] == "campaign-report"
    assert len(data["cells"]) == 2
    assert data["pairs"][0]["design"] == "tagless"


def test_campaign_rerun_is_report_identical(capsys, tmp_path, study_path):
    _, _, out_dir = run_study(capsys, tmp_path, study_path)
    first = (tmp_path / "camp" / "report.json").read_text()
    # Resume over a complete artifact: everything comes back resumed.
    code, out = run_cli(
        capsys, "campaign", "resume", out_dir,
        "--jobs", "1", "--no-cache", "--json",
    )
    assert code == 0
    summary = json.loads(out)
    assert summary["resumed"] == 4
    assert summary["computed"] == 0
    assert (tmp_path / "camp" / "report.json").read_text() == first


def test_campaign_report_reduces_without_running(capsys, tmp_path,
                                                 study_path):
    _, _, out_dir = run_study(capsys, tmp_path, study_path)
    first = (tmp_path / "camp" / "report.md").read_text()
    code, out = run_cli(capsys, "campaign", "report", out_dir)
    assert code == 0
    assert out == first
    assert (tmp_path / "camp" / "report.md").read_text() == first


def test_campaign_resume_rejects_edited_study(capsys, tmp_path, study_path):
    _, _, out_dir = run_study(capsys, tmp_path, study_path)
    edited = dict(STUDY, repetitions=3)
    edited_path = tmp_path / "edited.json"
    edited_path.write_text(json.dumps(edited))
    with pytest.raises(SystemExit, match="study changed"):
        main(["campaign", "run", str(edited_path), "--out", out_dir,
              "--resume", "--jobs", "1", "--no-cache"])


def test_campaign_smoke_gate_passes(capsys, tmp_path):
    code, out = run_cli(
        capsys, "campaign", "run", "--smoke",
        "--out", str(tmp_path / "smoke"), "--jobs", "1", "--no-cache",
    )
    assert code == 0
    assert "campaign smoke: PASS" in out


def test_campaign_run_requires_study_or_smoke():
    with pytest.raises(SystemExit, match="needs a study file"):
        main(["campaign", "run"])


def test_campaign_report_rejects_non_campaign_dir(tmp_path):
    with pytest.raises(SystemExit, match="not a campaign directory"):
        main(["campaign", "report", str(tmp_path)])


def test_campaign_run_rejects_bad_study(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(dict(STUDY, metrics=["frobnication"])))
    with pytest.raises(SystemExit, match="bad study"):
        main(["campaign", "run", str(bad), "--no-cache",
              "--out", str(tmp_path / "x")])
