"""Campaign expansion and execution through the harness."""

import pytest

from repro.campaign.compile import (
    CampaignRun,
    expand,
    results_from_artifact,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec
from repro.common.errors import ConfigurationError
from repro.harness.artifacts import RunArtifact
from repro.harness.runner import Harness

STUDY = {
    "name": "unit",
    "repetitions": 2,
    "factors": {
        "design": ["tagless", "no-l3"],
        "workload": ["mcf"],
    },
    "fixed": {"accesses": 1500, "cache_mb": 256, "scale": 512},
    "metrics": ["ipc"],
    "baseline": "no-l3",
}


def study(**overrides) -> CampaignSpec:
    data = dict(STUDY)
    data.update(overrides)
    return CampaignSpec.from_dict(data)


class TestExpand:
    def test_grid_times_repetitions(self):
        jobs = expand(study())
        assert len(jobs) == 4  # 2 designs x 1 workload x 2 reps
        assert [j.repetition for j in jobs] == [0, 1, 0, 1]

    def test_field_mapping(self):
        job = expand(study())[0]
        assert job.spec.design == "tagless"
        assert job.spec.workload == "mcf"
        assert job.spec.accesses == 1500
        assert job.spec.cache_megabytes == 256
        assert job.spec.capacity_scale == 512
        assert job.spec.base_seed == job.seed

    def test_designs_pair_seeds(self):
        jobs = expand(study())
        tagless = [j for j in jobs if j.spec.design == "tagless"]
        nol3 = [j for j in jobs if j.spec.design == "no-l3"]
        assert [j.seed for j in tagless] == [j.seed for j in nol3]
        # ...but distinct cache keys: the design differs.
        assert (tagless[0].spec.cache_key() != nol3[0].spec.cache_key())

    def test_repetitions_get_distinct_cache_keys(self):
        jobs = expand(study())
        assert jobs[0].spec.cache_key() != jobs[1].spec.cache_key()

    def test_core_count_inference(self):
        mix = study(factors={"design": ["tagless"], "workload": ["MIX1"]},
                    baseline=None)
        assert expand(mix)[0].spec.num_cores == 4
        single = study()
        assert expand(single)[0].spec.num_cores == 1

    def test_requires_design(self):
        with pytest.raises(ConfigurationError, match="'design'"):
            expand(study(factors={"workload": ["mcf"]}, baseline=None))

    def test_requires_workload(self):
        with pytest.raises(ConfigurationError, match="'workload'"):
            expand(study(factors={"design": ["tagless"]}, baseline=None))

    def test_rejects_unknown_design(self):
        bad = study(factors={"design": ["tagless", "hal9000"],
                             "workload": ["mcf"]}, baseline=None)
        with pytest.raises(ConfigurationError, match="hal9000"):
            expand(bad)


class TestRunCampaign:
    def test_collects_all_cells(self):
        spec = study()
        run = run_campaign(spec, Harness())
        assert all(outcome.ok for outcome in run.outcomes)
        results = run.cell_results()
        assert set(results) == {0, 1}
        for reps in results.values():
            assert set(reps) == {0, 1}
            for metrics in reps.values():
                assert metrics["ipc"] > 0

    def test_repetitions_vary_metrics(self):
        run = run_campaign(study(), Harness())
        results = run.cell_results()
        assert results[0][0]["ipc"] != results[0][1]["ipc"]

    def test_counters_shape(self):
        run = run_campaign(study(), Harness())
        counters = run.counters()
        assert counters["jobs"] == 4
        assert counters["computed"] == 4
        assert counters["errors"] == 0
        assert counters["resumed"] == 0

    def test_failed_points_shrink_cells(self):
        spec = study(factors={"design": ["tagless"], "workload": ["mcf"]},
                     baseline=None)
        run = run_campaign(spec, Harness())
        # Fake one failed repetition.
        run.outcomes[1].error = "boom"
        run.outcomes[1].status = "error"
        results = run.cell_results()
        assert set(results[0]) == {0}
        assert run.counters()["errors"] == 1


class TestResultsFromArtifact:
    def test_round_trip(self, tmp_path):
        spec = study()
        path = str(tmp_path / "jobs.jsonl")
        artifact = RunArtifact(path, name="campaign-unit")
        run = run_campaign(spec, Harness(artifact=artifact))
        artifact.close()
        _jobs, replayed, _dropped = results_from_artifact(spec, path)
        assert replayed == run.cell_results()

    def test_ignores_foreign_rows(self, tmp_path):
        spec = study()
        path = str(tmp_path / "jobs.jsonl")
        artifact = RunArtifact(path, name="campaign-unit")
        run_campaign(spec, Harness(artifact=artifact))
        artifact.close()
        # A spec with different fixed settings matches nothing.
        other = study(fixed={"accesses": 999, "cache_mb": 256,
                             "scale": 512})
        _jobs, replayed, _dropped = results_from_artifact(other, path)
        assert replayed == {}

    def test_tolerates_torn_trailing_line(self, tmp_path):
        spec = study()
        path = str(tmp_path / "jobs.jsonl")
        artifact = RunArtifact(path, name="campaign-unit")
        run = run_campaign(spec, Harness(artifact=artifact))
        artifact.close()
        with open(path, "a") as handle:
            handle.write('{"record": "job", "status": "ok"')  # torn
        _jobs, replayed, _dropped = results_from_artifact(spec, path)
        assert replayed == run.cell_results()


class TestMachineFactors:
    """Dotted override paths and 'preset' as campaign factors."""

    def machine_study(self, **overrides) -> CampaignSpec:
        data = {
            "name": "machine-unit",
            "repetitions": 2,
            "factors": {
                "design": ["tagless", "no-l3"],
                "dram_cache.gipt_in_package": [False, True],
            },
            "fixed": {"workload": "mcf", "accesses": 1500,
                      "cache_mb": 256, "scale": 512},
            "metrics": ["ipc"],
            "baseline": "no-l3",
        }
        data.update(overrides)
        return CampaignSpec.from_dict(data)

    def test_dotted_factor_expands_into_machine(self):
        jobs = expand(self.machine_study())
        assert len(jobs) == 8  # 2 designs x 2 gipt levels x 2 reps
        placements = {
            job.spec.system_config().dram_cache.gipt_in_package
            for job in jobs
        }
        assert placements == {False, True}
        # The default level compiles to the default machine, so its
        # cache keys are the ones a machine-less build would compute.
        default_jobs = [j for j in jobs
                        if j.cell.get("dram_cache.gipt_in_package") is False]
        assert all(j.spec.machine.is_default for j in default_jobs)

    def test_dotted_factor_changes_cache_keys(self):
        jobs = expand(self.machine_study())
        by_gipt = {}
        for job in jobs:
            level = job.cell.get("dram_cache.gipt_in_package")
            by_gipt.setdefault(level, set()).add(job.spec.cache_key())
        assert by_gipt[False].isdisjoint(by_gipt[True])

    def test_dotted_factor_joins_seed_pairing(self):
        """Seeds pair across designs but differ across machine levels."""
        jobs = expand(self.machine_study())
        def seeds(design, gipt):
            return [j.seed for j in jobs
                    if j.spec.design == design
                    and j.cell.get("dram_cache.gipt_in_package") is gipt]
        assert seeds("tagless", True) == seeds("no-l3", True)
        assert seeds("tagless", True) != seeds("tagless", False)

    def test_preset_factor(self):
        spec = self.machine_study(factors={
            "design": ["tagless", "no-l3"],
            "preset": ["table3", "window-core"],
        })
        jobs = expand(spec)
        models = {job.spec.system_config().core.model for job in jobs}
        assert models == {"mlp", "window"}

    def test_fixed_dotted_path(self):
        spec = self.machine_study(
            factors={"design": ["tagless", "no-l3"]},
            fixed={"workload": "mcf", "accesses": 1500, "cache_mb": 256,
                   "scale": 512, "core.model": "window"},
        )
        for job in expand(spec):
            assert job.spec.system_config().core.model == "window"

    def test_bad_machine_levels_rejected_at_spec_load(self):
        with pytest.raises(ConfigurationError, match="expects a bool"):
            self.machine_study(factors={
                "design": ["tagless"],
                "dram_cache.gipt_in_package": [0, 1],
            }, baseline=None)
        with pytest.raises(ConfigurationError, match="unknown override"):
            self.machine_study(factors={
                "design": ["tagless"],
                "dram_cache.no_such": [1],
            }, baseline=None)
        with pytest.raises(ConfigurationError, match="frozen"):
            self.machine_study(factors={
                "design": ["tagless"],
                "dram_cache.page_bytes": [8192],
            }, baseline=None)
        with pytest.raises(ConfigurationError, match="preset"):
            self.machine_study(factors={
                "design": ["tagless"],
                "preset": ["skylake"],
            }, baseline=None)

    def test_override_study_runs_end_to_end(self):
        spec = CampaignSpec.from_dict({
            "name": "gipt-e2e",
            "repetitions": 2,
            "factors": {
                "design": ["tagless", "no-l3"],
                "dram_cache.gipt_in_package": [False, True],
            },
            "fixed": {"workload": "mcf", "accesses": 1200,
                      "cache_mb": 256, "scale": 512},
            "metrics": ["ipc"],
            "baseline": "no-l3",
            "bootstrap_resamples": 100,
        })
        run = run_campaign(spec, Harness())
        assert all(outcome.ok for outcome in run.outcomes)
        results = run.cell_results()
        assert set(results) == {0, 1, 2, 3}


class TestDroppedUnknownRows:
    def test_unknown_key_rows_counted_not_misfiled(self, tmp_path):
        spec = study()
        path = str(tmp_path / "jobs.jsonl")
        artifact = RunArtifact(path, name="campaign-unit")
        run = run_campaign(spec, Harness(artifact=artifact))
        artifact.close()
        # Rewrite one ok row with a field from a "newer build": under
        # the old silent-drop from_dict it would still match a current
        # job and misfile that result; now it must be skipped + counted.
        import json as _json

        records = [_json.loads(line)
                   for line in open(path).read().splitlines()]
        first_job = next(r for r in records if r.get("record") == "job")
        first_job["spec"]["future_knob"] = 123
        with open(path, "w") as handle:
            for record in records:
                handle.write(_json.dumps(record) + "\n")
        _jobs, replayed, dropped = results_from_artifact(spec, path)
        assert dropped == 1
        # The doctored row's (cell, repetition) slot is absent, not
        # filled with the foreign result.
        total = sum(len(reps) for reps in replayed.values())
        assert total == len(run.outcomes) - 1
