"""Campaign expansion and execution through the harness."""

import pytest

from repro.campaign.compile import (
    CampaignRun,
    expand,
    results_from_artifact,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec
from repro.common.errors import ConfigurationError
from repro.harness.artifacts import RunArtifact
from repro.harness.runner import Harness

STUDY = {
    "name": "unit",
    "repetitions": 2,
    "factors": {
        "design": ["tagless", "no-l3"],
        "workload": ["mcf"],
    },
    "fixed": {"accesses": 1500, "cache_mb": 256, "scale": 512},
    "metrics": ["ipc"],
    "baseline": "no-l3",
}


def study(**overrides) -> CampaignSpec:
    data = dict(STUDY)
    data.update(overrides)
    return CampaignSpec.from_dict(data)


class TestExpand:
    def test_grid_times_repetitions(self):
        jobs = expand(study())
        assert len(jobs) == 4  # 2 designs x 1 workload x 2 reps
        assert [j.repetition for j in jobs] == [0, 1, 0, 1]

    def test_field_mapping(self):
        job = expand(study())[0]
        assert job.spec.design == "tagless"
        assert job.spec.workload == "mcf"
        assert job.spec.accesses == 1500
        assert job.spec.cache_megabytes == 256
        assert job.spec.capacity_scale == 512
        assert job.spec.base_seed == job.seed

    def test_designs_pair_seeds(self):
        jobs = expand(study())
        tagless = [j for j in jobs if j.spec.design == "tagless"]
        nol3 = [j for j in jobs if j.spec.design == "no-l3"]
        assert [j.seed for j in tagless] == [j.seed for j in nol3]
        # ...but distinct cache keys: the design differs.
        assert (tagless[0].spec.cache_key() != nol3[0].spec.cache_key())

    def test_repetitions_get_distinct_cache_keys(self):
        jobs = expand(study())
        assert jobs[0].spec.cache_key() != jobs[1].spec.cache_key()

    def test_core_count_inference(self):
        mix = study(factors={"design": ["tagless"], "workload": ["MIX1"]},
                    baseline=None)
        assert expand(mix)[0].spec.num_cores == 4
        single = study()
        assert expand(single)[0].spec.num_cores == 1

    def test_requires_design(self):
        with pytest.raises(ConfigurationError, match="'design'"):
            expand(study(factors={"workload": ["mcf"]}, baseline=None))

    def test_requires_workload(self):
        with pytest.raises(ConfigurationError, match="'workload'"):
            expand(study(factors={"design": ["tagless"]}, baseline=None))

    def test_rejects_unknown_design(self):
        bad = study(factors={"design": ["tagless", "hal9000"],
                             "workload": ["mcf"]}, baseline=None)
        with pytest.raises(ConfigurationError, match="hal9000"):
            expand(bad)


class TestRunCampaign:
    def test_collects_all_cells(self):
        spec = study()
        run = run_campaign(spec, Harness())
        assert all(outcome.ok for outcome in run.outcomes)
        results = run.cell_results()
        assert set(results) == {0, 1}
        for reps in results.values():
            assert set(reps) == {0, 1}
            for metrics in reps.values():
                assert metrics["ipc"] > 0

    def test_repetitions_vary_metrics(self):
        run = run_campaign(study(), Harness())
        results = run.cell_results()
        assert results[0][0]["ipc"] != results[0][1]["ipc"]

    def test_counters_shape(self):
        run = run_campaign(study(), Harness())
        counters = run.counters()
        assert counters["jobs"] == 4
        assert counters["computed"] == 4
        assert counters["errors"] == 0
        assert counters["resumed"] == 0

    def test_failed_points_shrink_cells(self):
        spec = study(factors={"design": ["tagless"], "workload": ["mcf"]},
                     baseline=None)
        run = run_campaign(spec, Harness())
        # Fake one failed repetition.
        run.outcomes[1].error = "boom"
        run.outcomes[1].status = "error"
        results = run.cell_results()
        assert set(results[0]) == {0}
        assert run.counters()["errors"] == 1


class TestResultsFromArtifact:
    def test_round_trip(self, tmp_path):
        spec = study()
        path = str(tmp_path / "jobs.jsonl")
        artifact = RunArtifact(path, name="campaign-unit")
        run = run_campaign(spec, Harness(artifact=artifact))
        artifact.close()
        _jobs, replayed = results_from_artifact(spec, path)
        assert replayed == run.cell_results()

    def test_ignores_foreign_rows(self, tmp_path):
        spec = study()
        path = str(tmp_path / "jobs.jsonl")
        artifact = RunArtifact(path, name="campaign-unit")
        run_campaign(spec, Harness(artifact=artifact))
        artifact.close()
        # A spec with different fixed settings matches nothing.
        other = study(fixed={"accesses": 999, "cache_mb": 256,
                             "scale": 512})
        _jobs, replayed = results_from_artifact(other, path)
        assert replayed == {}

    def test_tolerates_torn_trailing_line(self, tmp_path):
        spec = study()
        path = str(tmp_path / "jobs.jsonl")
        artifact = RunArtifact(path, name="campaign-unit")
        run = run_campaign(spec, Harness(artifact=artifact))
        artifact.close()
        with open(path, "a") as handle:
            handle.write('{"record": "job", "status": "ok"')  # torn
        _jobs, replayed = results_from_artifact(spec, path)
        assert replayed == run.cell_results()
