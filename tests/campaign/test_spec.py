"""Campaign spec loading, validation, hashing, and seed policy."""

import json

import pytest

from repro.campaign.spec import CampaignSpec
from repro.common import rng
from repro.common.errors import ConfigurationError

STUDY = {
    "name": "unit",
    "repetitions": 3,
    "factors": {
        "design": ["tagless", "sram"],
        "workload": ["mcf", "lbm"],
    },
    "fixed": {"accesses": 2000, "cache_mb": 256},
    "metrics": ["ipc"],
    "baseline": "sram",
}


def spec(**overrides) -> CampaignSpec:
    data = json.loads(json.dumps(STUDY))
    data.update(overrides)
    return CampaignSpec.from_dict(data)


class TestValidation:
    def test_round_trip(self):
        s = spec()
        assert CampaignSpec.from_dict(s.to_dict()) == s

    def test_unknown_factor(self):
        with pytest.raises(ConfigurationError, match="unknown factor"):
            spec(factors={"design": ["tagless"], "voltage": [1, 2]})

    def test_duplicate_levels(self):
        with pytest.raises(ConfigurationError, match="duplicate levels"):
            spec(factors={"design": ["tagless", "tagless"]})

    def test_factor_fixed_overlap(self):
        with pytest.raises(ConfigurationError, match="both factors"):
            spec(fixed={"design": "sram"})

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            spec(metrics=["frobnication"])

    def test_baseline_must_be_design_level(self):
        with pytest.raises(ConfigurationError, match="baseline"):
            spec(baseline="alloy")

    def test_repetitions_lower_bound(self):
        with pytest.raises(ConfigurationError, match="repetitions"):
            spec(repetitions=0)

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigurationError, match="unknown campaign"):
            CampaignSpec.from_dict(dict(STUDY, surprise=1))

    def test_default_baseline_is_first_design(self):
        assert spec(baseline=None).effective_baseline == "tagless"

    def test_no_baseline_without_multiple_designs(self):
        s = spec(baseline=None,
                 factors={"design": ["tagless"], "workload": ["mcf"]})
        assert s.effective_baseline is None


class TestCells:
    def test_grid_size_and_order(self):
        cells = spec().cells()
        assert len(cells) == 4
        # Rightmost factor varies fastest, like itertools.product.
        assert [c.label for c in cells] == [
            "design=tagless workload=mcf",
            "design=tagless workload=lbm",
            "design=sram workload=mcf",
            "design=sram workload=lbm",
        ]


class TestSeedPolicy:
    def test_designs_share_seeds(self):
        """Cells differing only in design pair their repetition seeds."""
        s = spec()
        cells = s.cells()
        tagless_mcf = cells[0]
        sram_mcf = cells[2]
        for rep in range(s.repetitions):
            assert (s.repetition_seed(tagless_mcf, rep)
                    == s.repetition_seed(sram_mcf, rep))

    def test_repetitions_differ(self):
        s = spec()
        cell = s.cells()[0]
        seeds = {s.repetition_seed(cell, rep) for rep in range(10)}
        assert len(seeds) == 10

    def test_workloads_differ(self):
        s = spec()
        cells = s.cells()
        assert (s.repetition_seed(cells[0], 0)
                != s.repetition_seed(cells[1], 0))

    def test_campaign_seed_rerolls(self):
        cell_a = spec(seed=1).cells()[0]
        cell_b = spec(seed=2).cells()[0]
        assert (spec(seed=1).repetition_seed(cell_a, 0)
                != spec(seed=2).repetition_seed(cell_b, 0))

    def test_default_seed_is_library_base(self):
        assert spec(seed=None).campaign_seed == rng.BASE_SEED

    def test_factor_order_does_not_reroll(self):
        """Reordering factors in the study file keeps every seed."""
        a = spec()
        b = spec(factors={
            "workload": ["mcf", "lbm"],
            "design": ["tagless", "sram"],
        })
        cell_a = a.cells()[0]   # design=tagless workload=mcf
        cell_b = b.cells()[0]   # workload=mcf design=tagless
        assert a.repetition_seed(cell_a, 1) == b.repetition_seed(cell_b, 1)


class TestHashingAndFiles:
    def test_hash_stable(self):
        assert spec().spec_hash() == spec().spec_hash()

    def test_hash_sensitive_to_content(self):
        assert spec().spec_hash() != spec(repetitions=4).spec_hash()
        assert spec().spec_hash() != spec(seed=9).spec_hash()

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text(json.dumps(STUDY))
        assert CampaignSpec.from_file(str(path)) == spec()

    def test_from_toml_file(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841 - py3.11+
        path = tmp_path / "study.toml"
        path.write_text(
            'name = "unit"\n'
            'repetitions = 3\n'
            'metrics = ["ipc"]\n'
            'baseline = "sram"\n'
            '[factors]\n'
            'design = ["tagless", "sram"]\n'
            'workload = ["mcf", "lbm"]\n'
            '[fixed]\n'
            'accesses = 2000\n'
            'cache_mb = 256\n'
        )
        assert CampaignSpec.from_file(str(path)) == spec()

    def test_bad_json_reports_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            CampaignSpec.from_file(str(path))
