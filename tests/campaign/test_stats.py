"""Unit tests for the campaign statistics layer."""

import math

import pytest

from repro.campaign.stats import (
    bootstrap_interval,
    cliffs_delta,
    cohens_d,
    paired_speedup,
    sample_stdev,
    summarize,
    t_interval,
    t_ppf,
)


class TestTPpf:
    #: Two-sided 95% critical values from standard t tables.
    KNOWN = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
             10: 2.228, 30: 2.042, 100: 1.984}

    @pytest.mark.parametrize("df,expected", sorted(KNOWN.items()))
    def test_matches_tables_at_975(self, df, expected):
        assert t_ppf(0.975, df) == pytest.approx(expected, abs=5e-3)

    def test_symmetry(self):
        assert t_ppf(0.025, 7) == pytest.approx(-t_ppf(0.975, 7))

    def test_median_is_zero(self):
        assert t_ppf(0.5, 9) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            t_ppf(0.0, 5)
        with pytest.raises(ValueError):
            t_ppf(1.0, 5)
        with pytest.raises(ValueError):
            t_ppf(0.9, 0)


class TestTInterval:
    def test_brackets_the_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = t_interval(values)
        assert low < 3.0 < high
        # Hand-checked: 3 +/- 2.776 * stdev/sqrt(5).
        half = 2.776 * sample_stdev(values) / math.sqrt(5)
        assert low == pytest.approx(3.0 - half, rel=1e-3)
        assert high == pytest.approx(3.0 + half, rel=1e-3)

    def test_single_sample_collapses(self):
        assert t_interval([7.5]) == (7.5, 7.5)

    def test_wider_at_higher_confidence(self):
        values = [1.0, 2.0, 4.0, 8.0]
        low95, high95 = t_interval(values, 0.95)
        low99, high99 = t_interval(values, 0.99)
        assert low99 < low95 and high99 > high95

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            t_interval([])


class TestBootstrap:
    def test_deterministic_given_seed(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert (bootstrap_interval(values, seed=42)
                == bootstrap_interval(values, seed=42))

    def test_seed_changes_interval(self):
        # Irregular values so resample-mean quantiles are effectively
        # continuous; integer grids can collide across seeds.
        values = [1.37, 2.91, 0.44, 3.58, 2.06,
                  1.73, 4.42, 0.98, 3.11, 2.64]
        assert (bootstrap_interval(values, seed=1)
                != bootstrap_interval(values, seed=2))

    def test_brackets_the_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = bootstrap_interval(values, seed=0)
        assert low <= 3.0 <= high

    def test_single_sample_collapses(self):
        assert bootstrap_interval([2.0], seed=0) == (2.0, 2.0)


class TestEffectSizes:
    def test_cohens_d_known_value(self):
        # Means 2 apart, both samples with stdev 1 -> d = 2.
        a = [9.0, 10.0, 11.0]
        b = [7.0, 8.0, 9.0]
        assert cohens_d(a, b) == pytest.approx(2.0)

    def test_cohens_d_zero_variance(self):
        assert cohens_d([3.0, 3.0], [3.0, 3.0]) == 0.0

    def test_cliffs_delta_disjoint(self):
        assert cliffs_delta([5.0, 6.0], [1.0, 2.0]) == 1.0
        assert cliffs_delta([1.0, 2.0], [5.0, 6.0]) == -1.0

    def test_cliffs_delta_identical(self):
        assert cliffs_delta([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            cohens_d([], [1.0])
        with pytest.raises(ValueError):
            cliffs_delta([1.0], [])


class TestPairedSpeedup:
    def test_geomean_of_ratios(self):
        comparison = paired_speedup([2.0, 8.0], [1.0, 2.0])
        assert comparison.ratios == (2.0, 4.0)
        assert comparison.speedup == pytest.approx(math.sqrt(8.0))

    def test_interval_brackets_geomean(self):
        comparison = paired_speedup([1.1, 1.2, 1.3, 1.15],
                                    [1.0, 1.0, 1.0, 1.0])
        assert comparison.ci_low <= comparison.speedup <= comparison.ci_high

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            paired_speedup([1.0, 2.0], [1.0])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            paired_speedup([1.0, 0.0], [1.0, 1.0])


class TestSummarize:
    def test_odd_and_even_medians(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0
        assert summarize([4.0, 1.0, 2.0, 3.0]).median == 2.5

    def test_fields_consistent(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0], seed=7)
        assert summary.n == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.boot_low <= summary.boot_high

    def test_deterministic(self):
        values = [1.4, 2.2, 0.9, 3.3]
        assert summarize(values, seed=5) == summarize(values, seed=5)
