"""Reduction, rendering, and schema validation of study reports."""

import json

from repro.campaign.report import (
    reduce_campaign,
    render_cells_csv,
    render_markdown,
    render_pairs_csv,
    validate_report,
    write_reports,
)
from repro.campaign.spec import CampaignSpec

STUDY = {
    "name": "unit",
    "repetitions": 3,
    "factors": {
        "design": ["tagless", "no-l3"],
        "workload": ["mcf"],
    },
    "fixed": {"accesses": 1500, "cache_mb": 256, "scale": 512},
    "metrics": ["ipc"],
    "baseline": "no-l3",
    "bootstrap_resamples": 200,
}


def study(**overrides) -> CampaignSpec:
    data = json.loads(json.dumps(STUDY))
    data.update(overrides)
    return CampaignSpec.from_dict(data)


def synthetic_results():
    """Cell 0 (tagless) consistently 2x cell 1 (no-l3)."""
    return {
        0: {0: {"ipc": 2.0}, 1: {"ipc": 2.2}, 2: {"ipc": 1.8}},
        1: {0: {"ipc": 1.0}, 1: {"ipc": 1.1}, 2: {"ipc": 0.9}},
    }


class TestReduce:
    def test_cell_reports_complete(self):
        report = reduce_campaign(study(), synthetic_results())
        assert len(report.cells) == 2
        assert report.missing_points == 0
        for cell_report in report.cells:
            assert cell_report.completed == 3
            assert dict(cell_report.metrics)["ipc"].n == 3
        assert dict(report.cells[0].metrics)["ipc"].mean == 2.0

    def test_paired_speedup_vs_baseline(self):
        report = reduce_campaign(study(), synthetic_results())
        assert len(report.pairs) == 1
        pair = report.pairs[0]
        assert pair.design == "tagless"
        assert pair.baseline == "no-l3"
        assert pair.metric == "ipc"
        assert pair.comparison.n == 3
        assert 1.9 < pair.comparison.speedup < 2.1
        assert pair.comparison.ci_low <= pair.comparison.speedup
        assert pair.comparison.speedup <= pair.comparison.ci_high

    def test_missing_repetition_counts_and_pairs_shrink(self):
        results = synthetic_results()
        del results[0][1]  # tagless lost repetition 1
        report = reduce_campaign(study(), results)
        assert report.missing_points == 1
        assert report.cells[0].completed == 2
        # The pair only uses repetitions where both designs completed.
        assert report.pairs[0].comparison.n == 2

    def test_empty_cell_has_no_metrics(self):
        results = synthetic_results()
        del results[1]
        report = reduce_campaign(study(), results)
        assert report.missing_points == 3
        assert report.cells[1].completed == 0
        assert report.cells[1].metrics == ()
        assert report.pairs == ()  # baseline cell absent -> no pairs

    def test_no_baseline_means_no_pairs(self):
        report = reduce_campaign(
            study(baseline=None,
                  factors={"design": ["tagless"], "workload": ["mcf"]}),
            {0: {0: {"ipc": 1.0}, 1: {"ipc": 1.1}, 2: {"ipc": 0.9}}},
        )
        assert report.pairs == ()

    def test_reduction_is_deterministic(self):
        a = reduce_campaign(study(), synthetic_results())
        b = reduce_campaign(study(), synthetic_results())
        assert a.to_dict() == b.to_dict()

    def test_campaign_seed_changes_bootstrap_seed(self):
        from repro.campaign.report import _bootstrap_seed

        cell = study().cells()[0]
        assert (_bootstrap_seed(study(seed=1), cell, "ipc")
                != _bootstrap_seed(study(seed=2), cell, "ipc"))
        assert (_bootstrap_seed(study(seed=1), cell, "ipc")
                != _bootstrap_seed(study(seed=1), cell, "edp_js"))


class TestRendering:
    def test_markdown_mentions_cells_and_pairs(self):
        text = render_markdown(reduce_campaign(study(), synthetic_results()))
        assert "# Campaign report: unit" in text
        assert "| tagless | mcf | ipc | 3 |" in text
        assert "Paired speedups vs `no-l3`" in text

    def test_markdown_flags_missing_points(self):
        results = synthetic_results()
        del results[0][2]
        text = render_markdown(reduce_campaign(study(), results))
        assert "missing points: 1" in text

    def test_csv_row_counts(self):
        report = reduce_campaign(study(), synthetic_results())
        cells = render_cells_csv(report).strip().splitlines()
        pairs = render_pairs_csv(report).strip().splitlines()
        assert len(cells) == 1 + 2   # header + one metric row per cell
        assert len(pairs) == 1 + 1

    def test_write_reports_and_validate(self, tmp_path):
        report = reduce_campaign(study(), synthetic_results())
        paths = write_reports(report, str(tmp_path / "out"))
        assert set(paths) == {"markdown", "json", "cells_csv", "pairs_csv"}
        with open(paths["json"]) as handle:
            data = json.load(handle)
        assert validate_report(data) == []
        assert data["spec_hash"] == study().spec_hash()

    def test_written_reports_are_bit_identical(self, tmp_path):
        report = reduce_campaign(study(), synthetic_results())
        paths_a = write_reports(report, str(tmp_path / "a"))
        paths_b = write_reports(report, str(tmp_path / "b"))
        for key in paths_a:
            with open(paths_a[key]) as fa, open(paths_b[key]) as fb:
                assert fa.read() == fb.read()


class TestValidateReport:
    def good(self):
        return reduce_campaign(study(), synthetic_results()).to_dict()

    def test_good_report_passes(self):
        assert validate_report(self.good()) == []

    def test_flags_wrong_schema(self):
        data = self.good()
        data["schema"] = 99
        assert any("schema" in p for p in validate_report(data))

    def test_flags_empty_cells(self):
        data = self.good()
        data["cells"] = []
        assert any("cells" in p for p in validate_report(data))

    def test_flags_missing_summary_key(self):
        data = self.good()
        del data["cells"][0]["metrics"]["ipc"]["mean"]
        assert any("missing mean" in p for p in validate_report(data))

    def test_flags_interval_not_bracketing(self):
        data = self.good()
        data["cells"][0]["metrics"]["ipc"]["mean"] = 1e9
        assert any("bracket" in p for p in validate_report(data))

    def test_flags_bad_cliffs_delta(self):
        data = self.good()
        data["pairs"][0]["cliffs_delta"] = 2.0
        assert any("cliffs_delta" in p for p in validate_report(data))
