"""Campaign status tests: artifact-only reconstruction must be exact.

``repro status <dir>`` sees nothing but ``spec.json`` and
``jobs.jsonl``; these tests prove that is enough -- the reconstructed
counters equal :meth:`CampaignRun.counters` bit for bit on clean runs,
on faulted runs, and across resume chains (where dedup-by-key with the
last row winning is what keeps a heal from double-counting).
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignSpec,
    campaign_status,
    counters_from_rows,
    render_status,
    run_campaign,
)
from repro.harness import Harness, ProgressReporter, RunArtifact

STUDY = {
    "name": "status-unit",
    "repetitions": 2,
    "factors": {"design": ["tagless", "no-l3"],
                "workload": ["sphinx3"]},
    "fixed": {"accesses": 2_000},
    "metrics": ["ipc"],
}


def _run_into(out_dir, spec, jobs=1, **harness_kwargs):
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "spec.json"), "w") as handle:
        json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
    artifact = RunArtifact(os.path.join(out_dir, "jobs.jsonl"),
                           name=f"campaign-{spec.name}")
    harness = Harness(jobs=jobs, artifact=artifact,
                      progress=ProgressReporter(enabled=False),
                      **harness_kwargs)
    run = run_campaign(spec, harness)
    artifact.close()
    return run


class TestReconstruction:
    def test_clean_run_counters_match_exactly(self, tmp_path):
        spec = CampaignSpec.from_dict(STUDY)
        run = _run_into(str(tmp_path), spec, jobs=2)
        status = campaign_status(str(tmp_path))
        assert status.counters == run.counters()
        assert status.name == spec.name
        assert status.spec_hash == spec.spec_hash()
        assert status.expected == status.seen == 4
        assert status.cells == 2 and status.repetitions == 2
        assert status.missing == 0
        assert status.complete
        assert not status.failures
        assert status.job_wall_time_s > 0.0

    def test_faulted_run_is_reported_not_hidden(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "flaky:tagless/sphinx3:99")
        spec = CampaignSpec.from_dict(STUDY)
        run = _run_into(str(tmp_path), spec)
        status = campaign_status(str(tmp_path))
        assert status.counters == run.counters()
        assert status.counters["errors"] == 2  # both tagless reps
        assert len(status.failures) == 2
        assert all(f["status"] == "error" for f in status.failures)
        assert not status.complete

    def test_unstarted_campaign_has_zero_seen(self, tmp_path):
        spec = CampaignSpec.from_dict(STUDY)
        with open(tmp_path / "spec.json", "w") as handle:
            json.dump(spec.to_dict(), handle)
        status = campaign_status(str(tmp_path))
        assert status.seen == 0 and status.missing == 4
        assert status.counters["jobs"] == 0
        assert not status.complete

    def test_not_a_campaign_dir_raises(self, tmp_path):
        with pytest.raises(OSError):
            campaign_status(str(tmp_path))

    def test_resume_chain_dedupes_to_the_healed_row(self, tmp_path,
                                                    monkeypatch):
        # First run: tagless points fail.  Heal: clear the fault,
        # re-run into a second artifact, and chain the rows onto the
        # campaign's jobs.jsonl -- the failed points' keys reappear
        # with status ok, and last-row-wins dedup must prefer them.
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "flaky:tagless/sphinx3:99")
        spec = CampaignSpec.from_dict(STUDY)
        _run_into(str(tmp_path), spec)
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        heal_dir = tmp_path / "heal"
        _run_into(str(heal_dir), spec)
        with open(tmp_path / "jobs.jsonl", "a") as chained, \
                open(heal_dir / "jobs.jsonl") as healed:
            chained.write(healed.read())
        status = campaign_status(str(tmp_path))
        assert status.seen == 4
        assert status.counters["errors"] == 0
        assert not status.failures
        assert status.complete

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        spec = CampaignSpec.from_dict(STUDY)
        run = _run_into(str(tmp_path), spec, jobs=2)
        with open(tmp_path / "jobs.jsonl", "a") as handle:
            handle.write('{"record": "job", "key": "abc", "status": "o')
        status = campaign_status(str(tmp_path))
        assert status.counters == run.counters()


class TestCounterSemantics:
    def _row(self, key, status="ok", cache="off", retries=0):
        return {"record": "job", "key": key, "status": status,
                "cache": cache, "retries": retries}

    def test_error_rollup_matches_campaign_run(self):
        rows = {
            "a": self._row("a"),
            "b": self._row("b", status="timeout"),
            "c": self._row("c", status="worker-crashed"),
            "d": self._row("d", status="error", retries=2),
            "e": self._row("e", cache="hit"),
            "f": self._row("f", cache="resume"),
        }
        counters = counters_from_rows(rows)
        assert counters == {
            "jobs": 6, "errors": 3, "timeouts": 1, "worker_crashes": 1,
            "retries": 2, "resumed": 1, "cache_hits": 1, "computed": 1,
        }

    def test_cached_rows_do_not_count_as_computed(self):
        counters = counters_from_rows({"a": self._row("a", cache="hit")})
        assert counters["computed"] == 0
        assert counters["cache_hits"] == 1


class TestRendering:
    def test_render_mentions_the_load_bearing_numbers(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "flaky:tagless/sphinx3:99")
        spec = CampaignSpec.from_dict(STUDY)
        _run_into(str(tmp_path), spec)
        text = render_status(campaign_status(str(tmp_path)))
        assert "status-unit" in text
        assert "2 cells x 2 repetitions = 4 points" in text
        assert "2 errors" in text
        assert text.count("fail") >= 2

    def test_to_dict_is_json_safe(self, tmp_path):
        spec = CampaignSpec.from_dict(STUDY)
        _run_into(str(tmp_path), spec, jobs=2)
        payload = campaign_status(str(tmp_path)).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["complete"] is True
