"""Report formatting helper tests."""

import pytest

from repro.analysis.report import (
    format_table,
    geomean_row,
    normalize_to,
    percent_delta,
)


def test_normalize_to():
    out = normalize_to({"a": 2.0, "b": 3.0, "c": 1.0}, "a")
    assert out == {"a": 1.0, "b": 1.5, "c": 0.5}


def test_normalize_zero_baseline_rejected():
    with pytest.raises(ValueError):
        normalize_to({"a": 0.0, "b": 1.0}, "a")


def test_format_table_alignment():
    table = format_table(
        "Title", ["col", "value"], [["row1", 1.5], ["longer-row", 0.25]]
    )
    lines = table.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "1.500" in table
    assert "0.250" in table
    # All data lines equal width per column (aligned).
    assert len(lines[3].split()) == 2


def test_format_table_custom_float_format():
    table = format_table("T", ["x"], [[1.23456]], float_format="{:.1f}")
    assert "1.2" in table


def test_geomean_row():
    series = [{"a": 2.0}, {"a": 8.0}]
    row = geomean_row("gm", series, ["a"])
    assert row[0] == "gm"
    assert row[1] == pytest.approx(4.0)


def test_percent_delta():
    assert percent_delta(110.0, 100.0) == pytest.approx(10.0)
    assert percent_delta(90.0, 100.0) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        percent_delta(1.0, 0.0)
