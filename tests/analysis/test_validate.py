"""Validation-harness tests (small but real runs)."""

from repro.analysis.validate import ClaimResult, ValidationReport


def test_report_rendering_and_verdict():
    report = ValidationReport([
        ClaimResult("a", "first", True, "x=1"),
        ClaimResult("b", "second", False, "y=2"),
    ])
    assert not report.passed
    table = report.table()
    assert "PASS" in table and "FAIL" in table


def test_all_pass_report():
    report = ValidationReport([ClaimResult("a", "d", True, "e")])
    assert report.passed


def test_structural_claims_need_no_simulation():
    """The GIPT-size and Table 6 claims are pure arithmetic: check them
    directly (the behavioural claims run in bench_validation.py at
    realistic trace lengths)."""
    from repro.common.addressing import BYTES_PER_MB
    from repro.common.config import tag_array_parameters
    from repro.core.gipt import gipt_storage_megabytes

    assert abs(gipt_storage_megabytes(1.0, 4) - 2.5625) < 0.01
    assert [tag_array_parameters(mb * BYTES_PER_MB)[1]
            for mb in (128, 256, 512, 1024)] == [5, 6, 9, 11]
