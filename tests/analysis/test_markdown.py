"""Markdown rendering tests."""

from repro.analysis.markdown import (
    experiment_section,
    markdown_table,
    normalized_series_markdown,
)


def test_markdown_table_structure():
    table = markdown_table(["a", "b"], [["x", 1.5], ["y", 2.0]])
    lines = table.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| x | 1.500 |"
    assert len(lines) == 4


def test_markdown_table_float_format():
    table = markdown_table(["v"], [[3.14159]], float_format="{:.1f}")
    assert "| 3.1 |" in table


def test_normalized_series():
    text = normalized_series_markdown(
        "IPC", {"mcf": {"sram": 1.3, "tagless": 1.4}}, ["sram", "tagless"]
    )
    assert text.startswith("### IPC")
    assert "| mcf | 1.300 | 1.400 |" in text


def test_experiment_section():
    section = experiment_section("Figure 7", "IPC study.", ["|a|\n|---|"])
    assert section.startswith("## Figure 7")
    assert "IPC study." in section
    assert "|a|" in section
