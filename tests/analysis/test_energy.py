"""Energy breakdown / EDP tests."""

import pytest

from repro.analysis.energy import EnergyBreakdown, compute_energy
from repro.cpu.multicore import BoundTrace, run_interleaved
from repro.designs import create_design


def test_breakdown_totals():
    b = EnergyBreakdown(
        core_j=1.0, ondie_dynamic_j=0.1, ondie_leakage_j=0.2,
        tag_dynamic_j=0.05, tag_leakage_j=0.15, in_package_j=0.3,
        off_package_j=0.4,
    )
    assert b.total_j == pytest.approx(2.2)
    assert b.dram_j == pytest.approx(0.7)
    assert b.tag_j == pytest.approx(0.2)
    assert b.as_dict()["total_j"] == pytest.approx(2.2)


def run_design(design, trace):
    return run_interleaved(design, [BoundTrace(0, 0, trace)])


def test_sram_design_pays_tag_energy(small_config, tiny_trace):
    design = create_design("sram", small_config)
    cores = run_design(design, tiny_trace)
    energy = compute_energy(design, cores, elapsed_ns=1e6)
    assert energy.tag_dynamic_j > 0
    assert energy.tag_leakage_j > 0


def test_tagless_design_has_zero_tag_energy(small_config, tiny_trace):
    design = create_design("tagless", small_config)
    cores = run_design(design, tiny_trace)
    energy = compute_energy(design, cores, elapsed_ns=1e6)
    assert energy.tag_j == 0.0


def test_all_components_positive(small_config, tiny_trace):
    design = create_design("no-l3", small_config)
    cores = run_design(design, tiny_trace)
    energy = compute_energy(design, cores, elapsed_ns=1e6)
    assert energy.core_j > 0
    assert energy.ondie_dynamic_j > 0
    assert energy.ondie_leakage_j > 0
    assert energy.off_package_j > 0


def test_idle_cores_still_burn_power(small_mp_config, tiny_trace):
    """A 4-core config running one trace charges idle power for the
    other three cores over the whole run."""
    design = create_design("no-l3", small_mp_config)
    cores = run_design(design, tiny_trace)
    energy = compute_energy(design, cores, elapsed_ns=1e6)
    floor = 3 * small_mp_config.energy.core_idle_watts * 1e6 * 1e-9
    assert energy.core_j > floor


def test_longer_runs_cost_more_leakage(small_config, tiny_trace):
    design = create_design("no-l3", small_config)
    cores = run_design(design, tiny_trace)
    short = compute_energy(design, cores, elapsed_ns=1e6)
    long = compute_energy(design, cores, elapsed_ns=2e6)
    assert long.ondie_leakage_j > short.ondie_leakage_j
    assert long.total_j > short.total_j
