"""Equations 1-5 verified against hand-computed values."""

import pytest

from repro.analysis.amat import (
    AMATInputs,
    amat_sram_tag,
    amat_tagless,
    avg_l3_latency_sram,
    miss_penalty_ctlb,
    tagless_advantage,
)


@pytest.fixture
def inputs():
    """A hand-checkable parameter point (values in cycles/rates)."""
    return AMATInputs(
        tlb_miss_rate=0.02,
        tlb_miss_penalty=60.0,
        l12_hit_time=4.0,
        l12_miss_rate=0.3,
        tag_time=11.0,
        block_time_in_pkg=58.0,
        page_time_off_pkg=1000.0,
        l3_miss_rate=0.05,
        victim_miss_rate=0.2,
        gipt_time=80.0,
    )


def test_equation3_avg_l3_latency(inputs):
    # 11 + 58 + 0.05 * 1000 = 119
    assert avg_l3_latency_sram(inputs) == pytest.approx(119.0)


def test_equations_1_and_2(inputs):
    # AMAT_tlb_hit = 4 + 0.3 * 119 = 39.7; plus 0.02 * 60 = 1.2 -> 40.9
    assert amat_sram_tag(inputs) == pytest.approx(40.9)


def test_equation5_miss_penalty(inputs):
    # 60 + 0.2 * (80 + 1000) = 276
    assert miss_penalty_ctlb(inputs) == pytest.approx(276.0)


def test_equation4_amat_tagless(inputs):
    # 0.02 * 276 + 4 + 0.3 * 58 = 5.52 + 4 + 17.4 = 26.92
    assert amat_tagless(inputs) == pytest.approx(26.92)


def test_tagless_advantage_positive_here(inputs):
    assert tagless_advantage(inputs) == pytest.approx(40.9 - 26.92)


def test_tagless_loses_when_tlb_misses_dominate(inputs):
    """Sweeping the cTLB miss rate up must eventually flip the sign:
    every miss pays the fill, so a thrashing TLB erodes the win."""
    import dataclasses

    losing = dataclasses.replace(
        inputs, tlb_miss_rate=0.5, victim_miss_rate=1.0, l12_miss_rate=0.05
    )
    assert tagless_advantage(losing) < 0


def test_no_tag_time_anywhere_in_tagless(inputs):
    """Raising tag_time changes SRAM-tag AMAT but never tagless AMAT."""
    import dataclasses

    slow_tags = dataclasses.replace(inputs, tag_time=50.0)
    assert amat_tagless(slow_tags) == amat_tagless(inputs)
    assert amat_sram_tag(slow_tags) > amat_sram_tag(inputs)


def test_rates_validated():
    with pytest.raises(ValueError):
        AMATInputs(
            tlb_miss_rate=1.5, tlb_miss_penalty=60, l12_hit_time=4,
            l12_miss_rate=0.3, tag_time=11, block_time_in_pkg=58,
            page_time_off_pkg=1000, l3_miss_rate=0.05,
            victim_miss_rate=0.2, gipt_time=80,
        )


def test_perfect_victim_cache_reduces_penalty_to_walk(inputs):
    import dataclasses

    perfect = dataclasses.replace(inputs, victim_miss_rate=0.0)
    assert miss_penalty_ctlb(perfect) == pytest.approx(
        inputs.tlb_miss_penalty
    )
