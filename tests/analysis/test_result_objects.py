"""Result-object tests using synthetic simulation outcomes (no sims)."""

import pytest

from repro.analysis.energy import EnergyBreakdown
from repro.analysis.experiments import (
    CacheSizeResult,
    MixResult,
    NonCacheableResult,
    ReplacementResult,
    SingleProgramResult,
)
from repro.cpu.multicore import CoreResult
from repro.cpu.simulator import SimulationResult


def fake_result(ipc=1.0, edp_energy=1.0, elapsed_ns=1e6, l3=80.0):
    """A SimulationResult with chosen aggregates."""
    core = CoreResult(core_id=0, workload="w", instructions=int(ipc * 1e6),
                      cycles=1e6, stall_cycles=0.0)
    energy = EnergyBreakdown(
        core_j=edp_energy, ondie_dynamic_j=0, ondie_leakage_j=0,
        tag_dynamic_j=0, tag_leakage_j=0, in_package_j=0, off_package_j=0,
    )
    return SimulationResult(
        design_name="x", cores=[core], elapsed_ns=elapsed_ns,
        mean_l3_latency_cycles=l3, energy=energy, stats={},
    )


def test_simulation_result_aggregates():
    r = fake_result(ipc=2.0, edp_energy=3.0, elapsed_ns=2e6)
    assert r.ipc_sum == pytest.approx(2.0)
    assert r.total_energy_j == pytest.approx(3.0)
    assert r.edp == pytest.approx(3.0 * 2e-3)
    assert r.instructions == 2_000_000


def test_single_program_result_normalisation():
    results = {
        ("p", "no-l3"): fake_result(ipc=1.0),
        ("p", "tagless"): fake_result(ipc=1.5),
    }
    spr = SingleProgramResult(("p",), ("no-l3", "tagless"), results)
    assert spr.normalized_ipc("p")["tagless"] == pytest.approx(1.5)
    assert spr.geomean_ipc("tagless") == pytest.approx(1.5)


def test_mix_result_tables_and_geomeans():
    results = {
        ("MIX1", "no-l3"): fake_result(ipc=1.0, edp_energy=4.0),
        ("MIX1", "tagless"): fake_result(ipc=2.0, edp_energy=2.0),
    }
    mr = MixResult(("MIX1",), ("no-l3", "tagless"), results)
    assert mr.normalized_ipc("MIX1")["tagless"] == pytest.approx(2.0)
    assert mr.normalized_edp("MIX1")["tagless"] == pytest.approx(0.5)
    assert "MIX1" in mr.ipc_table()
    assert mr.geomean_edp("tagless") == pytest.approx(0.5)


def test_cache_size_result():
    results = {}
    for size, ipcs in ((256, (1.0, 0.7, 0.6)), (1024, (1.0, 1.2, 1.3))):
        for design, ipc in zip(("bi", "sram", "tagless"), ipcs):
            results[(size, "MIX1", design)] = fake_result(ipc=ipc)
    csr = CacheSizeResult((256, 1024), ("MIX1",), results)
    assert csr.normalized_ipc(256, "MIX1")["tagless"] == pytest.approx(0.6)
    assert csr.geomean_ipc(1024, "tagless") == pytest.approx(1.3)
    assert "256MB" in csr.table()


def test_replacement_result():
    results = {
        ("MIX1", "fifo"): fake_result(ipc=1.0),
        ("MIX1", "lru"): fake_result(ipc=1.016),
    }
    rr = ReplacementResult(("MIX1",), results)
    assert rr.lru_over_fifo("MIX1") == pytest.approx(1.016)
    assert rr.mean_gain_percent() == pytest.approx(1.6, abs=0.01)
    assert "LRU gain" in rr.table()


def test_noncacheable_result():
    ncr = NonCacheableResult(
        baseline=fake_result(ipc=1.0),
        with_nc=fake_result(ipc=1.071),
        nc_pages=100,
        threshold=32,
    )
    assert ncr.gain_percent() == pytest.approx(7.1, abs=0.01)
    assert "Figure 13" in ncr.table()
