"""Experiment runner tests (tiny configurations for speed)."""

import pytest

from repro.analysis import experiments as ex


@pytest.fixture(scope="module")
def tiny_single():
    return ex.run_single_programmed(
        programs=("sphinx3", "libquantum"),
        designs=("no-l3", "sram", "tagless"),
        accesses=6_000,
        capacity_scale=64,
    )


def test_single_programmed_structure(tiny_single):
    assert tiny_single.programs == ("sphinx3", "libquantum")
    norm = tiny_single.normalized_ipc("sphinx3")
    assert norm["no-l3"] == pytest.approx(1.0)
    assert set(norm) == {"no-l3", "sram", "tagless"}


def test_single_programmed_tables_render(tiny_single):
    assert "Figure 7a" in tiny_single.ipc_table()
    assert "Figure 7b" in tiny_single.edp_table()
    assert "Figure 8" in tiny_single.l3_latency_table()
    assert "geomean" in tiny_single.ipc_table()


def test_geomeans_positive(tiny_single):
    for design in tiny_single.designs:
        assert tiny_single.geomean_ipc(design) > 0
        assert tiny_single.geomean_edp(design) > 0


def test_multi_programmed_runner():
    result = ex.run_multi_programmed(
        mixes=("MIX1",), designs=("no-l3", "tagless"), accesses=4_000
    )
    norm = result.normalized_ipc("MIX1")
    assert norm["no-l3"] == pytest.approx(1.0)
    assert norm["tagless"] > 0
    assert "MIX1" in result.ipc_table()


def test_cache_size_sweep_runner():
    result = ex.run_cache_size_sweep(
        sizes_mb=(512, 1024), mixes=("MIX1",), accesses=4_000
    )
    for size in (512, 1024):
        norm = result.normalized_ipc(size, "MIX1")
        assert norm["bi"] == pytest.approx(1.0)
    assert "512MB" in result.table()


def test_replacement_runner():
    result = ex.run_replacement_study(mixes=("MIX1",), accesses=4_000)
    assert result.lru_over_fifo("MIX1") > 0
    assert "fifo" in result.table().lower()


def test_parsec_runner():
    result = ex.run_parsec(
        programs=("streamcluster",), designs=("no-l3", "tagless"),
        accesses=4_000,
    )
    norm = result.normalized_ipc("streamcluster")
    assert norm["tagless"] > 0
    assert "streamcluster" in result.ipc_table()


def test_noncacheable_runner():
    result = ex.run_noncacheable_study(accesses=20_000)
    assert result.nc_pages > 0
    assert result.baseline.ipc_sum > 0
    assert result.with_nc.ipc_sum > 0
    assert "Figure 13" in result.table()


def test_harness_dispatch_matches_serial(tmp_path):
    from repro.harness import Harness, ResultCache

    kwargs = dict(programs=("sphinx3",), designs=("no-l3", "tagless"),
                  accesses=3_000)
    serial = ex.run_single_programmed(**kwargs)
    cache = ResultCache(str(tmp_path))
    parallel = ex.run_single_programmed(
        **kwargs, harness=Harness(jobs=2, cache=cache)
    )
    assert serial.ipc_table() == parallel.ipc_table()
    assert serial.edp_table() == parallel.edp_table()
    # A warm rerun replays every point from the cache, same tables.
    warm = ex.run_single_programmed(
        **kwargs, harness=Harness(jobs=1, cache=cache)
    )
    assert warm.ipc_table() == serial.ipc_table()
    assert cache.stats.hits == 2


def test_failed_point_reports_harness_error():
    from repro.harness import HarnessError

    with pytest.raises(HarnessError):
        ex.run_single_programmed(
            programs=("sphinx3",), designs=("no-l3", "bogus"),
            accesses=2_000,
        )


def test_result_objects_serialize_to_dict(tiny_single):
    data = tiny_single.to_dict()
    assert data["programs"] == ["sphinx3", "libquantum"]
    assert data["normalized_ipc"]["sphinx3"]["no-l3"] == pytest.approx(1.0)
    assert set(data["geomean_ipc"]) == set(tiny_single.designs)
    import json
    json.dumps(data)  # must be JSON-clean

    mix = ex.run_multi_programmed(
        mixes=("MIX1",), designs=("no-l3", "tagless"), accesses=4_000
    )
    assert mix.to_dict()["normalized_ipc"]["MIX1"]["no-l3"] == (
        pytest.approx(1.0)
    )
