"""On-die L1/L2 hierarchy behaviour."""

import pytest

from repro.common.addressing import LINES_PER_PAGE
from repro.common.config import OnDieCacheConfig
from repro.sram.hierarchy import OnDieHierarchy


def make_hierarchy(l1_lines=8, l2_lines=32):
    l1 = OnDieCacheConfig(capacity_bytes=l1_lines * 64, associativity=2,
                          hit_cycles=2)
    l2 = OnDieCacheConfig(capacity_bytes=l2_lines * 64, associativity=4,
                          hit_cycles=6)
    return OnDieHierarchy(l1, l2)


def test_first_access_misses_everywhere():
    h = make_hierarchy()
    result = h.access(100, is_write=False)
    assert result.level == "miss"
    assert h.misses == 1


def test_second_access_hits_l1():
    h = make_hierarchy()
    h.access(100, False)
    assert h.access(100, False).level == "l1"


def test_l2_hit_after_l1_eviction():
    h = make_hierarchy(l1_lines=2, l2_lines=64)
    h.access(0, False)
    # Push line 0 out of the tiny L1 (same set usage pattern).
    for line in range(2, 20, 2):
        h.access(line, False)
    result = h.access(0, False)
    assert result.level == "l2"


def test_dirty_l2_victims_surface_as_writebacks():
    h = make_hierarchy(l1_lines=2, l2_lines=4)
    # Write lines then stream enough conflicting lines through to force
    # dirty data fully out of the hierarchy.
    writebacks = []
    for line in range(0, 40, 4):
        result = h.access(line, is_write=True)
        writebacks.extend(result.writebacks)
    assert writebacks, "dirty lines must eventually drain to memory"
    assert h.writebacks == len(writebacks)


def test_clean_traffic_never_writes_back():
    h = make_hierarchy(l1_lines=2, l2_lines=4)
    for line in range(100):
        result = h.access(line, is_write=False)
        assert result.writebacks == []


def test_invalidate_page_removes_all_lines():
    h = make_hierarchy(l1_lines=8, l2_lines=128)
    page = 3
    first = page * LINES_PER_PAGE
    for line in range(first, first + 8):
        h.access(line, is_write=False)
    h.invalidate_page(page)
    assert h.access(first, False).level == "miss"


def test_invalidate_page_returns_dirty_lines():
    h = make_hierarchy(l1_lines=8, l2_lines=128)
    line = 5 * LINES_PER_PAGE + 2
    h.access(line, is_write=True)
    dirty = h.invalidate_page(5)
    assert line in dirty


def test_invalidate_unknown_page_is_noop():
    h = make_hierarchy()
    assert h.invalidate_page(999) == []


def test_miss_rate_and_stats():
    h = make_hierarchy()
    h.access(1, False)
    h.access(1, False)
    assert h.miss_rate() == pytest.approx(0.5)
    stats = h.stats("p_")
    assert stats["p_l1_hits"] == 1.0
    assert stats["p_misses"] == 1.0


def test_reset_stats_keeps_contents():
    h = make_hierarchy()
    h.access(1, False)
    h.reset_stats()
    assert h.misses == 0
    assert h.access(1, False).level == "l1"  # still warm
