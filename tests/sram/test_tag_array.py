"""SRAM tag array (the baseline's physical-to-cache translation)."""

import pytest

from repro.common.addressing import BYTES_PER_GB
from repro.common.config import SRAMTagConfig
from repro.sram.tag_array import SRAMTagArray


@pytest.fixture
def tags():
    return SRAMTagArray(
        capacity_pages=64,
        config=SRAMTagConfig(cache_bytes=BYTES_PER_GB),
    )


def test_lookup_miss_then_insert_then_hit(tags):
    assert tags.lookup(100) is None
    cache_page, eviction = tags.insert(100)
    assert eviction is None
    assert tags.lookup(100) == cache_page


def test_cache_pages_unique_until_full(tags):
    seen = set()
    for ppn in range(64):
        cache_page, eviction = tags.insert(ppn)
        assert eviction is None
        assert cache_page not in seen
        seen.add(cache_page)
    assert len(tags) == 64
    assert seen == set(range(64))


def test_eviction_when_set_full(tags):
    ways = tags.ways
    num_sets = tags.num_sets
    # Fill one set completely, then overflow it.
    for i in range(ways):
        tags.insert(i * num_sets)
    __, eviction = tags.insert(ways * num_sets)
    assert eviction is not None
    assert eviction.physical_page == 0  # LRU victim


def test_lru_within_set(tags):
    num_sets = tags.num_sets
    for i in range(tags.ways):
        tags.insert(i * num_sets)
    tags.lookup(0)  # refresh page 0
    __, eviction = tags.insert(tags.ways * num_sets)
    assert eviction.physical_page == num_sets  # second-oldest now LRU


def test_dirty_tracking_through_eviction(tags):
    num_sets = tags.num_sets
    tags.insert(0, dirty=False)
    tags.lookup(0, is_write=True)  # dirties the page
    for i in range(1, tags.ways):
        tags.insert(i * num_sets)
    __, eviction = tags.insert(tags.ways * num_sets)
    assert eviction.physical_page == 0
    assert eviction.dirty


def test_reinsert_resident_page_keeps_slot(tags):
    cache_page, __ = tags.insert(42)
    again, eviction = tags.insert(42)
    assert again == cache_page
    assert eviction is None
    assert len(tags) == 1


def test_contains_does_not_count_probe(tags):
    tags.insert(7)
    probes = tags.probes
    assert tags.contains(7)
    assert tags.probes == probes


def test_cost_model_from_table6(tags):
    assert tags.access_cycles == 11  # 1 GB cache
    assert tags.probe_nj > 0
    assert tags.leakage_watts == pytest.approx(1.0)


def test_hit_rate_and_stats(tags):
    tags.insert(1)
    tags.lookup(1)
    tags.lookup(2)
    assert tags.hit_rate() == pytest.approx(0.5)
    stats = tags.stats("t_")
    assert stats["t_probes"] == 2.0
    assert stats["t_resident_pages"] == 1.0


def test_small_capacity_clamps_ways():
    tags = SRAMTagArray(
        capacity_pages=8,
        config=SRAMTagConfig(cache_bytes=BYTES_PER_GB, associativity=16),
    )
    assert tags.ways == 8


def test_indivisible_capacity_rejected():
    with pytest.raises(ValueError):
        SRAMTagArray(
            capacity_pages=65,
            config=SRAMTagConfig(cache_bytes=BYTES_PER_GB, associativity=2),
        )
