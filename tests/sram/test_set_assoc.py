"""Set-associative cache tests, including a hypothesis residency model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sram.set_assoc import SetAssociativeCache


def test_miss_then_hit():
    cache = SetAssociativeCache(num_sets=4, ways=2)
    assert not cache.lookup(10)
    cache.insert(10)
    assert cache.lookup(10)
    assert cache.hits == 1
    assert cache.misses == 1


def test_capacity_and_eviction():
    cache = SetAssociativeCache(num_sets=1, ways=2)
    cache.insert(1)
    cache.insert(2)
    evicted = cache.insert(3)
    assert evicted is not None
    assert evicted.key == 1  # LRU
    assert len(cache) == 2


def test_eviction_reports_dirtiness():
    cache = SetAssociativeCache(num_sets=1, ways=1)
    cache.insert(1, dirty=True)
    evicted = cache.insert(2)
    assert evicted.key == 1 and evicted.dirty


def test_write_lookup_sets_dirty():
    cache = SetAssociativeCache(num_sets=1, ways=1)
    cache.insert(1)
    cache.lookup(1, is_write=True)
    evicted = cache.insert(2)
    assert evicted.dirty


def test_reinsert_merges_dirty_and_refreshes():
    cache = SetAssociativeCache(num_sets=1, ways=2)
    cache.insert(1, dirty=True)
    cache.insert(2)
    assert cache.insert(1, dirty=False) is None  # no duplicate eviction
    evicted = cache.insert(3)
    assert evicted.key == 2  # 1 was refreshed


def test_invalidate():
    cache = SetAssociativeCache(num_sets=2, ways=2)
    cache.insert(4, dirty=True)
    dropped = cache.invalidate(4)
    assert dropped.key == 4 and dropped.dirty
    assert cache.invalidate(4) is None
    assert not cache.contains(4)


def test_mark_dirty():
    cache = SetAssociativeCache(num_sets=1, ways=1)
    cache.insert(9)
    cache.mark_dirty(9)
    assert cache.invalidate(9).dirty


def test_keys_map_to_distinct_sets():
    cache = SetAssociativeCache(num_sets=4, ways=1)
    for key in range(4):
        cache.insert(key)
    assert len(cache) == 4  # no conflict evictions


def test_occupancy_and_hit_rate():
    cache = SetAssociativeCache(num_sets=2, ways=2)
    assert cache.occupancy() == 0.0
    assert cache.hit_rate() == 0.0
    cache.insert(1)
    cache.lookup(1)
    cache.lookup(2)
    assert cache.occupancy() == pytest.approx(0.25)
    assert cache.hit_rate() == pytest.approx(0.5)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        SetAssociativeCache(num_sets=0, ways=4)


@settings(max_examples=60)
@given(
    num_sets=st.sampled_from([1, 2, 4]),
    ways=st.sampled_from([1, 2, 4]),
    keys=st.lists(st.integers(0, 31), max_size=120),
)
def test_residency_invariants(num_sets, ways, keys):
    """Whatever the access pattern:

    - no set ever exceeds its way count;
    - an inserted key is resident until evicted/invalidated;
    - total occupancy never exceeds capacity.
    """
    cache = SetAssociativeCache(num_sets=num_sets, ways=ways)
    resident = set()
    for key in keys:
        evicted = cache.insert(key)
        resident.add(key)
        if evicted is not None:
            resident.discard(evicted.key)
        assert cache.contains(key)
        assert len(cache) <= cache.capacity_blocks
    assert set(cache) == resident
    for key in resident:
        assert len(cache.set_of(key)) <= ways
