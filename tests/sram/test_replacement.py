"""Replacement policy tests, including a model-based LRU property test."""

import pytest
from hypothesis import given, strategies as st

from repro.sram.replacement import (
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy()
        for key in (1, 2, 3):
            p.on_insert(key)
        p.on_access(1)
        assert p.victim() == 2

    def test_evict_removes(self):
        p = LRUPolicy()
        p.on_insert(1)
        p.on_insert(2)
        p.on_evict(1)
        assert p.victim() == 2
        assert len(p) == 1

    @given(st.lists(st.tuples(st.sampled_from(["insert", "access"]),
                              st.integers(0, 7)), max_size=60))
    def test_matches_reference_model(self, ops):
        """Drive the policy and a list-based reference model in lockstep."""
        policy = LRUPolicy()
        model = []  # least-recent first
        for op, key in ops:
            if op == "insert" and key not in model:
                policy.on_insert(key)
                model.append(key)
            elif op == "access" and key in model:
                policy.on_access(key)
                model.remove(key)
                model.append(key)
        if model:
            assert policy.victim() == model[0]
        assert sorted(policy.keys()) == sorted(model)


class TestFIFO:
    def test_ignores_accesses(self):
        p = FIFOPolicy()
        for key in (1, 2, 3):
            p.on_insert(key)
        p.on_access(1)
        p.on_access(1)
        assert p.victim() == 1

    def test_insertion_order(self):
        p = FIFOPolicy()
        p.on_insert(5)
        p.on_insert(3)
        assert p.victim() == 5


class TestClock:
    def test_second_chance(self):
        p = ClockPolicy()
        for key in (1, 2, 3):
            p.on_insert(key)
        p.on_access(1)  # reference bit set
        assert p.victim() == 2  # 1 gets a second chance

    def test_all_referenced_degrades_to_fifo(self):
        p = ClockPolicy()
        for key in (1, 2):
            p.on_insert(key)
            p.on_access(key)
        assert p.victim() == 1

    def test_evict(self):
        p = ClockPolicy()
        p.on_insert(1)
        p.on_insert(2)
        p.on_evict(1)
        assert p.victim() == 2


class TestRandom:
    def test_victim_is_resident(self):
        p = RandomPolicy(seed=1)
        for key in range(5):
            p.on_insert(key)
        for _ in range(20):
            assert p.victim() in range(5)

    def test_deterministic_for_seed(self):
        a, b = RandomPolicy(seed=7), RandomPolicy(seed=7)
        for key in range(5):
            a.on_insert(key)
            b.on_insert(key)
        assert [a.victim() for _ in range(5)] == [b.victim() for _ in range(5)]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("fifo", FIFOPolicy),
        ("clock", ClockPolicy), ("random", RandomPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("belady")


class TestClockCompaction:
    """Lazy eviction must not let stale ring slots pile up forever."""

    def test_ring_bounded_under_mixed_churn(self):
        import random

        p = ClockPolicy()
        rng = random.Random(1)
        for _ in range(100_000):
            if len(p) >= 8:
                p.on_evict(p.victim())
            key = rng.randrange(32)
            if key in p._referenced:
                # Resident re-insert: stales the old slot.
                p.on_insert(key) if rng.random() < 0.5 else p.on_access(key)
            else:
                p.on_insert(key)
            assert len(p._ring) <= 2 * len(p) + 1
        assert p._stale <= len(p)

    def test_invalidate_only_churn_is_compacted(self):
        # The pathological caller: inserts and invalidates but never asks
        # for a victim, so the hand never sweeps stale slots away.
        p = ClockPolicy()
        for i in range(100_000):
            p.on_insert(i % 16)
            p.on_evict(i % 16)
            assert len(p._ring) <= 2 * len(p) + 1
        assert len(p) == 0
        assert len(p._ring) == 0
        assert not p._version

    def test_compaction_preserves_hand_order(self):
        p = ClockPolicy()
        for key in range(8):
            p.on_insert(key)
        p.on_access(5)
        for key in range(5):
            p.on_evict(key)  # the 5th eviction triggers compaction
        assert p._stale == 0
        assert list(p._ring) == [(5, 1), (6, 1), (7, 1)]
        # 5 still holds its reference bit: second chance, then 6 evicts.
        assert p.victim() == 6
