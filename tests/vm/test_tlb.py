"""TLB and hierarchy tests, including the inclusion property test."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.tlb import TLB, TLBEntry, TLBHierarchy


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(4)
        assert tlb.lookup(1) is None
        tlb.insert(1, TLBEntry(target_page=10))
        assert tlb.lookup(1).target_page == 10

    def test_lru_eviction(self):
        tlb = TLB(2)
        tlb.insert(1, TLBEntry(1))
        tlb.insert(2, TLBEntry(2))
        tlb.lookup(1)
        evicted = tlb.insert(3, TLBEntry(3))
        assert evicted[0] == 2

    def test_reinsert_no_eviction(self):
        tlb = TLB(2)
        tlb.insert(1, TLBEntry(1))
        tlb.insert(2, TLBEntry(2))
        assert tlb.insert(1, TLBEntry(11)) is None
        assert tlb.peek(1).target_page == 11

    def test_invalidate(self):
        tlb = TLB(2)
        tlb.insert(1, TLBEntry(1))
        assert tlb.invalidate(1).target_page == 1
        assert tlb.invalidate(1) is None

    def test_flush(self):
        tlb = TLB(4)
        for i in range(3):
            tlb.insert(i, TLBEntry(i))
        assert tlb.flush() == 3
        assert len(tlb) == 0

    def test_peek_no_side_effects(self):
        tlb = TLB(2)
        tlb.insert(1, TLBEntry(1))
        hits = tlb.hits
        tlb.peek(1)
        assert tlb.hits == hits

    def test_hit_rate(self):
        tlb = TLB(2)
        tlb.insert(1, TLBEntry(1))
        tlb.lookup(1)
        tlb.lookup(2)
        assert tlb.hit_rate() == pytest.approx(0.5)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            TLB(0)


class TestTLBHierarchy:
    def make(self, l1=2, l2=4, record=None):
        def on_evict(vpn, entry):
            if record is not None:
                record.append(vpn)
        return TLBHierarchy(l1, l2, on_l2_evict=on_evict)

    def test_install_then_l1_hit(self):
        h = self.make()
        h.install(1, TLBEntry(10))
        level, entry = h.lookup(1)
        assert level == "l1"
        assert entry.target_page == 10

    def test_l2_hit_promotes(self):
        h = self.make(l1=1, l2=4)
        h.install(1, TLBEntry(1))
        h.install(2, TLBEntry(2))  # evicts 1 from the 1-entry L1
        level, __ = h.lookup(1)
        assert level == "l2"
        level, __ = h.lookup(1)
        assert level == "l1"  # promoted

    def test_miss_counts(self):
        h = self.make()
        level, entry = h.lookup(99)
        assert level == "miss" and entry is None
        assert h.misses == 1

    def test_l2_eviction_fires_callback_and_maintains_inclusion(self):
        evicted = []
        h = self.make(l1=2, l2=2, record=evicted)
        h.install(1, TLBEntry(1))
        h.install(2, TLBEntry(2))
        h.install(3, TLBEntry(3))
        assert evicted == [1]
        assert not h.l1.contains(1)  # inclusion: left L1 with L2

    def test_invalidate_fires_callback(self):
        evicted = []
        h = self.make(record=evicted)
        h.install(1, TLBEntry(1))
        assert h.invalidate(1)
        assert evicted == [1]
        assert not h.invalidate(1)

    def test_resident_tracks_l2(self):
        h = self.make(l1=1, l2=4)
        h.install(1, TLBEntry(1))
        h.install(2, TLBEntry(2))
        assert h.resident(1)  # out of L1, still within TLB reach

    def test_update_target_rewrites_both_levels(self):
        h = self.make()
        h.install(1, TLBEntry(10))
        h.update_target(1, TLBEntry(20))
        __, entry = h.lookup(1)
        assert entry.target_page == 20

    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ValueError):
            TLBHierarchy(4, 2)

    def test_reset_stats_keeps_translations(self):
        h = self.make()
        h.install(1, TLBEntry(1))
        h.lookup(1)
        h.reset_stats()
        assert h.accesses == 0
        level, __ = h.lookup(1)
        assert level == "l1"


@settings(max_examples=50)
@given(st.lists(st.integers(0, 15), max_size=80))
def test_inclusion_invariant(vpns):
    """L1 contents are always a subset of L2 contents (inclusive pair).

    Residence bookkeeping (the GIPT bit vector) depends on this: a page
    is within TLB reach iff it is in the L2 TLB.
    """
    h = TLBHierarchy(2, 6)
    for vpn in vpns:
        level, entry = h.lookup(vpn)
        if level == "miss":
            h.install(vpn, TLBEntry(vpn + 1000))
        l1_keys = set(h.l1)
        l2_keys = set(h.l2)
        assert l1_keys <= l2_keys
        assert len(l1_keys) <= 2 and len(l2_keys) <= 6
