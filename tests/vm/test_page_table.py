"""Page table and frame allocator tests."""

import pytest

from repro.common.errors import SimulationError
from repro.vm.page_table import (
    PageTable,
    PageTableEntry,
    PhysicalFrameAllocator,
)


class TestPhysicalFrameAllocator:
    def test_allocates_unique_frames(self):
        alloc = PhysicalFrameAllocator(total_pages=100)
        frames = [alloc.allocate() for _ in range(100)]
        assert len(set(frames)) == 100
        assert all(0 <= f < 100 for f in frames)

    def test_exhaustion_raises(self):
        alloc = PhysicalFrameAllocator(total_pages=3)
        for _ in range(3):
            alloc.allocate()
        with pytest.raises(SimulationError):
            alloc.allocate()

    def test_stride_coprime_adjustment(self):
        # total divisible by the default stride: must still permute.
        alloc = PhysicalFrameAllocator(total_pages=997 * 2, stride=997)
        frames = [alloc.allocate() for _ in range(997 * 2)]
        assert len(set(frames)) == 997 * 2

    def test_scatters_consecutive_allocations(self):
        alloc = PhysicalFrameAllocator(total_pages=10_000)
        a, b = alloc.allocate(), alloc.allocate()
        assert abs(a - b) > 1  # not linear

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PhysicalFrameAllocator(0)


class TestPageTableEntry:
    def test_target_is_physical_by_default(self):
        pte = PageTableEntry(virtual_page=1, physical_page=42)
        assert pte.target_page == 42

    def test_install_in_cache_switches_target(self):
        pte = PageTableEntry(virtual_page=1, physical_page=42)
        pte.install_in_cache(7)
        assert pte.valid_in_cache
        assert pte.target_page == 7

    def test_evict_restores_physical(self):
        pte = PageTableEntry(virtual_page=1, physical_page=42)
        pte.install_in_cache(7)
        pte.evict_from_cache()
        assert not pte.valid_in_cache
        assert pte.target_page == 42
        assert pte.cache_page is None

    def test_vc_without_cache_page_is_an_error(self):
        pte = PageTableEntry(virtual_page=1, physical_page=42,
                             valid_in_cache=True)
        with pytest.raises(SimulationError):
            pte.target_page


class TestPageTable:
    def test_lazy_materialisation(self):
        table = PageTable(PhysicalFrameAllocator(100))
        assert len(table) == 0
        pte = table.entry(5)
        assert len(table) == 1
        assert table.entry(5) is pte  # stable identity

    def test_distinct_pages_get_distinct_frames(self):
        table = PageTable(PhysicalFrameAllocator(100))
        a = table.entry(1).physical_page
        b = table.entry(2).physical_page
        assert a != b

    def test_existing_entry(self):
        table = PageTable(PhysicalFrameAllocator(100))
        assert table.existing_entry(9) is None
        table.entry(9)
        assert table.existing_entry(9) is not None

    def test_set_non_cacheable(self):
        table = PageTable(PhysicalFrameAllocator(100))
        table.set_non_cacheable(3)
        assert table.entry(3).non_cacheable
        table.set_non_cacheable(3, False)
        assert not table.entry(3).non_cacheable

    def test_cached_pages_count(self):
        table = PageTable(PhysicalFrameAllocator(100))
        table.entry(1).install_in_cache(0)
        table.entry(2)
        assert table.cached_pages() == 1

    def test_two_tables_share_allocator_without_frame_overlap(self):
        alloc = PhysicalFrameAllocator(100)
        t0, t1 = PageTable(alloc, 0), PageTable(alloc, 1)
        frames = {t0.entry(i).physical_page for i in range(10)}
        frames |= {t1.entry(i).physical_page for i in range(10)}
        assert len(frames) == 20  # no aliasing across processes
