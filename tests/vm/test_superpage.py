"""Superpage support tests (Sections 3.5 and 6)."""

import dataclasses

import pytest

from repro.common.errors import SimulationError
from repro.designs.tagless_design import TaglessDesign
from repro.vm.page_table import PageTable, PhysicalFrameAllocator


@pytest.fixture
def table():
    return PageTable(PhysicalFrameAllocator(4096))


class TestAllocator:
    def test_contiguous_run_from_the_top(self):
        alloc = PhysicalFrameAllocator(1000)
        base = alloc.allocate_contiguous(16)
        assert base == 1000 - 16

    def test_strided_allocations_avoid_the_reservation(self):
        alloc = PhysicalFrameAllocator(100)
        base = alloc.allocate_contiguous(50)
        frames = [alloc.allocate() for _ in range(50)]
        assert all(frame < base for frame in frames)
        with pytest.raises(SimulationError):
            alloc.allocate()

    def test_reservation_exhaustion(self):
        alloc = PhysicalFrameAllocator(10)
        with pytest.raises(SimulationError):
            alloc.allocate_contiguous(11)


class TestPageTableSuperpages:
    def test_map_and_translate(self, table):
        pte = table.map_superpage(base_vpn=16, order=3)
        assert pte.is_superpage
        assert pte.superpage_pages == 8
        # Any page of the run resolves to the base PTE.
        assert table.entry(20) is pte
        assert table.superpage_base(20) == (16, 3)
        assert table.superpage_base(24) is None

    def test_alignment_enforced(self, table):
        with pytest.raises(ValueError):
            table.map_superpage(base_vpn=3, order=2)
        with pytest.raises(ValueError):
            table.map_superpage(base_vpn=0, order=0)

    def test_overlap_with_existing_mapping_rejected(self, table):
        table.entry(17)
        with pytest.raises(SimulationError):
            table.map_superpage(base_vpn=16, order=3)

    def test_split_creates_contiguous_4k_ptes(self, table):
        base_pte = table.map_superpage(base_vpn=16, order=3)
        created = table.split_superpage(16)
        assert created == 8
        assert table.superpage_splits == 1
        for offset in range(8):
            pte = table.entry(16 + offset)
            assert not pte.is_superpage
            assert pte.physical_page == base_pte.physical_page + offset

    def test_split_unknown_base_rejected(self, table):
        with pytest.raises(SimulationError):
            table.split_superpage(64)


class TestDesignIntegration:
    def test_split_policy_then_normal_caching(self, small_config):
        design = TaglessDesign(small_config)
        design.page_table(0).map_superpage(base_vpn=16, order=3)
        cost = design.access(0, 0, 18, 0, False, 0.0)
        # The split happened and the page was then cached normally.
        assert design.page_table(0).superpage_splits == 1
        assert design.engine.fills == 1
        assert design.handlers[0].superpage_splits == 1
        # Sibling pages are now ordinary pages: a later touch fills them
        # without another split.
        design.access(0, 0, 19, 0, False, 10_000.0)
        assert design.page_table(0).superpage_splits == 1
        assert design.engine.fills == 2
        design.engine.check_invariants()

    def test_split_cost_charged(self, small_config):
        design = TaglessDesign(small_config)
        design.page_table(0).map_superpage(base_vpn=16, order=3)
        sp_cost = design.access(0, 0, 18, 0, False, 0.0).cycles
        plain_cost = design.access(0, 0, 999, 0, False, 10**6).cycles
        assert sp_cost > plain_cost  # the one-time split premium

    def test_nc_policy_bypasses_whole_run(self, small_config):
        config = dataclasses.replace(
            small_config,
            dram_cache=dataclasses.replace(
                small_config.dram_cache, superpage_handling="nc"
            ),
        )
        design = TaglessDesign(config)
        design.page_table(0).map_superpage(base_vpn=16, order=3)
        design.access(0, 0, 18, 0, False, 0.0)
        assert design.engine.fills == 0
        assert design.handlers[0].superpage_nc_pins == 1
        # Correct per-page frames: two pages of the run map to distinct,
        # adjacent targets.
        design.access(0, 0, 19, 0, False, 1000.0)
        t18 = design.tlbs[0].l1.peek(18).target_page
        t19 = design.tlbs[0].l1.peek(19).target_page
        assert t19 == t18 + 1

    def test_conventional_designs_translate_superpages(self, small_config):
        from repro.designs.no_l3 import NoL3Design

        design = NoL3Design(small_config)
        design.page_table(0).map_superpage(base_vpn=16, order=3)
        design.access(0, 0, 18, 0, False, 0.0)
        design.access(0, 0, 19, 0, False, 100.0)
        t18 = design.tlbs[0].l1.peek(18).target_page
        t19 = design.tlbs[0].l1.peek(19).target_page
        assert t19 == t18 + 1

    def test_simulator_plumbs_superpages(self, small_config, tiny_trace):
        from repro.cpu.multicore import BoundTrace
        from repro.cpu.simulator import Simulator

        result = Simulator(small_config).run(
            "tagless",
            [BoundTrace(0, 0, tiny_trace)],
            superpages={0: [(0, 3)]},
            warmup_fraction=0.0,  # keep the split inside the measured run
        )
        assert result.ipc_sum > 0
        assert result.stats["core0_handler_superpage_splits"] >= 1
