"""Page-table walker cost model tests."""

import pytest

from repro.common.config import TLBConfig, default_system
from repro.dram.device import DRAMDevice
from repro.vm.page_table import PageTable, PhysicalFrameAllocator
from repro.vm.walker import PageTableWalker


@pytest.fixture
def table():
    return PageTable(PhysicalFrameAllocator(1000))


def test_walk_returns_pte_and_fixed_cycles(table):
    walker = PageTableWalker(TLBConfig(walk_cycles=60))
    pte, cycles = walker.walk(table, 5)
    assert pte.virtual_page == 5
    assert cycles == 60.0
    assert walker.walks == 1
    assert table.walks == 1


def test_walk_charges_pte_read_energy(table):
    cfg = default_system()
    device = DRAMDevice(cfg.off_package, cfg.off_package_energy)
    walker = PageTableWalker(TLBConfig(), pte_backing=device)
    walker.walk(table, 1)
    assert device.energy.read_bytes == 8
    # Energy only: no demand latency was charged to the device.
    assert device.demand_accesses == 0


def test_update_pte_costs_one_cycle(table):
    walker = PageTableWalker(TLBConfig())
    pte, __ = walker.walk(table, 1)
    assert walker.update_pte(pte) == 1.0


def test_stats_and_reset(table):
    walker = PageTableWalker(TLBConfig(walk_cycles=10))
    walker.walk(table, 1)
    walker.walk(table, 2)
    assert walker.stats("w_")["w_walks"] == 2.0
    assert walker.stats("w_")["w_cycles_total"] == 20.0
    walker.reset_stats()
    assert walker.walks == 0
