"""Fault-tolerance tests: timeouts, crash recovery, retries, resume.

Failures are made reproducible with the ``REPRO_FAULT_INJECT`` hook
(:mod:`repro.harness.faults`): named jobs hang, SIGKILL their worker,
or fail transiently, and the assertions below prove the sweep survives
with exactly the right per-job statuses while every unaffected point
stays bit-identical to a fault-free run.
"""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.harness import (
    HarnessError,
    JobSpec,
    RunArtifact,
    load_resume_map,
    parse_fault_plan,
    read_artifact,
    run_jobs,
)
from repro.harness import runner as runner_mod
from repro.obs.harness import HarnessObserver

SPECS = [
    JobSpec(design="no-l3", workload="sphinx3", accesses=2_000),
    JobSpec(design="tagless", workload="sphinx3", accesses=2_000),
    JobSpec(design="tagless", workload="libquantum", accesses=2_000),
]

#: Rules keyed off these labels; substring-matched against spec.label.
HANG = "hang:tagless/sphinx3"
CRASH = "crash:no-l3/sphinx3"
FLAKY2 = "flaky:tagless/libquantum:2"


def _metrics(outcomes):
    return [
        None if o.result is None else
        (o.result.ipc_sum, o.result.edp, o.result.mean_l3_latency_cycles)
        for o in outcomes
    ]


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial metrics every degraded run is compared against."""
    outcomes = run_jobs(SPECS, jobs=1)
    assert all(o.ok for o in outcomes)
    return _metrics(outcomes)


class TestFaultPlan:
    def test_empty_plan(self):
        assert parse_fault_plan(None) == []
        assert parse_fault_plan("") == []

    def test_grammar(self):
        rules = parse_fault_plan("hang:a/b,crash:c,flaky:d:3")
        assert [(r.kind, r.label, r.count) for r in rules] == [
            ("hang", "a/b", 0), ("crash", "c", 0), ("flaky", "d", 3),
        ]

    @pytest.mark.parametrize("text", [
        "explode:a", "hang", "hang:", "flaky:a", "flaky:a:x", "flaky:a:-1",
    ])
    def test_malformed_plan_raises(self, text):
        with pytest.raises(ConfigurationError):
            parse_fault_plan(text)


class TestTimeout:
    def test_injected_hang_hits_timeout(self, monkeypatch, baseline):
        monkeypatch.setenv("REPRO_FAULT_INJECT", HANG)
        outcomes = run_jobs(SPECS, jobs=2, timeout_s=1.0)
        assert [o.status for o in outcomes] == ["ok", "timeout", "ok"]
        hung = outcomes[1]
        assert hung.result is None and not hung.ok
        assert "timed out" in hung.error
        assert hung.wall_time_s >= 1.0
        # Every unaffected point is bit-identical to the fault-free run.
        metrics = _metrics(outcomes)
        assert metrics[0] == baseline[0] and metrics[2] == baseline[2]

    def test_env_default_supervises_even_serial_runs(self, monkeypatch):
        # jobs=1 normally runs in-process, where a hang cannot be
        # preempted; a configured timeout must route through a killable
        # one-worker pool instead.
        monkeypatch.setenv("REPRO_FAULT_INJECT", HANG)
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "1.0")
        outcomes = run_jobs(SPECS, jobs=1)
        assert [o.status for o in outcomes] == ["ok", "timeout", "ok"]

    def test_spec_timeout_overrides_run_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", HANG)
        specs = [SPECS[0], dataclasses.replace(SPECS[1], timeout_s=1.0)]
        outcomes = run_jobs(specs, jobs=2, timeout_s=120.0)
        assert [o.status for o in outcomes] == ["ok", "timeout"]
        assert outcomes[1].wall_time_s < 60.0

    def test_bad_env_timeout_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "soon")
        with pytest.raises(HarnessError):
            run_jobs(SPECS[:1], jobs=1)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            JobSpec(design="no-l3", workload="sphinx3", timeout_s=0.0)

    def test_retry_knob_validation(self):
        with pytest.raises(ValueError):
            run_jobs(SPECS[:1], retries=-1)
        with pytest.raises(ValueError):
            run_jobs(SPECS[:1], retry_backoff_s=-0.5)


class TestWorkerCrash:
    def test_crash_fails_only_that_job(self, monkeypatch, baseline):
        monkeypatch.setenv("REPRO_FAULT_INJECT", CRASH)
        outcomes = run_jobs(SPECS, jobs=2, timeout_s=60.0)
        assert [o.status for o in outcomes] == ["worker-crashed", "ok", "ok"]
        assert "worker process died" in outcomes[0].error
        # The pool replaced the dead worker and finished the rest
        # bit-identically.
        metrics = _metrics(outcomes)
        assert metrics[1] == baseline[1] and metrics[2] == baseline[2]


class TestRetries:
    def test_flaky_succeeds_within_budget(self, monkeypatch, baseline):
        monkeypatch.setenv("REPRO_FAULT_INJECT", FLAKY2)
        observer = HarnessObserver(label="unit")
        outcomes = run_jobs(SPECS, jobs=2, timeout_s=60.0, retries=2,
                            observer=observer)
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        assert [o.retries for o in outcomes] == [0, 0, 2]
        # A retried attempt is a fresh deterministic execution: metrics
        # cannot depend on how many tries it took.
        assert _metrics(outcomes) == baseline
        assert observer.retries == 2
        retry_events = [e for e in observer.tracer.events()
                        if e[2] == "retry"]
        assert len(retry_events) == 2

    def test_flaky_exhausts_budget_in_process(self, monkeypatch):
        # The serial in-process path owns its own retry loop.
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "flaky:tagless/libquantum:3")
        outcomes = run_jobs(SPECS, jobs=1, retries=1)
        flaky = outcomes[2]
        assert flaky.status == "error" and flaky.retries == 1
        assert "InjectedFault" in flaky.error
        assert "Traceback" in flaky.error_detail

    def test_default_is_single_attempt(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "flaky:tagless/libquantum:1")
        outcomes = run_jobs(SPECS, jobs=1)
        assert outcomes[2].status == "error"
        assert outcomes[2].retries == 0


class TestResume:
    def _interrupted_artifact(self, path, monkeypatch):
        """An artifact where the middle point failed (never completed)."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "flaky:tagless/sphinx3:99")
        with RunArtifact(str(path), name="first") as artifact:
            outcomes = run_jobs(SPECS, jobs=1, artifact=artifact)
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert [o.status for o in outcomes] == ["ok", "error", "ok"]

    def test_resume_recomputes_exactly_the_missing_points(
            self, tmp_path, monkeypatch, baseline):
        first = tmp_path / "first.jsonl"
        self._interrupted_artifact(first, monkeypatch)
        seeds = load_resume_map(str(first))
        assert len(seeds) == 2  # the failed row is not a seed

        second = tmp_path / "second.jsonl"
        with RunArtifact(str(second), name="second") as artifact:
            outcomes = run_jobs(SPECS, jobs=1, resume=seeds,
                                artifact=artifact)
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        assert [o.cache_status for o in outcomes] == [
            "resume", "off", "resume",
        ]
        assert _metrics(outcomes) == baseline
        summary = read_artifact(str(second))[-1]
        assert summary["resumed"] == 2 and summary["errors"] == 0

    def test_resume_chains_through_artifacts(self, tmp_path, monkeypatch):
        # The second artifact embeds resumed results too, so a third
        # run can resume from it and recompute nothing.
        first = tmp_path / "first.jsonl"
        self._interrupted_artifact(first, monkeypatch)
        second = tmp_path / "second.jsonl"
        with RunArtifact(str(second), name="second") as artifact:
            run_jobs(SPECS, jobs=1, resume=load_resume_map(str(first)),
                     artifact=artifact)
        outcomes = run_jobs(SPECS, jobs=1,
                            resume=load_resume_map(str(second)))
        assert [o.cache_status for o in outcomes] == ["resume"] * 3

    def test_headline_only_artifacts_yield_no_seeds(self, tmp_path):
        path = tmp_path / "slim.jsonl"
        with RunArtifact(str(path), name="slim",
                         store_results=False) as artifact:
            run_jobs(SPECS[:1], jobs=1, artifact=artifact)
        assert load_resume_map(str(path)) == {}

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        with RunArtifact(str(path), name="torn") as artifact:
            run_jobs(SPECS[:2], jobs=1, artifact=artifact)
        with open(path, "a") as handle:
            handle.write('{"record": "job", "key": "abc", "status": "o')
        assert len(load_resume_map(str(path))) == 2


class TestBookkeeping:
    def test_unfilled_slot_raises_instead_of_truncating(self, monkeypatch):
        # Simulate a scheduling bug: the pooled path returns without
        # delivering any outcome.  run_jobs must refuse to hand back a
        # silently truncated, misordered list.
        monkeypatch.setattr(runner_mod, "_run_pooled",
                            lambda *args, **kwargs: None)
        with pytest.raises(HarnessError, match="unfilled"):
            run_jobs(SPECS, jobs=2, timeout_s=60.0)

    def test_error_detail_lands_in_artifact(self, tmp_path):
        bad = JobSpec(design="no-such-design", workload="sphinx3",
                      accesses=2_000)
        path = tmp_path / "bad.jsonl"
        with RunArtifact(str(path), name="bad") as artifact:
            outcomes = run_jobs([bad], jobs=1, artifact=artifact)
        assert not outcomes[0].ok
        row = [r for r in read_artifact(str(path))
               if r["record"] == "job"][0]
        assert row["status"] == "error"
        assert "Traceback" in row["error_detail"]
        assert "no-such-design" in row["error_detail"]

    def test_fault_free_defaults_are_bit_identical(self, baseline):
        # The whole fault-tolerance stack armed, but nothing goes
        # wrong: results must match the legacy serial path exactly.
        outcomes = run_jobs(SPECS, jobs=2, timeout_s=120.0, retries=2,
                            retry_backoff_s=0.25)
        assert [o.status for o in outcomes] == ["ok"] * 3
        assert [o.retries for o in outcomes] == [0] * 3
        assert _metrics(outcomes) == baseline


class TestObserverLifecycle:
    def test_timeout_and_crash_counters(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", HANG)
        observer = HarnessObserver(label="unit")
        run_jobs(SPECS, jobs=2, timeout_s=1.0, observer=observer)
        assert observer.done == 3
        assert observer.errors == 1
        assert observer.timeouts == 1
        assert observer.crashes == 0
        assert observer.columns["retries"] == [0.0, 0.0, 0.0]

    def test_resume_counter(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunArtifact(str(path), name="seed") as artifact:
            run_jobs(SPECS[:2], jobs=1, artifact=artifact)
        observer = HarnessObserver(label="unit")
        run_jobs(SPECS[:2], jobs=1, resume=load_resume_map(str(path)),
                 observer=observer)
        assert observer.resumed == 2
