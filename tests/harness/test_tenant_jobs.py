"""Tenant-scenario jobs: kind inference, content-hashed cache keys,
and end-to-end execution through the harness."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.common.machine import MachineSpec
from repro.harness.jobs import JobSpec, execute_job

#: Small TLBs keep total TLB reach far below the cache so the resize
#: floor stays permissive at unit-test cache sizes.
SMALL_TLB = MachineSpec(overrides={"tlb.l1_entries": 8,
                                   "tlb.l2_entries": 16})


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "mt.json"
    path.write_text(json.dumps({
        "name": "mt-unit",
        "tenants": 6,
        "profiles": ["mcf", "sphinx3"],
        "tenant_accesses": 400,
        "quantum": 100,
        "capacity_scale": 512,
        "seed": 11,
        "resize": [[800, 0.75], [2000, 1.0]],
        "max_remap_per_resize": 4,
    }))
    return str(path)


def tenant_spec(scenario_file, **overrides):
    kwargs = dict(
        design="tagless-resizable",
        workload="mt-unit",
        scenario=scenario_file,
        cache_megabytes=512,
        num_cores=2,
        capacity_scale=512,
        machine=SMALL_TLB,
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestSpecWiring:
    def test_scenario_implies_tenants_kind(self, scenario_file):
        assert tenant_spec(scenario_file).workload_kind == "tenants"

    def test_tenants_kind_requires_scenario(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            JobSpec(design="tagless", workload="mt",
                    workload_kind="tenants")

    def test_bindings_refuse_tenant_jobs(self, scenario_file):
        with pytest.raises(ConfigurationError):
            tenant_spec(scenario_file).bindings()

    def test_shared_traces_stand_down(self, scenario_file):
        from repro.harness.shm import TraceArena

        arena = TraceArena(enabled=True)
        try:
            assert arena.share_for(tenant_spec(scenario_file)) is None
        finally:
            arena.close()


class TestCacheKeys:
    def test_key_hashes_scenario_content_not_path(self, scenario_file,
                                                  tmp_path):
        copy = tmp_path / "renamed.json"
        copy.write_text(open(scenario_file).read())
        assert (tenant_spec(scenario_file).cache_key()
                == tenant_spec(str(copy)).cache_key())

    def test_key_tracks_scenario_edits(self, scenario_file, tmp_path):
        before = tenant_spec(scenario_file).cache_key()
        data = json.loads(open(scenario_file).read())
        data["quantum"] = 150
        edited = tmp_path / "edited.json"
        edited.write_text(json.dumps(data))
        assert tenant_spec(str(edited)).cache_key() != before

    def test_scenario_jobs_never_collide_with_plain_jobs(self,
                                                         scenario_file):
        plain = JobSpec(design="tagless", workload="sphinx3",
                        accesses=4_000)
        assert plain.cache_key() != tenant_spec(scenario_file).cache_key()
        # And a scenarioless key is reproducible (the popped field does
        # not leak path-dependent state into the payload).
        assert plain.cache_key() == JobSpec(
            design="tagless", workload="sphinx3", accesses=4_000
        ).cache_key()


class TestExecution:
    def test_execute_reports_tenants_and_resizes(self, scenario_file):
        result = execute_job(tenant_spec(scenario_file, validate=True))
        assert result.tenants is not None
        assert len(result.tenants) == 6
        for tenant in result.tenants:
            assert tenant["instructions"] > 0
            assert tenant["p99_demand_ns"] >= tenant["p50_demand_ns"]
        assert result.resize_events is not None
        assert all(e["remapped"] <= 4 for e in result.resize_events)
        assert result.stats["context_switches"] > 0

    def test_execution_is_deterministic(self, scenario_file):
        a = execute_job(tenant_spec(scenario_file))
        b = execute_job(tenant_spec(scenario_file))
        assert a.stats == b.stats
        assert a.tenants == b.tenants

    def test_fixed_design_ignores_resize_schedule(self, scenario_file):
        result = execute_job(tenant_spec(scenario_file, design="tagless"))
        assert result.resize_events is None
        assert result.tenants is not None
