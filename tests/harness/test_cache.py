"""Result-cache tests: round-trips, accounting, invalidation."""

import json
import os

from repro.harness import cache as cache_mod
from repro.harness.cache import (
    ResultCache,
    simulation_result_from_dict,
    simulation_result_to_dict,
)
from repro.harness.jobs import JobSpec, execute_job

SPEC = JobSpec(design="tagless", workload="sphinx3", accesses=2_000)


def test_simulation_result_round_trip():
    result = execute_job(SPEC)
    clone = simulation_result_from_dict(simulation_result_to_dict(result))
    assert clone.ipc_sum == result.ipc_sum
    assert clone.edp == result.edp
    assert clone.mean_l3_latency_cycles == result.mean_l3_latency_cycles
    assert clone.stats == result.stats
    assert [c.ipc for c in clone.cores] == [c.ipc for c in result.cores]


def test_get_put_and_accounting(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.get(SPEC) is None
    result = execute_job(SPEC)
    path = cache.put(SPEC, result, wall_time_s=1.0)
    assert os.path.exists(path)
    replayed = cache.get(SPEC)
    assert replayed is not None
    assert replayed.ipc_sum == result.ipc_sum
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1
    assert cache.stats.hit_rate == 0.5


def test_disabled_cache_is_inert(tmp_path):
    cache = ResultCache(str(tmp_path), enabled=False)
    result = execute_job(SPEC)
    cache.put(SPEC, result)
    assert cache.get(SPEC) is None
    assert not os.path.exists(cache.entry_path(SPEC))
    assert cache.stats.lookups == 0


def test_corrupt_entry_is_invalidated(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    path = cache.entry_path(SPEC)
    with open(path, "w") as handle:
        handle.write("{not json")
    assert cache.get(SPEC) is None
    assert cache.stats.invalidated == 1
    assert not os.path.exists(path)


def test_schema_bump_invalidates_entry(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    path = cache.entry_path(SPEC)
    with open(path) as handle:
        entry = json.load(handle)
    entry["schema"] = -1
    with open(path, "w") as handle:
        json.dump(entry, handle)
    assert cache.get(SPEC) is None
    assert cache.stats.invalidated == 1


def test_knob_change_addresses_a_different_entry(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    import dataclasses
    other = dataclasses.replace(SPEC, warmup_fraction=0.5)
    assert cache.get(other) is None  # different key -> miss, no hit
    assert cache.stats.misses == 1


def test_base_seed_change_misses(tmp_path, monkeypatch):
    from repro.common import rng

    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    monkeypatch.setattr(rng, "BASE_SEED", rng.BASE_SEED + 1)
    assert cache.get(SPEC) is None


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    assert cache.clear() == 1
    assert cache.get(SPEC) is None


def test_env_var_picks_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    cache = ResultCache()
    assert cache.cache_dir == str(tmp_path / "envcache")
    # Explicit argument wins over the environment.
    explicit = ResultCache(str(tmp_path / "explicit"))
    assert explicit.cache_dir == str(tmp_path / "explicit")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert cache_mod.resolve_cache_dir().startswith(
        os.path.expanduser("~")
    )


def test_code_fingerprint_has_version_prefix():
    import repro
    from repro.harness.jobs import code_fingerprint

    fingerprint = code_fingerprint()
    assert fingerprint.startswith(repro.__version__)
    assert code_fingerprint() is fingerprint  # memoised


def test_version_bump_invalidates_cached_entries(tmp_path, monkeypatch):
    """A result cached by one build must never replay under another."""
    from repro.harness import jobs as jobs_mod

    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    assert cache.get(SPEC) is not None
    monkeypatch.setattr(jobs_mod, "_FINGERPRINT",
                        jobs_mod.code_fingerprint() + ".bumped")
    assert cache.get(SPEC) is None  # different key: a clean miss
