"""Result-cache tests: round-trips, accounting, invalidation."""

import json
import os

from repro.harness import cache as cache_mod
from repro.harness.cache import (
    ResultCache,
    simulation_result_from_dict,
    simulation_result_to_dict,
)
from repro.harness.jobs import JobSpec, execute_job

SPEC = JobSpec(design="tagless", workload="sphinx3", accesses=2_000)


def test_simulation_result_round_trip():
    result = execute_job(SPEC)
    clone = simulation_result_from_dict(simulation_result_to_dict(result))
    assert clone.ipc_sum == result.ipc_sum
    assert clone.edp == result.edp
    assert clone.mean_l3_latency_cycles == result.mean_l3_latency_cycles
    assert clone.stats == result.stats
    assert [c.ipc for c in clone.cores] == [c.ipc for c in result.cores]


def test_get_put_and_accounting(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.get(SPEC) is None
    result = execute_job(SPEC)
    path = cache.put(SPEC, result, wall_time_s=1.0)
    assert os.path.exists(path)
    replayed = cache.get(SPEC)
    assert replayed is not None
    assert replayed.ipc_sum == result.ipc_sum
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1
    assert cache.stats.hit_rate == 0.5


def test_disabled_cache_is_inert(tmp_path):
    cache = ResultCache(str(tmp_path), enabled=False)
    result = execute_job(SPEC)
    cache.put(SPEC, result)
    assert cache.get(SPEC) is None
    assert not os.path.exists(cache.entry_path(SPEC))
    assert cache.stats.lookups == 0


def test_corrupt_entry_is_invalidated(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    path = cache.entry_path(SPEC)
    with open(path, "w") as handle:
        handle.write("{not json")
    assert cache.get(SPEC) is None
    assert cache.stats.invalidated == 1
    assert not os.path.exists(path)


def test_schema_bump_invalidates_entry(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    path = cache.entry_path(SPEC)
    with open(path) as handle:
        entry = json.load(handle)
    entry["schema"] = -1
    with open(path, "w") as handle:
        json.dump(entry, handle)
    assert cache.get(SPEC) is None
    assert cache.stats.invalidated == 1


def test_knob_change_addresses_a_different_entry(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    import dataclasses
    other = dataclasses.replace(SPEC, warmup_fraction=0.5)
    assert cache.get(other) is None  # different key -> miss, no hit
    assert cache.stats.misses == 1


def test_base_seed_change_misses(tmp_path, monkeypatch):
    from repro.common import rng

    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    monkeypatch.setattr(rng, "BASE_SEED", rng.BASE_SEED + 1)
    assert cache.get(SPEC) is None


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    assert cache.clear() == 1
    assert cache.get(SPEC) is None


def _plant_tmp(cache, name, age_s=0.0):
    """Drop a write-staging orphan into the objects store."""
    shard = os.path.join(cache.objects_dir, "ab")
    os.makedirs(shard, exist_ok=True)
    path = os.path.join(shard, name)
    with open(path, "w") as handle:
        handle.write("{partial")
    if age_s:
        import time

        old = time.time() - age_s
        os.utime(path, (old, old))
    return path


def test_construction_sweeps_old_tmp_orphans(tmp_path):
    first = ResultCache(str(tmp_path))
    stale = _plant_tmp(first, "dead.tmp", age_s=3600.0)
    fresh = _plant_tmp(first, "live.tmp")  # a concurrent writer's file
    cache = ResultCache(str(tmp_path))
    assert not os.path.exists(stale)  # orphan gone
    assert os.path.exists(fresh)  # young file untouched
    assert cache.stats.stale_tmp == 1
    assert "stale_tmp" in cache.stats.as_dict()


def test_clear_sweeps_tmp_regardless_of_age(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    fresh = _plant_tmp(cache, "live.tmp")
    assert cache.clear() == 2  # one object + one staging file
    assert not os.path.exists(fresh)
    assert cache.stats.stale_tmp == 1


def test_interrupted_put_leaves_no_tmp(tmp_path, monkeypatch):
    # put() already unlinks its staging file when the write itself
    # raises; the sweep is for writers killed outright.
    cache = ResultCache(str(tmp_path))

    def refuse(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", refuse)
    import pytest

    with pytest.raises(OSError):
        cache.put(SPEC, execute_job(SPEC))
    leftovers = [
        name
        for _dir, _sub, files in os.walk(cache.objects_dir)
        for name in files
        if name.endswith(".tmp")
    ]
    assert leftovers == []


def test_env_var_picks_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    cache = ResultCache()
    assert cache.cache_dir == str(tmp_path / "envcache")
    # Explicit argument wins over the environment.
    explicit = ResultCache(str(tmp_path / "explicit"))
    assert explicit.cache_dir == str(tmp_path / "explicit")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert cache_mod.resolve_cache_dir().startswith(
        os.path.expanduser("~")
    )


def test_code_fingerprint_has_version_prefix():
    import repro
    from repro.harness.jobs import code_fingerprint

    fingerprint = code_fingerprint()
    assert fingerprint.startswith(repro.__version__)
    assert code_fingerprint() is fingerprint  # memoised


def test_version_bump_invalidates_cached_entries(tmp_path, monkeypatch):
    """A result cached by one build must never replay under another."""
    from repro.harness import jobs as jobs_mod

    cache = ResultCache(str(tmp_path))
    cache.put(SPEC, execute_job(SPEC))
    assert cache.get(SPEC) is not None
    monkeypatch.setattr(jobs_mod, "_FINGERPRINT",
                        jobs_mod.code_fingerprint() + ".bumped")
    assert cache.get(SPEC) is None  # different key: a clean miss
