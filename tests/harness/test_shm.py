"""Shared-memory trace dispatch: publish once, attach everywhere.

Locks the TraceArena contract: one publication per trace recipe
(reused across designs, retries and replacement workers), zero trace
bytes pickled in shm mode, bit-identical results against in-worker
regeneration, and parent-owned segment lifecycle that survives worker
crashes without leaking ``/dev/shm`` entries.
"""

import glob
import os

import pytest

from repro.harness.jobs import JobSpec
from repro.harness.runner import run_jobs
from repro.harness.shm import (
    TraceArena,
    attach_bindings,
    shm_enabled,
)

ACCESSES = 2_000


def _specs(*designs, **overrides):
    kwargs = dict(workload="mcf", accesses=ACCESSES, cache_megabytes=256)
    kwargs.update(overrides)
    return [JobSpec(design=d, **kwargs) for d in designs]


def _segment_names():
    return set(glob.glob("/dev/shm/psm_*"))


def _metrics(outcomes):
    return [
        (o.result.ipc_sum, o.result.edp, o.result.mean_l3_latency_cycles)
        for o in outcomes
    ]


# ----------------------------------------------------------------------
# Arena unit behaviour
# ----------------------------------------------------------------------
def test_publish_once_per_recipe_across_designs():
    with TraceArena(enabled=True) as arena:
        a, b = _specs("tagless", "sram")
        share_a = arena.share_for(a)
        share_b = arena.share_for(b)
        # Same workload recipe: one publication, shared by both designs.
        assert share_a is share_b
        assert arena.publishes == 1
        assert arena.reuses == 1
        assert share_a.shared_nbytes == 18 * ACCESSES
        assert share_a.pickled_nbytes == 0


def test_distinct_recipes_publish_separately():
    with TraceArena(enabled=True) as arena:
        spec = _specs("tagless")[0]
        other = _specs("tagless", accesses=ACCESSES + 1)[0]
        assert arena.share_for(spec) is not arena.share_for(other)
        assert arena.publishes == 2


def test_attach_bindings_equals_regeneration():
    spec = _specs("tagless")[0]
    expected = spec.bindings()
    with TraceArena(enabled=True) as arena:
        share = arena.share_for(spec)
        attached = attach_bindings(share)
        assert len(attached) == len(expected)
        for ours, theirs in zip(attached, expected):
            assert ours.core_id == theirs.core_id
            assert ours.process_id == theirs.process_id
            assert ours.trace.as_lists() == theirs.trace.as_lists()
            assert (ours.trace.page_access_counts()
                    == theirs.trace.page_access_counts())


def test_close_unlinks_segments():
    before = _segment_names()
    arena = TraceArena(enabled=True)
    arena.share_for(_specs("tagless")[0])
    assert _segment_names() - before  # something was published
    arena.close()
    assert _segment_names() - before == set()
    arena.close()  # idempotent


def test_env_switch_disables(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "0")
    assert not shm_enabled()
    assert TraceArena().share_for(_specs("tagless")[0]) is None
    monkeypatch.setenv("REPRO_SHM", "1")
    assert shm_enabled()


def test_disabled_arena_returns_none():
    arena = TraceArena(enabled=False)
    assert arena.share_for(_specs("tagless")[0]) is None
    assert arena.publishes == 0


# ----------------------------------------------------------------------
# Through the pool
# ----------------------------------------------------------------------
def test_pooled_shm_matches_serial_and_counts_transfer():
    specs = _specs("tagless", "sram", "no-l3")
    before = _segment_names()
    serial = run_jobs(specs, jobs=1)
    pooled = run_jobs(specs, jobs=2)
    assert all(o.ok for o in pooled)
    assert _metrics(serial) == _metrics(pooled)
    # Zero-copy: every job consumed the one shared segment; nothing
    # crossed the pipe by value, and nothing leaked.
    assert all(o.trace_bytes_pickled == 0 for o in pooled)
    assert all(o.trace_bytes_shared == 18 * ACCESSES for o in pooled)
    assert _segment_names() - before == set()
    # The serial path never pays the arena (no pool, no transfer).
    assert all(o.trace_bytes_shared == 0 for o in serial)


def test_pooled_legacy_mode_still_identical(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "0")
    specs = _specs("tagless", "sram")
    pooled = run_jobs(specs, jobs=2)
    monkeypatch.delenv("REPRO_SHM")
    serial = run_jobs(specs, jobs=1)
    assert _metrics(serial) == _metrics(pooled)
    assert all(o.trace_bytes_shared == 0 for o in pooled)
    assert all(o.trace_bytes_pickled == 0 for o in pooled)


def test_retry_reattaches_without_republishing(monkeypatch):
    specs = _specs("tagless", "sram")
    label = specs[0].label
    monkeypatch.setenv("REPRO_FAULT_INJECT", f"flaky:{label}:1")
    before = _segment_names()
    outcomes = run_jobs(specs, jobs=2, retries=1)
    assert all(o.ok for o in outcomes)
    assert outcomes[0].retries == 1
    # The retried attempt re-attached the same segment: still zero
    # pickled bytes, and the segments are gone after the sweep.
    assert all(o.trace_bytes_pickled == 0 for o in outcomes)
    assert all(o.trace_bytes_shared == 18 * ACCESSES for o in outcomes)
    assert _segment_names() - before == set()


def test_worker_crash_does_not_leak_segments(monkeypatch):
    specs = _specs("tagless", "sram", "no-l3")
    label = specs[1].label
    monkeypatch.setenv("REPRO_FAULT_INJECT", f"crash:{label}")
    before = _segment_names()
    outcomes = run_jobs(specs, jobs=2)
    # The crashed job is attributed precisely; its SIGKILLed worker
    # held only an attachment, so the surviving jobs complete from the
    # same parent-owned segment and nothing is left in /dev/shm.
    assert outcomes[1].status == "worker-crashed"
    assert outcomes[0].ok and outcomes[2].ok
    assert outcomes[0].trace_bytes_shared == 18 * ACCESSES
    assert _segment_names() - before == set()


def test_engine_field_rides_specs_through_the_pool():
    specs = _specs("tagless", engine="batched") + _specs("tagless")
    outcomes = run_jobs(specs, jobs=2)
    assert all(o.ok for o in outcomes)
    # Engines are bit-identical, and the engine choice is execution
    # policy: both specs address the same cache entry.
    assert _metrics(outcomes[:1]) == _metrics(outcomes[1:])
    assert specs[0].cache_key() == specs[1].cache_key()
    with pytest.raises(Exception):
        JobSpec(design="tagless", workload="mcf", engine="vector")
