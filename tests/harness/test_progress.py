"""Progress-reporter tests: line format and degenerate-run guards."""

import io

from repro.harness.cache import CacheStats
from repro.harness.jobs import JobResult, JobSpec
from repro.harness.progress import ProgressReporter

SPEC = JobSpec(design="tagless", workload="sphinx3", accesses=2_000)


def outcome(**overrides):
    fields = dict(spec=SPEC, result=None, error=None, wall_time_s=0.5,
                  cache_status="off")
    fields.update(overrides)
    return JobResult(**fields)


def reporter(**kwargs):
    stream = io.StringIO()
    return ProgressReporter(stream=stream, **kwargs), stream


def test_job_lines_and_summary():
    rep, stream = reporter(total=3)
    rep.job_done(outcome())
    rep.job_done(outcome(error="boom", cache_status="miss"))
    text = stream.getvalue()
    assert "[1/3] tagless/sphinx3@1024MB ok" in text
    assert "ERROR boom" in text
    assert "cache miss" in text
    summary = rep.summary()
    assert "2 jobs" in summary
    assert "1 errors" in summary
    assert "jobs/s" in summary


def test_eta_appears_once_progress_exists():
    rep, stream = reporter(total=10)
    rep.job_done(outcome())
    assert ", eta " in stream.getvalue()


def test_eta_suppressed_without_total():
    rep, stream = reporter()
    rep.job_done(outcome())
    assert ", eta " not in stream.getvalue()
    assert "[1/?]" in stream.getvalue()


def test_eta_suppressed_on_final_job():
    rep, stream = reporter(total=1)
    rep.job_done(outcome())
    assert ", eta " not in stream.getvalue()


def test_zero_job_summary_has_no_rate():
    # An empty sweep (everything filtered out, or --accesses 0 smoke
    # plumbing) must not divide by zero or report nan jobs/s.
    rep, _ = reporter(total=0)
    summary = rep.summary()
    assert "0 jobs" in summary
    assert "jobs/s" not in summary
    assert "nan" not in summary


def test_instant_run_guard(monkeypatch):
    # All cache hits on a fast disk: elapsed can round to exactly zero.
    import repro.harness.progress as progress_mod

    rep, stream = reporter(total=5)
    monkeypatch.setattr(progress_mod.time, "monotonic",
                        lambda: rep._started)
    rep.job_done(outcome(cache_status="hit"))
    assert ", eta " not in stream.getvalue()
    summary = rep.summary()
    assert "jobs/s" not in summary
    assert "nan" not in summary


def test_disabled_reporter_still_counts():
    rep, stream = reporter(total=2, enabled=False)
    rep.job_done(outcome(cache_status="hit"))
    assert rep.done == 1
    assert rep.cache_hits == 1
    assert stream.getvalue() == ""
    assert "1 jobs" in rep.summary(CacheStats())
