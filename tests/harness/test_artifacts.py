"""Artifact and progress-reporter tests."""

import io

from repro.harness.artifacts import (
    RunArtifact,
    default_artifact_path,
    job_metrics,
    read_artifact,
)
from repro.harness.cache import ResultCache
from repro.harness.jobs import JobSpec
from repro.harness.progress import ProgressReporter
from repro.harness.runner import run_jobs

SPECS = [
    JobSpec(design="no-l3", workload="sphinx3", accesses=2_000),
    JobSpec(design="no-such-design", workload="sphinx3", accesses=2_000),
]


def test_artifact_records_jobs_and_summary(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunArtifact(path, name="unit", meta={"note": "test"}) as artifact:
        run_jobs(SPECS, jobs=1, artifact=artifact)
    records = read_artifact(path)
    assert [r["record"] for r in records] == [
        "header", "job", "job", "summary"
    ]
    header, ok_job, bad_job, summary = records
    assert header["meta"] == {"note": "test"}
    assert ok_job["status"] == "ok"
    assert ok_job["spec"]["design"] == "no-l3"
    assert ok_job["metrics"]["ipc"] > 0
    assert bad_job["status"] == "error"
    assert "no-such-design" in bad_job["error"]
    assert summary["jobs"] == 2
    assert summary["errors"] == 1


def test_artifact_shows_warm_run_hits(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = SPECS[:1]
    run_jobs(spec, jobs=1, cache=cache)
    path = str(tmp_path / "warm.jsonl")
    with RunArtifact(path, name="warm") as artifact:
        run_jobs(spec, jobs=1, cache=cache, artifact=artifact)
        artifact.close(cache.stats)
    records = read_artifact(path)
    job = [r for r in records if r["record"] == "job"][0]
    summary = [r for r in records if r["record"] == "summary"][0]
    assert job["cache"] == "hit"
    assert summary["cache_hit_rate"] == 1.0
    assert summary["cache"]["hits"] == 1


def test_job_metrics_fields():
    outcome = run_jobs(SPECS[:1], jobs=1)[0]
    metrics = job_metrics(outcome.result)
    assert set(metrics) == {
        "ipc", "per_core_ipc", "instructions", "elapsed_ms",
        "mean_l3_latency_cycles", "energy_j", "edp_js",
    }


def test_default_artifact_path_is_unique(tmp_path):
    first = default_artifact_path(str(tmp_path), "fig7")
    second = default_artifact_path(str(tmp_path), "fig7")
    assert first != second
    assert first.startswith(str(tmp_path))
    assert first.endswith(".jsonl")


def test_progress_reporter_lines_and_summary():
    stream = io.StringIO()
    reporter = ProgressReporter(total=2, stream=stream, label="unit")
    for outcome in run_jobs(SPECS, jobs=1, progress=reporter):
        pass
    text = stream.getvalue()
    assert "[1/2] no-l3/sphinx3@1024MB ok" in text
    assert "ERROR" in text
    summary = reporter.summary()
    assert "2 jobs" in summary and "1 errors" in summary


def test_progress_reporter_disabled_is_silent():
    stream = io.StringIO()
    reporter = ProgressReporter(total=1, stream=stream, enabled=False)
    run_jobs(SPECS[:1], jobs=1, progress=reporter)
    reporter.summary()
    assert stream.getvalue() == ""
    assert reporter.done == 1
