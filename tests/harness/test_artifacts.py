"""Artifact and progress-reporter tests."""

import io
import json

from repro.harness.artifacts import (
    RunArtifact,
    default_artifact_path,
    job_metrics,
    load_resume_map,
    read_artifact,
)
from repro.harness.cache import ResultCache
from repro.harness.jobs import JobSpec, code_fingerprint
from repro.harness.progress import ProgressReporter
from repro.harness.runner import run_jobs

SPECS = [
    JobSpec(design="no-l3", workload="sphinx3", accesses=2_000),
    JobSpec(design="no-such-design", workload="sphinx3", accesses=2_000),
]


def test_artifact_records_jobs_and_summary(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunArtifact(path, name="unit", meta={"note": "test"}) as artifact:
        run_jobs(SPECS, jobs=1, artifact=artifact)
    records = read_artifact(path)
    assert [r["record"] for r in records] == [
        "header", "job", "job", "summary"
    ]
    header, ok_job, bad_job, summary = records
    assert header["meta"] == {"note": "test"}
    assert ok_job["status"] == "ok"
    assert ok_job["spec"]["design"] == "no-l3"
    assert ok_job["metrics"]["ipc"] > 0
    assert bad_job["status"] == "error"
    assert "no-such-design" in bad_job["error"]
    assert summary["jobs"] == 2
    assert summary["errors"] == 1


def test_artifact_shows_warm_run_hits(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = SPECS[:1]
    run_jobs(spec, jobs=1, cache=cache)
    path = str(tmp_path / "warm.jsonl")
    with RunArtifact(path, name="warm") as artifact:
        run_jobs(spec, jobs=1, cache=cache, artifact=artifact)
        artifact.close(cache.stats)
    records = read_artifact(path)
    job = [r for r in records if r["record"] == "job"][0]
    summary = [r for r in records if r["record"] == "summary"][0]
    assert job["cache"] == "hit"
    assert summary["cache_hit_rate"] == 1.0
    assert summary["cache"]["hits"] == 1


def test_job_metrics_fields():
    outcome = run_jobs(SPECS[:1], jobs=1)[0]
    metrics = job_metrics(outcome.result)
    assert set(metrics) == {
        "ipc", "per_core_ipc", "instructions", "elapsed_ms",
        "mean_l3_latency_cycles", "energy_j", "edp_js",
    }


def test_default_artifact_path_is_unique(tmp_path):
    first = default_artifact_path(str(tmp_path), "fig7")
    second = default_artifact_path(str(tmp_path), "fig7")
    assert first != second
    assert first.startswith(str(tmp_path))
    assert first.endswith(".jsonl")


def test_progress_reporter_lines_and_summary():
    stream = io.StringIO()
    reporter = ProgressReporter(total=2, stream=stream, label="unit")
    for outcome in run_jobs(SPECS, jobs=1, progress=reporter):
        pass
    text = stream.getvalue()
    assert "[1/2] no-l3/sphinx3@1024MB ok" in text
    assert "ERROR" in text
    summary = reporter.summary()
    assert "2 jobs" in summary and "1 errors" in summary


def test_artifact_rows_carry_code_fingerprint(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunArtifact(path, name="unit") as artifact:
        run_jobs(SPECS, jobs=1, artifact=artifact)
    records = read_artifact(path)
    header = records[0]
    assert header["code"] == code_fingerprint()
    for job in (r for r in records if r["record"] == "job"):
        assert job["code"] == code_fingerprint()


def test_artifact_counters_property(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunArtifact(path, name="unit") as artifact:
        run_jobs(SPECS, jobs=1, artifact=artifact)
        counters = artifact.counters
    assert counters["jobs"] == 2
    assert counters["errors"] == 1
    assert counters["timeouts"] == 0
    assert counters["worker_crashes"] == 0
    assert counters["retries"] == 0
    assert counters["resumed"] == 0
    assert counters["cache_hits"] == 0


def _rewrite_code_field(path, code):
    """Rewrite the ``code`` provenance of every job row in an artifact."""
    records = read_artifact(path)
    with open(path, "w") as handle:
        for record in records:
            if record["record"] == "job":
                if code is None:
                    record.pop("code", None)
                else:
                    record["code"] = code
            handle.write(json.dumps(record) + "\n")


def test_resume_map_counts_code_mismatches(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunArtifact(path, name="unit") as artifact:
        run_jobs(SPECS[:1], jobs=1, artifact=artifact)
    _rewrite_code_field(path, "someone-elses-build")
    lax = load_resume_map(path)
    assert len(lax) == 1  # still usable without strict
    assert lax.code_mismatches == 1
    assert lax.skipped == 0
    strict = load_resume_map(path, strict=True)
    assert len(strict) == 0
    assert strict.skipped == 1


def test_resume_map_counts_unknown_code(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunArtifact(path, name="unit") as artifact:
        run_jobs(SPECS[:1], jobs=1, artifact=artifact)
    _rewrite_code_field(path, None)
    lax = load_resume_map(path)
    assert len(lax) == 1
    assert lax.unknown_code == 1
    strict = load_resume_map(path, strict=True)
    assert len(strict) == 0
    assert strict.skipped == 1


def test_strict_resume_keeps_earlier_trusted_rows(tmp_path):
    """A rejected later row must not discard an earlier trusted one."""
    path = str(tmp_path / "run.jsonl")
    with RunArtifact(path, name="unit") as artifact:
        run_jobs(SPECS[:1], jobs=1, artifact=artifact)
    records = read_artifact(path)
    trusted = [r for r in records if r["record"] == "job"][0]
    foreign = dict(trusted, code="someone-elses-build")
    with open(path, "a") as handle:
        handle.write(json.dumps(foreign) + "\n")
    strict = load_resume_map(path, strict=True)
    assert strict.skipped == 1
    assert trusted["key"] in strict  # the trusted row survived


def test_current_build_rows_resume_cleanly(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunArtifact(path, name="unit") as artifact:
        run_jobs(SPECS[:1], jobs=1, artifact=artifact)
    seeds = load_resume_map(path, strict=True)
    assert len(seeds) == 1
    assert seeds.code_mismatches == 0
    assert seeds.unknown_code == 0
    assert seeds.skipped == 0
    outcomes = run_jobs(SPECS[:1], jobs=1, resume=seeds)
    assert outcomes[0].cache_status == "resume"


def test_progress_reporter_disabled_is_silent():
    stream = io.StringIO()
    reporter = ProgressReporter(total=1, stream=stream, enabled=False)
    run_jobs(SPECS[:1], jobs=1, progress=reporter)
    reporter.summary()
    assert stream.getvalue() == ""
    assert reporter.done == 1
