"""JobSpec tests: inference, validation, hashing, execution."""

import dataclasses

import pytest

from repro.common import rng
from repro.common.errors import ConfigurationError
from repro.harness.jobs import JobSpec, execute_job, infer_workload_kind


def test_workload_kind_inference():
    assert infer_workload_kind("sphinx3") == "spec"
    assert infer_workload_kind("MIX3") == "mix"
    assert infer_workload_kind("streamcluster") == "parsec"
    assert JobSpec(design="tagless", workload="MIX1").workload_kind == "mix"


def test_unknown_workload_rejected():
    with pytest.raises(ConfigurationError):
        JobSpec(design="tagless", workload="not-a-program")
    with pytest.raises(ConfigurationError):
        JobSpec(design="tagless", workload="sphinx3", workload_kind="magic")


def test_invalid_knobs_rejected():
    with pytest.raises(ConfigurationError):
        JobSpec(design="tagless", workload="sphinx3", accesses=-1)
    with pytest.raises(ConfigurationError):
        JobSpec(design="tagless", workload="sphinx3", warmup_fraction=1.0)
    # Zero-length runs are legal degenerate cases, not config errors.
    assert JobSpec(design="tagless", workload="sphinx3", accesses=0)


def test_spec_is_hashable_and_round_trips():
    spec = JobSpec(design="sram", workload="MIX2", accesses=5_000,
                   cache_megabytes=512, num_cores=4)
    assert hash(spec) == hash(JobSpec.from_dict(spec.to_dict()))
    assert JobSpec.from_dict(spec.to_dict()) == spec
    assert spec.label == "sram/MIX2@512MB"


def test_cache_key_stable_across_instances():
    make = lambda: JobSpec(design="tagless", workload="sphinx3",
                           accesses=4_000, warmup_fraction=0.25)
    assert make().cache_key() == make().cache_key()


@pytest.mark.parametrize("change", [
    {"design": "sram"},
    {"workload": "mcf"},
    {"accesses": 4_001},
    {"cache_megabytes": 512},
    {"replacement": "lru"},
    {"capacity_scale": 128},
    {"warmup_fraction": 0.5},
    {"nc_threshold": 32},
    {"base_seed": 1234},
])
def test_cache_key_changes_with_any_knob(change):
    base = JobSpec(design="tagless", workload="sphinx3", accesses=4_000)
    changed = dataclasses.replace(base, **change)
    assert base.cache_key() != changed.cache_key()


def test_cache_key_tracks_library_base_seed(monkeypatch):
    spec = JobSpec(design="tagless", workload="sphinx3", accesses=4_000)
    before = spec.cache_key()
    monkeypatch.setattr(rng, "BASE_SEED", rng.BASE_SEED + 1)
    assert spec.cache_key() != before


def test_explicit_base_seed_pins_the_key(monkeypatch):
    spec = JobSpec(design="tagless", workload="sphinx3", accesses=4_000,
                   base_seed=7)
    before = spec.cache_key()
    monkeypatch.setattr(rng, "BASE_SEED", rng.BASE_SEED + 1)
    assert spec.cache_key() == before


def test_bindings_follow_workload_kind():
    single = JobSpec(design="tagless", workload="sphinx3", accesses=2_000)
    assert len(single.bindings()) == 1
    mix = JobSpec(design="tagless", workload="MIX1", accesses=2_000,
                  num_cores=4)
    mix_bindings = mix.bindings()
    assert len(mix_bindings) == 4
    assert {b.process_id for b in mix_bindings} == {0, 1, 2, 3}
    parsec = JobSpec(design="tagless", workload="streamcluster",
                     accesses=2_000, num_cores=4)
    parsec_bindings = parsec.bindings()
    assert len(parsec_bindings) == 4
    # Threads share one address space.
    assert {b.process_id for b in parsec_bindings} == {0}


def test_execute_job_produces_metrics():
    spec = JobSpec(design="tagless", workload="sphinx3", accesses=3_000)
    result = execute_job(spec)
    assert result.design_name == "tagless"
    assert result.ipc_sum > 0
    assert result.total_energy_j > 0


def test_execute_job_nc_threshold_changes_outcome():
    base = JobSpec(design="tagless", workload="GemsFDTD", accesses=8_000)
    flagged = dataclasses.replace(base, nc_threshold=32)
    plain = execute_job(base)
    with_nc = execute_job(flagged)
    assert plain.ipc_sum != with_nc.ipc_sum


def test_execute_job_restores_overridden_seed():
    spec = JobSpec(design="tagless", workload="sphinx3", accesses=2_000,
                   base_seed=99)
    before = rng.BASE_SEED
    default = execute_job(
        JobSpec(design="tagless", workload="sphinx3", accesses=2_000)
    )
    reseeded = execute_job(spec)
    assert rng.BASE_SEED == before
    # A different base seed re-rolls the trace, so metrics move.
    assert reseeded.ipc_sum != default.ipc_sum


def test_cache_key_tracks_code_fingerprint(monkeypatch):
    from repro.harness import jobs as jobs_mod

    spec = JobSpec(design="tagless", workload="sphinx3", accesses=4_000)
    before = spec.cache_key()
    monkeypatch.setattr(jobs_mod, "_FINGERPRINT",
                        jobs_mod.code_fingerprint() + ".bumped")
    assert spec.cache_key() != before


def test_zero_access_job_executes_cleanly():
    import math

    result = execute_job(
        JobSpec(design="tagless", workload="sphinx3", accesses=0)
    )
    assert result.stats["accesses"] == 0.0
    assert result.ipc_sum == 0.0
    assert not math.isnan(result.edp)
    assert result.mean_l3_latency_cycles == 0.0


class TestMachineField:
    """JobSpec.machine: threading, hashing back-compat, strict parsing."""

    def test_default_cache_key_matches_pre_machine_schema(self):
        """A default-machine spec must hash exactly what the pre-machine
        schema hashed: the payload with no 'machine' key at all."""
        import hashlib
        import json

        from repro.harness.jobs import SCHEMA_VERSION, code_fingerprint

        spec = JobSpec(design="tagless", workload="sphinx3",
                       accesses=4_000)
        payload = dataclasses.asdict(spec)
        payload.pop("timeout_s", None)
        payload.pop("engine", None)
        payload.pop("machine", None)  # the pre-machine payload shape
        payload.pop("scenario", None)  # ...and pre-tenant-scenario
        payload["base_seed"] = spec.effective_seed
        payload["schema"] = SCHEMA_VERSION
        payload["code"] = code_fingerprint()
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        legacy_key = hashlib.sha256(text.encode()).hexdigest()
        assert spec.cache_key() == legacy_key

    def test_machine_override_changes_cache_key(self):
        from repro.common.machine import MachineSpec

        base = JobSpec(design="tagless", workload="sphinx3", accesses=4_000)
        flipped = dataclasses.replace(
            base,
            machine=MachineSpec(
                overrides={"dram_cache.gipt_in_package": True}
            ),
        )
        preset = dataclasses.replace(
            base, machine=MachineSpec(preset="window-core")
        )
        assert base.cache_key() != flipped.cache_key()
        assert base.cache_key() != preset.cache_key()
        assert flipped.cache_key() != preset.cache_key()

    def test_machine_coercions(self):
        from repro.common.machine import DEFAULT_MACHINE, MachineSpec

        assert JobSpec(design="tagless", workload="sphinx3",
                       machine=None).machine is DEFAULT_MACHINE
        by_name = JobSpec(design="tagless", workload="sphinx3",
                          machine="window-core")
        assert by_name.machine == MachineSpec(preset="window-core")
        by_dict = JobSpec(
            design="tagless", workload="sphinx3",
            machine={"overrides": {"core.model": "window"}},
        )
        assert dict(by_dict.machine.overrides) == {"core.model": "window"}
        with pytest.raises(ConfigurationError):
            JobSpec(design="tagless", workload="sphinx3", machine=42)

    def test_machine_reaches_system_config(self):
        spec = JobSpec(design="tagless", workload="sphinx3",
                       machine={"overrides":
                                {"dram_cache.gipt_in_package": True}})
        assert spec.system_config().dram_cache.gipt_in_package is True
        default = JobSpec(design="tagless", workload="sphinx3")
        assert default.system_config().dram_cache.gipt_in_package is False

    def test_round_trip_preserves_machine(self):
        spec = JobSpec(design="tagless", workload="sphinx3",
                       machine={"preset": "window-core",
                                "overrides": {"core.rob_entries": 96}})
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert (JobSpec.from_dict(spec.to_dict()).cache_key()
                == spec.cache_key())

    def test_label_tags_non_default_machine(self):
        plain = JobSpec(design="tagless", workload="sphinx3")
        custom = JobSpec(design="tagless", workload="sphinx3",
                         machine="gipt-in-package")
        assert "#" not in plain.label
        assert custom.label.startswith(plain.label)
        assert "#" in custom.label

    def test_from_dict_strict_refuses_unknown_keys(self):
        spec = JobSpec(design="tagless", workload="sphinx3")
        data = spec.to_dict()
        data["from_the_future"] = 7
        with pytest.raises(ConfigurationError, match="unknown field"):
            JobSpec.from_dict(data, strict=True)

    def test_from_dict_default_warns_on_unknown_keys(self):
        spec = JobSpec(design="tagless", workload="sphinx3")
        data = spec.to_dict()
        data["from_the_future"] = 7
        with pytest.warns(RuntimeWarning, match="from_the_future"):
            rebuilt = JobSpec.from_dict(data)
        assert rebuilt == spec

    def test_unknown_keys_helper(self):
        spec = JobSpec(design="tagless", workload="sphinx3")
        assert JobSpec.unknown_keys(spec.to_dict()) == []
        assert JobSpec.unknown_keys({**spec.to_dict(), "b": 1, "a": 2}) \
            == ["a", "b"]
