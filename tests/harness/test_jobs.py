"""JobSpec tests: inference, validation, hashing, execution."""

import dataclasses

import pytest

from repro.common import rng
from repro.common.errors import ConfigurationError
from repro.harness.jobs import JobSpec, execute_job, infer_workload_kind


def test_workload_kind_inference():
    assert infer_workload_kind("sphinx3") == "spec"
    assert infer_workload_kind("MIX3") == "mix"
    assert infer_workload_kind("streamcluster") == "parsec"
    assert JobSpec(design="tagless", workload="MIX1").workload_kind == "mix"


def test_unknown_workload_rejected():
    with pytest.raises(ConfigurationError):
        JobSpec(design="tagless", workload="not-a-program")
    with pytest.raises(ConfigurationError):
        JobSpec(design="tagless", workload="sphinx3", workload_kind="magic")


def test_invalid_knobs_rejected():
    with pytest.raises(ConfigurationError):
        JobSpec(design="tagless", workload="sphinx3", accesses=-1)
    with pytest.raises(ConfigurationError):
        JobSpec(design="tagless", workload="sphinx3", warmup_fraction=1.0)
    # Zero-length runs are legal degenerate cases, not config errors.
    assert JobSpec(design="tagless", workload="sphinx3", accesses=0)


def test_spec_is_hashable_and_round_trips():
    spec = JobSpec(design="sram", workload="MIX2", accesses=5_000,
                   cache_megabytes=512, num_cores=4)
    assert hash(spec) == hash(JobSpec.from_dict(spec.to_dict()))
    assert JobSpec.from_dict(spec.to_dict()) == spec
    assert spec.label == "sram/MIX2@512MB"


def test_cache_key_stable_across_instances():
    make = lambda: JobSpec(design="tagless", workload="sphinx3",
                           accesses=4_000, warmup_fraction=0.25)
    assert make().cache_key() == make().cache_key()


@pytest.mark.parametrize("change", [
    {"design": "sram"},
    {"workload": "mcf"},
    {"accesses": 4_001},
    {"cache_megabytes": 512},
    {"replacement": "lru"},
    {"capacity_scale": 128},
    {"warmup_fraction": 0.5},
    {"nc_threshold": 32},
    {"base_seed": 1234},
])
def test_cache_key_changes_with_any_knob(change):
    base = JobSpec(design="tagless", workload="sphinx3", accesses=4_000)
    changed = dataclasses.replace(base, **change)
    assert base.cache_key() != changed.cache_key()


def test_cache_key_tracks_library_base_seed(monkeypatch):
    spec = JobSpec(design="tagless", workload="sphinx3", accesses=4_000)
    before = spec.cache_key()
    monkeypatch.setattr(rng, "BASE_SEED", rng.BASE_SEED + 1)
    assert spec.cache_key() != before


def test_explicit_base_seed_pins_the_key(monkeypatch):
    spec = JobSpec(design="tagless", workload="sphinx3", accesses=4_000,
                   base_seed=7)
    before = spec.cache_key()
    monkeypatch.setattr(rng, "BASE_SEED", rng.BASE_SEED + 1)
    assert spec.cache_key() == before


def test_bindings_follow_workload_kind():
    single = JobSpec(design="tagless", workload="sphinx3", accesses=2_000)
    assert len(single.bindings()) == 1
    mix = JobSpec(design="tagless", workload="MIX1", accesses=2_000,
                  num_cores=4)
    mix_bindings = mix.bindings()
    assert len(mix_bindings) == 4
    assert {b.process_id for b in mix_bindings} == {0, 1, 2, 3}
    parsec = JobSpec(design="tagless", workload="streamcluster",
                     accesses=2_000, num_cores=4)
    parsec_bindings = parsec.bindings()
    assert len(parsec_bindings) == 4
    # Threads share one address space.
    assert {b.process_id for b in parsec_bindings} == {0}


def test_execute_job_produces_metrics():
    spec = JobSpec(design="tagless", workload="sphinx3", accesses=3_000)
    result = execute_job(spec)
    assert result.design_name == "tagless"
    assert result.ipc_sum > 0
    assert result.total_energy_j > 0


def test_execute_job_nc_threshold_changes_outcome():
    base = JobSpec(design="tagless", workload="GemsFDTD", accesses=8_000)
    flagged = dataclasses.replace(base, nc_threshold=32)
    plain = execute_job(base)
    with_nc = execute_job(flagged)
    assert plain.ipc_sum != with_nc.ipc_sum


def test_execute_job_restores_overridden_seed():
    spec = JobSpec(design="tagless", workload="sphinx3", accesses=2_000,
                   base_seed=99)
    before = rng.BASE_SEED
    default = execute_job(
        JobSpec(design="tagless", workload="sphinx3", accesses=2_000)
    )
    reseeded = execute_job(spec)
    assert rng.BASE_SEED == before
    # A different base seed re-rolls the trace, so metrics move.
    assert reseeded.ipc_sum != default.ipc_sum


def test_cache_key_tracks_code_fingerprint(monkeypatch):
    from repro.harness import jobs as jobs_mod

    spec = JobSpec(design="tagless", workload="sphinx3", accesses=4_000)
    before = spec.cache_key()
    monkeypatch.setattr(jobs_mod, "_FINGERPRINT",
                        jobs_mod.code_fingerprint() + ".bumped")
    assert spec.cache_key() != before


def test_zero_access_job_executes_cleanly():
    import math

    result = execute_job(
        JobSpec(design="tagless", workload="sphinx3", accesses=0)
    )
    assert result.stats["accesses"] == 0.0
    assert result.ipc_sum == 0.0
    assert not math.isnan(result.edp)
    assert result.mean_l3_latency_cycles == 0.0
