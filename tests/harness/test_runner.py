"""Runner tests: parallel/serial equivalence, error capture, ordering."""

import pytest

from repro.harness.cache import ResultCache
from repro.harness.jobs import JobSpec
from repro.harness.runner import Harness, HarnessError, run_jobs

SPECS = [
    JobSpec(design="no-l3", workload="sphinx3", accesses=2_000),
    JobSpec(design="sram", workload="sphinx3", accesses=2_000),
    JobSpec(design="tagless", workload="sphinx3", accesses=2_000),
    JobSpec(design="tagless", workload="libquantum", accesses=2_000),
]


def _metrics(outcomes):
    return [
        (o.result.ipc_sum, o.result.edp, o.result.mean_l3_latency_cycles)
        for o in outcomes
    ]


def test_parallel_matches_serial_exactly():
    serial = run_jobs(SPECS, jobs=1)
    parallel = run_jobs(SPECS, jobs=4)
    assert all(o.ok for o in serial)
    assert _metrics(serial) == _metrics(parallel)
    # Outcomes come back in input order regardless of completion order.
    assert [o.spec for o in parallel] == list(SPECS)


def test_failed_job_does_not_kill_the_sweep():
    bad = JobSpec(design="no-such-design", workload="sphinx3",
                  accesses=2_000)
    specs = [SPECS[0], bad, SPECS[2]]
    outcomes = run_jobs(specs, jobs=1)
    assert [o.ok for o in outcomes] == [True, False, True]
    assert "no-such-design" in outcomes[1].error
    assert outcomes[1].result is None


def test_failed_job_captured_in_parallel_mode():
    bad = JobSpec(design="no-such-design", workload="sphinx3",
                  accesses=2_000)
    outcomes = run_jobs([SPECS[0], bad, SPECS[2]], jobs=3)
    assert [o.ok for o in outcomes] == [True, False, True]


def test_run_strict_raises_with_failure_details():
    bad = JobSpec(design="no-such-design", workload="sphinx3",
                  accesses=2_000)
    harness = Harness()
    with pytest.raises(HarnessError) as excinfo:
        harness.run_strict([SPECS[0], bad])
    assert "no-such-design" in str(excinfo.value)
    assert "1/2" in str(excinfo.value)


def test_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        run_jobs(SPECS, jobs=0)


def test_cache_hits_skip_execution(tmp_path):
    cache = ResultCache(str(tmp_path))
    cold = run_jobs(SPECS[:2], jobs=1, cache=cache)
    warm = run_jobs(SPECS[:2], jobs=1, cache=cache)
    assert [o.cache_status for o in cold] == ["miss", "miss"]
    assert [o.cache_status for o in warm] == ["hit", "hit"]
    assert _metrics(cold) == _metrics(warm)
    assert cache.stats.hits == 2
    assert cache.stats.stores == 2


def test_parallel_warm_run_equals_cold(tmp_path):
    cache = ResultCache(str(tmp_path))
    cold = run_jobs(SPECS, jobs=2, cache=cache)
    warm = run_jobs(SPECS, jobs=2, cache=cache)
    assert all(o.cache_status == "hit" for o in warm)
    assert _metrics(cold) == _metrics(warm)
