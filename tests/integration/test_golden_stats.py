"""Golden-stats regression oracle for the simulation engine.

Pins the full ``SimulationResult`` (``stats`` dict plus the headline
scalars) for every registered design on small fixed-seed traces.  Any
engine change that alters a single counter, latency or energy number --
however slightly -- fails here.  This is the equivalence oracle for
perf work on the hot path: an optimisation is only an optimisation if
this file does not notice it ran.

Comparison is **exact** (``==`` on floats): the simulator is fully
deterministic, so the optimized engine must reproduce the pre-recorded
numbers bit-for-bit, not merely approximately.

Regenerate (only when a deliberate behaviour change is being made, with
the change called out in the commit message)::

    PYTHONPATH=src python tests/integration/test_golden_stats.py --regenerate
"""

import dataclasses
import json
import os

import pytest

from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.designs.registry import ALL_DESIGN_NAMES
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_stats.json")

#: Trace lengths are deliberately small: the oracle must stay cheap
#: enough to run in the tier-1 suite on every commit.
SINGLE_ACCESSES = 3000
QUAD_ACCESSES = 2000

#: Designs exercised in the 4-core multi-programmed point (the full
#: cross-product would triple suite time for no extra coverage: the
#: remaining designs share the same multicore engine code).
QUAD_DESIGNS = ("no-l3", "tagless")

QUAD_WORKLOADS = ("mcf", "lbm", "milc", "sphinx3")


def _single_core_config():
    cfg = default_system(cache_megabytes=128, num_cores=1,
                         capacity_scale=512)
    return dataclasses.replace(cfg, tlb_scale=32)


def _quad_core_config():
    cfg = default_system(cache_megabytes=512, num_cores=4,
                         capacity_scale=512)
    return dataclasses.replace(cfg, tlb_scale=32)


def _trace(workload: str, accesses: int):
    generator = TraceGenerator(spec_profile(workload), capacity_scale=512)
    return generator.generate(accesses)


def _point(result) -> dict:
    return {
        "ipc_sum": result.ipc_sum,
        "elapsed_ns": result.elapsed_ns,
        "mean_l3_latency_cycles": result.mean_l3_latency_cycles,
        "total_energy_j": result.total_energy_j,
        "per_core_cycles": [core.cycles for core in result.cores],
        "per_core_instructions": [core.instructions
                                  for core in result.cores],
        "stats": result.stats,
    }


def compute_point(name: str) -> dict:
    """Simulate one golden point by name ("single:<design>" or
    "quad:<design>")."""
    kind, design = name.split(":", 1)
    if kind == "single":
        simulator = Simulator(_single_core_config())
        bindings = [BoundTrace(0, 0, _trace("sphinx3", SINGLE_ACCESSES))]
    else:
        simulator = Simulator(_quad_core_config())
        bindings = [
            BoundTrace(core, core, _trace(workload, QUAD_ACCESSES))
            for core, workload in enumerate(QUAD_WORKLOADS)
        ]
    return _point(simulator.run(design, bindings))


def point_names():
    names = [f"single:{design}" for design in ALL_DESIGN_NAMES]
    names += [f"quad:{design}" for design in QUAD_DESIGNS]
    return names


def _load_golden() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", point_names())
def test_stats_match_golden(name):
    golden = _load_golden()
    assert name in golden, (
        f"no golden for {name!r}; regenerate via "
        f"`python {os.path.relpath(__file__)} --regenerate`"
    )
    expected = golden[name]
    actual = _point_roundtrip(compute_point(name))
    assert actual["stats"].keys() == expected["stats"].keys()
    for key, value in expected["stats"].items():
        assert actual["stats"][key] == value, (
            f"{name}: stats[{key!r}] = {actual['stats'][key]!r}, "
            f"golden has {value!r}"
        )
    for key in expected:
        if key == "stats":
            continue
        assert actual[key] == expected[key], (
            f"{name}: {key} = {actual[key]!r}, golden has {expected[key]!r}"
        )


def _point_roundtrip(point: dict) -> dict:
    """Pass the computed point through JSON so int/float identity
    matches what the golden file stores."""
    return json.loads(json.dumps(point))


def regenerate() -> None:
    golden = {}
    for name in point_names():
        golden[name] = compute_point(name)
        print(f"  {name}: done")
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        raise SystemExit("usage: test_golden_stats.py --regenerate")
    regenerate()
