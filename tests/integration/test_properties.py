"""Cross-cutting property tests over the full design stack."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.common.addressing import PAGE_BYTES
from repro.designs.tagless_design import TaglessDesign
from repro.designs.sram_tag import SRAMTagDesign
from repro.common.config import default_system


def small_cfg():
    cfg = default_system(cache_megabytes=128, num_cores=1,
                         capacity_scale=512)
    return dataclasses.replace(cfg, tlb_scale=32)


ACCESS = st.tuples(
    st.integers(0, 40),      # virtual page
    st.integers(0, 63),      # line
    st.booleans(),           # write
)


@settings(max_examples=15, deadline=None)
@given(st.lists(ACCESS, min_size=1, max_size=150))
def test_tagless_invariants_hold_for_any_access_sequence(accesses):
    """For any single-core access sequence:

    - the engine's block accounting and GIPT/PTE agreement hold;
    - a cTLB hit never produces off-package demand traffic;
    - occupancy stays within [0, 1].
    """
    design = TaglessDesign(small_cfg())
    now = 0.0
    for vpn, line, write in accesses:
        before_off = design.off_package.demand_accesses
        cost = design.access(0, 0, vpn, line, write, now)
        if cost.tlb_level in ("l1", "l2"):
            assert design.off_package.demand_accesses == before_off
        now += 30.0 + cost.cycles / 3.0
    design.engine.check_invariants()
    assert 0.0 <= design.engine.occupancy() <= 1.0


@settings(max_examples=15, deadline=None)
@given(st.lists(ACCESS, min_size=1, max_size=150))
def test_energy_accounting_conserves_bytes(accesses):
    """Bytes billed to the DRAM devices can only come from fills,
    write-backs, demand blocks, footprint fetches, GIPT and PTE traffic
    -- all multiples of 8 bytes, and reads never exceed what the access
    sequence could have demanded."""
    design = TaglessDesign(small_cfg())
    now = 0.0
    for vpn, line, write in accesses:
        cost = design.access(0, 0, vpn, line, write, now)
        now += 30.0 + cost.cycles / 3.0
    off = design.off_package.energy
    assert off.read_bytes % 8 == 0
    assert off.write_bytes % 8 == 0
    # Upper bound: every fill is at most one page + walk PTE reads.
    max_reads = design.engine.fills * PAGE_BYTES + design.walker.walks * 8
    assert off.read_bytes <= max_reads
    # In-package writes cover at least the fills' lay-ins.
    assert design.in_package.energy.write_bytes >= 0


@settings(max_examples=10, deadline=None)
@given(st.lists(ACCESS, min_size=1, max_size=120))
def test_sram_and_tagless_agree_on_reachability(accesses):
    """Functional equivalence: both designs must service exactly the
    same access sequence without error, touching the same number of
    trace accesses (the designs differ in cost, never in coverage)."""
    sram = SRAMTagDesign(small_cfg())
    tagless = TaglessDesign(small_cfg())
    now = 0.0
    for vpn, line, write in accesses:
        sram.access(0, 0, vpn, line, write, now)
        tagless.access(0, 0, vpn, line, write, now)
        now += 50.0
    assert sram.accesses == tagless.accesses == len(accesses)


@settings(max_examples=10, deadline=None)
@given(st.lists(ACCESS, min_size=5, max_size=120), st.integers(1, 4))
def test_multicore_determinism(accesses, cores):
    """Replaying the same bound traces twice gives identical results."""
    import numpy as np

    from repro.cpu.multicore import BoundTrace, run_interleaved
    from repro.workloads.trace import AccessTrace

    cfg = dataclasses.replace(
        default_system(cache_megabytes=512, num_cores=cores,
                       capacity_scale=512),
        tlb_scale=32,
    )
    pages = np.array([a[0] for a in accesses], dtype=np.int64)
    lines = np.array([a[1] for a in accesses], dtype=np.int16)
    writes = np.array([a[2] for a in accesses])
    gaps = np.full(len(accesses), 15, dtype=np.int64)
    trace = AccessTrace("p", pages, lines, writes, gaps)
    bindings = [BoundTrace(i, i, trace) for i in range(cores)]

    def run_once():
        design = TaglessDesign(cfg)
        return [r.cycles for r in run_interleaved(design, bindings)]

    assert run_once() == run_once()