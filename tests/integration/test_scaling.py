"""Scale-invariance: the qualitative result survives the capacity scale.

The whole methodology rests on one claim (DESIGN.md section 2): shrinking
the DRAM cache and the workload footprints by the same factor preserves
the ratios that drive the figures.  These tests check the claim directly
by running the same study at two different scale factors and asserting
that the design ordering -- the reproduced *shape* -- is unchanged.
"""

import pytest

from repro import BoundTrace, Simulator, default_system
from repro.workloads import TraceGenerator, spec_profile


def normalized_ipcs(capacity_scale: int, accesses: int):
    config = default_system(cache_megabytes=1024, num_cores=1,
                            capacity_scale=capacity_scale)
    trace = TraceGenerator(
        spec_profile("milc"), capacity_scale=capacity_scale
    ).generate(accesses)
    bindings = [BoundTrace(0, 0, trace)]
    sim = Simulator(config)
    base = sim.run("no-l3", bindings).ipc_sum
    return {
        name: sim.run(name, bindings).ipc_sum / base
        for name in ("bi", "sram", "tagless", "ideal")
    }


@pytest.fixture(scope="module")
def two_scales():
    return {
        64: normalized_ipcs(64, accesses=25_000),
        128: normalized_ipcs(128, accesses=25_000),
    }


def test_ordering_is_scale_invariant(two_scales):
    for scale, ipc in two_scales.items():
        assert 1.0 < ipc["bi"] < ipc["sram"] < ipc["tagless"], scale
        assert ipc["tagless"] <= ipc["ideal"] * 1.001, scale


def test_magnitudes_track_across_scales(two_scales):
    """Normalised speedups at the two scales agree within ~15 % -- the
    scale factor moves absolute sizes, not the competitive landscape."""
    for design in ("bi", "sram", "tagless", "ideal"):
        a = two_scales[64][design]
        b = two_scales[128][design]
        assert abs(a - b) / a < 0.15, design
