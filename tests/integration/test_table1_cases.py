"""Table 1 of the paper: the four (TLB, DRAM-cache) hit/miss cases.

| TLB  | DRAM cache | expectation                                      |
|------|------------|--------------------------------------------------|
| hit  | hit        | lowest latency, zero penalty                     |
| hit  | miss       | NC page: off-package block access time           |
| miss | hit        | victim hit: only the TLB miss (walk) penalty     |
| miss | miss       | cache fill + GIPT update on top of the walk      |

The micro-traces below force each case through the real tagless design
and assert both the classification and the latency ordering.
"""

import pytest

from repro.designs.tagless_design import TaglessDesign


@pytest.fixture
def design(small_config):
    return TaglessDesign(small_config)


def fresh_page_cost(design, vpn, now=0.0):
    """First-ever touch: TLB miss + cache miss (case 4)."""
    return design.access(0, 0, vpn, 0, False, now)


def case1_tlb_hit_cache_hit(design, vpn, now):
    """Touch a page already mapped by the cTLB."""
    return design.access(0, 0, vpn, 1, False, now)


def evict_from_tlb(design, vpn, start_vpn, now):
    """Touch enough other pages to push ``vpn`` out of the TLB (but not
    out of the much larger DRAM cache)."""
    entries = design.config.scaled_tlb.l2_entries
    for i in range(entries + 2):
        design.access(0, 0, start_vpn + i, 0, False, now + i * 100.0)
    assert not design.tlbs[0].resident(vpn)


def test_case4_then_case1_ordering(design):
    cost_miss_miss = fresh_page_cost(design, vpn=0)
    cost_hit_hit = case1_tlb_hit_cache_hit(design, vpn=0, now=1000.0)
    assert cost_hit_hit.cycles < cost_miss_miss.cycles
    assert cost_miss_miss.tlb_level == "miss"
    assert cost_hit_hit.tlb_level == "l1"
    assert design.engine.fills == 1


def test_case3_victim_hit_costs_only_the_walk(design, small_config):
    fresh_page_cost(design, vpn=0)
    evict_from_tlb(design, vpn=0, start_vpn=100, now=10_000.0)
    fills_before = design.engine.fills
    cost = design.access(0, 0, 0, 2, False, 10**7)
    assert design.engine.fills == fills_before  # no new fill: case 3
    assert design.engine.victim_hits >= 1
    # Penalty is the walk, not a fill: far cheaper than a case-4 miss.
    cost_case4 = fresh_page_cost(design, vpn=999, now=2 * 10**7)
    assert cost.cycles < cost_case4.cycles


def test_case2_nc_page_goes_off_package(design):
    design.set_non_cacheable(0, 50)
    first = design.access(0, 0, 50, 0, False, 0.0)
    # TLB hit now, but the DRAM cache is bypassed: off-package latency.
    before = design.off_package.demand_accesses
    second = design.access(0, 0, 50, 1, False, 1000.0)
    assert second.tlb_level == "l1"
    assert design.off_package.demand_accesses == before + 1
    assert design.engine.fills == 0


def test_full_ordering_of_all_four_cases(design, small_config):
    """case1 < case3 < case4 in cycles; case2 sits between case1 and
    case4 (off-package block beats a 4 KB fill + GIPT update)."""
    case4 = fresh_page_cost(design, vpn=0).cycles

    case1 = case1_tlb_hit_cache_hit(design, vpn=0, now=1000.0).cycles

    design.set_non_cacheable(0, 50)
    design.access(0, 0, 50, 0, False, 2000.0)
    case2 = design.access(0, 0, 50, 1, False, 3000.0).cycles

    evict_from_tlb(design, vpn=0, start_vpn=100, now=10_000.0)
    case3 = design.access(0, 0, 0, 3, False, 10**7).cycles

    assert case1 < case3 < case4
    assert case1 < case2 < case4


def test_tlb_hit_guarantees_cache_hit_everywhere(design):
    """The design's central invariant, asserted over a busy interleaving:
    no access with a cTLB hit ever touches off-package DRAM (NC aside)."""
    now = 0.0
    for i in range(600):
        vpn = (i * 13) % 90
        before = design.off_package.demand_accesses
        cost = design.access(0, 0, vpn, i % 64, i % 3 == 0, now)
        after = design.off_package.demand_accesses
        if cost.tlb_level in ("l1", "l2"):
            assert after == before, "cTLB hit must never miss the cache"
        now += 40.0 + cost.cycles / 3.0
    design.engine.check_invariants()
