"""Cross-module integration tests: whole-stack simulations.

These run short but complete simulations through the public API and
assert the qualitative relationships the paper's evaluation rests on.
"""

import pytest

from repro import BoundTrace, DESIGN_NAMES, Simulator, default_system
from repro.workloads import TraceGenerator, spec_profile
from repro.workloads.parsec import parsec_thread_traces


@pytest.fixture(scope="module")
def friendly_results():
    """All five designs on a cache-friendly workload (module-cached)."""
    config = default_system(cache_megabytes=1024, num_cores=1,
                            capacity_scale=64)
    trace = TraceGenerator(
        spec_profile("sphinx3"), capacity_scale=64
    ).generate(30_000)
    sim = Simulator(config)
    return {
        name: sim.run(name, [BoundTrace(0, 0, trace)])
        for name in DESIGN_NAMES
    }


def test_design_ordering_on_friendly_workload(friendly_results):
    """no-l3 <= bi <= sram <= tagless <= ideal on IPC (Figure 7 shape)."""
    ipc = {name: r.ipc_sum for name, r in friendly_results.items()}
    assert ipc["no-l3"] < ipc["bi"] < ipc["sram"]
    assert ipc["sram"] < ipc["tagless"] <= ipc["ideal"] * 1.001


def test_tagless_l3_latency_beats_sram(friendly_results):
    """Figure 8's shape: no tag check -> lower average L3 latency."""
    assert (friendly_results["tagless"].mean_l3_latency_cycles
            < friendly_results["sram"].mean_l3_latency_cycles)


def test_tagless_edp_beats_sram(friendly_results):
    assert friendly_results["tagless"].edp < friendly_results["sram"].edp


def test_all_cores_finish_all_instructions(friendly_results):
    counts = {r.instructions for r in friendly_results.values()}
    assert len(counts) == 1  # same trace -> same instruction count


def test_tagless_invariants_after_multiprogrammed_run():
    config = default_system(cache_megabytes=256, num_cores=4,
                            capacity_scale=64)
    sim = Simulator(config)
    bindings = []
    for core, prog in enumerate(("milc", "sphinx3", "soplex", "omnetpp")):
        trace = TraceGenerator(
            spec_profile(prog), capacity_scale=64, seed_tag=core
        ).generate(8_000)
        bindings.append(BoundTrace(core, core, trace))
    result = sim.run("tagless", bindings)
    assert result.ipc_sum > 0
    design = sim.build_design("tagless")  # fresh instance for invariants
    # Re-run on the same design instance to inspect its state directly.
    from repro.cpu.multicore import run_interleaved
    run_interleaved(design, bindings)
    design.engine.check_invariants()
    # Occupancy never exceeds 1 and residence bits stayed consistent.
    assert 0.0 <= design.engine.occupancy() <= 1.0


def test_multithreaded_shared_address_space():
    config = default_system(cache_megabytes=1024, num_cores=4,
                            capacity_scale=64)
    traces = parsec_thread_traces("streamcluster", num_threads=4,
                                  accesses_per_thread=6_000,
                                  capacity_scale=64)
    bindings = [BoundTrace(i, 0, t) for i, t in enumerate(traces)]
    result = Simulator(config).run("tagless", bindings)
    assert len(result.cores) == 4
    # Shared hot pages: total distinct fills is far below the sum of
    # per-thread footprints (threads share the cache contents).
    fills = result.stats["engine_fills"]
    footprints = sum(t.footprint_pages for t in traces)
    assert fills < footprints


def test_capacity_pressure_hurts_caches():
    """Figure 10's shape: a small DRAM cache underperforms its large
    sibling on the same workload."""
    trace = TraceGenerator(
        spec_profile("GemsFDTD"), capacity_scale=64
    ).generate(25_000)
    bindings = [BoundTrace(0, 0, trace)]
    small = Simulator(
        default_system(cache_megabytes=128, num_cores=1, capacity_scale=64)
    ).run("tagless", bindings)
    large = Simulator(
        default_system(cache_megabytes=1024, num_cores=1, capacity_scale=64)
    ).run("tagless", bindings)
    assert large.ipc_sum > small.ipc_sum


def test_replacement_policies_both_run():
    trace = TraceGenerator(
        spec_profile("milc"), capacity_scale=64
    ).generate(10_000)
    bindings = [BoundTrace(0, 0, trace)]
    for policy in ("fifo", "lru"):
        config = default_system(cache_megabytes=256, num_cores=1,
                                replacement=policy, capacity_scale=64)
        result = Simulator(config).run("tagless", bindings)
        assert result.ipc_sum > 0
