"""SRAM-tag baseline design behaviour."""

import pytest

from repro.designs import create_design


def touch_page(design, vpn, lines=4, now=0.0, write=False, core=0, proc=0):
    costs = []
    for line in range(lines):
        costs.append(design.access(core, proc, vpn, line, write, now))
        now += 50.0
    return costs


@pytest.fixture
def design(small_config):
    return create_design("sram", small_config)


def test_first_touch_misses_then_hits(design):
    costs = touch_page(design, vpn=1, lines=4)
    assert design.misses == 1
    assert design.hits >= 1  # subsequent lines hit the filled page


def test_tag_probe_on_every_l3_access(design):
    touch_page(design, vpn=1)
    touch_page(design, vpn=2, now=1000.0)
    assert design.tags.probes == design.l3_accesses


def test_fill_reads_full_page_off_package(design):
    touch_page(design, vpn=1)
    assert design.off_package.energy.read_bytes >= 4096
    assert design.in_package.energy.write_bytes >= 4096  # lay-in


def test_hits_served_in_package(design):
    touch_page(design, vpn=1)
    before = design.in_package.demand_accesses
    design.access(0, 0, 1, 60, False, 5000.0)
    assert design.in_package.demand_accesses == before + 1


def test_tag_latency_on_hit_path(design, small_config):
    touch_page(design, vpn=1)
    cost = design.access(0, 0, 1, 63, False, 9000.0)
    # The access reached L3: it must include at least the Table 6 probe.
    assert cost.l3_involved
    assert cost.l3_cycles >= design.tags.access_cycles


def test_eviction_writes_back_dirty_page(design, small_config):
    capacity = small_config.cache_pages
    # Dirty one page, then stream enough pages through its set to evict.
    victim_vpn = 0
    touch_page(design, victim_vpn, write=True)
    before = design.off_package.energy.write_bytes
    for vpn in range(1, capacity * 2 + 1):
        touch_page(design, vpn, lines=1, now=vpn * 2000.0)
    assert design.writebacks >= 1
    assert design.off_package.energy.write_bytes >= before + 4096


def test_energy_hooks_nonzero(design):
    touch_page(design, vpn=1)
    assert design.leakage_watts() > 0
    assert design.probe_energy_nj() > 0


def test_stats_include_tags(design):
    touch_page(design, vpn=1)
    stats = design.stats()
    assert stats["l3_misses"] == 1.0
    assert stats["tags_probes"] >= 1.0


def test_hit_rate(design):
    assert design.hit_rate() == 0.0
    touch_page(design, vpn=1, lines=8)
    assert 0.0 < design.hit_rate() < 1.0
