"""Tagless design end-to-end behaviour and its core invariants."""

import pytest

from repro.common.errors import SimulationError
from repro.designs import create_design


def touch_page(design, vpn, lines=4, now=0.0, write=False, core=0, proc=0):
    costs = []
    for line in range(lines):
        costs.append(design.access(core, proc, vpn, line, write, now))
        now += 50.0
    return costs


@pytest.fixture
def design(small_config):
    return create_design("tagless", small_config)


def test_tlb_hit_implies_cache_hit_and_no_off_package_traffic(design):
    touch_page(design, vpn=1, lines=8)
    # After the initial fill, every L3-bound access is in-package.
    fills_bytes = 4096
    assert design.off_package.energy.read_bytes <= fills_bytes + 64
    assert design.engine.fills == 1
    design.engine.check_invariants()


def test_second_page_touch_is_victim_hit_after_tlb_eviction(design,
                                                            small_config):
    tlb_entries = small_config.scaled_tlb.l2_entries
    touch_page(design, vpn=0, lines=2)
    # Push vpn 0 out of the TLB (but not out of the huge cache).
    for vpn in range(1, tlb_entries + 2):
        touch_page(design, vpn, lines=1, now=vpn * 1000.0)
    before = design.engine.fills
    touch_page(design, vpn=0, lines=1, now=10**7)
    assert design.engine.fills == before  # no refill
    assert design.engine.victim_hits >= 1


def test_no_tag_structures_exist(design):
    assert not hasattr(design, "tags")
    assert design.leakage_watts() == 0.0
    assert design.probe_energy_nj() == 0.0


def test_nc_page_bypasses_dram_cache(design):
    design.set_non_cacheable(0, 5)
    touch_page(design, vpn=5, lines=4)
    assert design.engine.fills == 0
    assert design.nc_accesses > 0
    # NC lines still live in the on-die caches (PA-tagged namespace).
    cost = design.access(0, 0, 5, 0, False, 10_000.0)
    assert cost.ondie_level in ("l1", "l2")


def test_nc_and_cached_lines_never_collide(design):
    """CA-space and PA-space keys must map to disjoint on-die lines even
    when the numeric page values coincide."""
    design.set_non_cacheable(0, 5)
    touch_page(design, vpn=5, lines=1)           # NC: PA-tagged
    touch_page(design, vpn=6, lines=1, now=500)  # cached: CA-tagged
    pa_line = design.tlbs[0].l1.peek(5).target_page * 64
    ca_line = design.tlbs[0].l1.peek(6).target_page * 64
    # Even if the raw page numbers matched, the namespaced keys differ.
    keys = {design._line_key(design.tlbs[0].l1.peek(5), 0),
            design._line_key(design.tlbs[0].l1.peek(6), 0)}
    assert len(keys) == 2


def test_eviction_invalidates_ondie_lines(design, small_config):
    capacity = small_config.cache_pages
    tlb_entries = small_config.scaled_tlb.l2_entries
    touch_page(design, vpn=0, lines=2)
    # Fill far past capacity so vpn 0 is evicted (it leaves the TLB
    # first, making it evictable).
    for vpn in range(1, capacity + tlb_entries + 4):
        touch_page(design, vpn, lines=1, now=vpn * 3000.0)
    assert not design.page_table(0).entry(0).valid_in_cache
    design.engine.check_invariants()
    # Re-touching refills at a (possibly) new cache address.
    before = design.engine.fills
    touch_page(design, vpn=0, lines=1, now=10**8)
    assert design.engine.fills == before + 1


def test_gipt_and_cache_never_diverge_under_pressure(design, small_config):
    for vpn in range(small_config.cache_pages * 3):
        touch_page(design, vpn, lines=2, now=vpn * 1000.0,
                   write=(vpn % 2 == 0))
        if vpn % 16 == 0:
            design.engine.check_invariants()
    design.engine.check_invariants()


def test_multithreaded_shared_page_single_fill(small_mp_config):
    design = create_design("tagless", small_mp_config)
    now = 0.0
    for core in range(4):
        touch_page(design, vpn=7, lines=2, now=now, core=core, proc=0)
        now += 10_000.0
    assert design.engine.fills == 1  # PU bit prevented duplicates
    ca = design.page_table(0).entry(7).cache_page
    assert design.engine.gipt.require(ca).residence_mask == 0b1111


def test_writeback_marks_gipt_dirty(design):
    touch_page(design, vpn=1, lines=2, write=True)
    ca = design.page_table(0).entry(1).cache_page
    # Force the dirty L1/L2 lines out by invalidating the page.
    design._invalidate_ondie_page(ca)  # drops them; dirt subsumed
    # Direct path: dirty L2 victim routed through _writeback_line.
    line = ca * 64
    design._writeback_line(line, 0.0)
    assert design.engine.gipt.require(ca).dirty


def test_stats_expose_engine_and_handlers(design):
    touch_page(design, vpn=1)
    stats = design.stats()
    assert stats["engine_fills"] == 1.0
    assert stats["core0_handler_fill"] == 1.0
    assert stats["cache_accesses"] > 0
