"""Runtime-resizable tagless cache: capacity schedule, churn bounds,
mid-resize invariants, and reset/determinism audits."""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.cpu.batched import select_kernel
from repro.designs.registry import create_design
from repro.validate.invariants import InvariantChecker
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile

from tests.designs.test_reset_stats import drive


@pytest.fixture
def churn_trace():
    """A trace whose footprint dwarfs the 64-page test cache, so fills
    cycle through the whole cache address space."""
    generator = TraceGenerator(spec_profile("mcf"), capacity_scale=64)
    return generator.generate(6000)


def build(small_config, schedule=None, max_remap=8):
    design = create_design("tagless-resizable", small_config)
    if schedule is not None:
        design.set_resize_schedule(schedule, max_remap_per_resize=max_remap)
    return design


def checked_drive(design, trace, every=64):
    checker = InvariantChecker(design, every=every)
    checker.install()
    drive(design, trace)
    checker.run_checks()
    return checker


class TestScheduleValidation:
    def test_fractional_and_absolute_targets(self, small_config):
        design = build(small_config)
        design.set_resize_schedule([(10, 0.75), (20, 48)])
        assert design._resize_events == [(10, 48), (20, 48)]

    def test_rejects_target_above_capacity(self, small_config):
        design = build(small_config)
        with pytest.raises(ConfigurationError, match="exceeds"):
            design.set_resize_schedule([(10, 65)])

    def test_rejects_target_below_tlb_reach(self, small_config):
        design = build(small_config)
        floor = design.min_capacity_pages()
        with pytest.raises(ConfigurationError, match="minimum active"):
            design.set_resize_schedule([(10, floor - 1)])

    def test_rejects_bad_at_access(self, small_config):
        design = build(small_config)
        with pytest.raises(ConfigurationError, match="at_access"):
            design.set_resize_schedule([(0, 0.75)])

    def test_rejects_negative_budget(self, small_config):
        design = build(small_config)
        with pytest.raises(ConfigurationError, match="max_remap"):
            design.set_resize_schedule([(10, 0.75)],
                                       max_remap_per_resize=-1)


class TestResizeMechanics:
    def test_shrink_gates_exactly_the_upper_region(self, small_config,
                                                   churn_trace):
        design = build(small_config, [(2000, 0.75)])
        checked_drive(design, churn_trace)
        fq = design.engine.free_queue
        assert fq.active_capacity == 48
        assert fq.gated == set(range(48, 64))
        # Nothing in service may live in the gated region.
        assert all(p < 48 for p in fq.free_pages())
        assert all(p < 48 for p in design.engine.gipt.cached_cache_pages())

    def test_grow_restores_full_capacity(self, small_config, churn_trace):
        design = build(small_config, [(2000, 0.75), (4000, 1.0)])
        checked_drive(design, churn_trace)
        fq = design.engine.free_queue
        assert fq.active_capacity == 64
        assert fq.gated == set()
        events = design.resize_log
        assert len(events) == 2
        assert events[1]["ungated"] == 16

    def test_churn_bounded_by_budget(self, small_config, churn_trace):
        design = build(small_config, [(2000, 0.75)], max_remap=4)
        checked_drive(design, churn_trace)
        (event,) = design.resize_log
        assert event["remapped"] <= 4
        # The displaced set is fully accounted for: every page either
        # remapped or left through the eviction path.
        displaced = event["remapped"] + event["evicted"]
        assert displaced + event["gated_free"] == 16

    def test_zero_budget_means_evict_only(self, small_config, churn_trace):
        design = build(small_config, [(2000, 0.75)], max_remap=0)
        checked_drive(design, churn_trace)
        (event,) = design.resize_log
        assert event["remapped"] == 0
        assert event["evicted"] + event["gated_free"] == 16

    def test_remap_preserves_translation_consistency(self, small_config,
                                                     churn_trace):
        """After a shrink with remaps, every surviving translation still
        points at a page the GIPT holds -- the TLB-inclusion invariant
        the checker sweeps (tlb_gipt_agree) plus the churn/region checks
        ran throughout this drive via checked_drive."""
        design = build(small_config, [(2000, 0.75)], max_remap=16)
        checked_drive(design, churn_trace, every=32)
        assert design.resize_log[0]["remapped"] > 0

    def test_eviction_during_gating_routes_to_gated_set(self, small_config):
        design = build(small_config)
        fq = design.engine.free_queue
        fq.gate_free_region(48)
        fq.active_capacity = 48
        # Simulate a displaced page whose eviction was still pending when
        # the region gated: its completion must land in the gated set.
        fq.gated.discard(60)
        fq.mark_free(60)
        assert 60 in fq.gated
        assert 60 not in fq.free_pages()
        # A survivor's eviction still completes into the free pool.
        fq._free.remove(10)
        fq.mark_free(10)
        assert 10 in fq.free_pages()

    def test_resize_fires_at_absolute_access_counts(self, small_config,
                                                    churn_trace):
        design = build(small_config, [(2000, 0.75)])
        drive(design, churn_trace)
        assert design.resize_log[0]["at_access"] == 2000

    def test_other_designs_ignore_resize_schedule(self, small_config):
        design = create_design("tagless", small_config)
        assert not hasattr(design, "set_resize_schedule")


class TestEngineStanddown:
    def test_batched_kernels_stand_down(self, small_config):
        """The fused kernels would bypass the access_cycles override
        that triggers resize events, so they must refuse this design."""
        design = build(small_config)
        assert design.batchable is False
        assert select_kernel(design) is None

    def test_base_tagless_still_batches(self, small_config):
        design = create_design("tagless", small_config)
        assert select_kernel(design) is not None


class TestResetAudit:
    def test_reset_clears_resize_counters_keeps_gating(self, small_config,
                                                       churn_trace):
        design = build(small_config, [(2000, 0.75)])
        drive(design, churn_trace)
        assert design.resize_events == 1
        design.reset_stats()
        stats = design.stats()
        assert stats["resize_events"] == 0
        assert stats["resize_remapped_pages"] == 0
        assert stats["resize_evicted_pages"] == 0
        assert stats["resize_shootdowns"] == 0
        assert design.resize_log == []
        # Structural state survives: the cache is still shrunk.
        assert design.engine.free_queue.active_capacity == 48
        assert stats["resize_active_occupancy"] == 0.75

    def test_resize_clock_survives_reset(self, small_config, churn_trace):
        """The schedule is positioned in absolute accesses: a warmup
        reset must not rewind it, or events would fire twice."""
        design = build(small_config, [(2000, 0.75)])
        drive(design, churn_trace)
        clock = design._resize_clock
        design.reset_stats()
        assert design._resize_clock == clock

    def test_run_reset_run_deterministic_with_events(self, small_config,
                                                     churn_trace):
        def measure():
            design = build(small_config, [(8000, 0.75)])
            end = drive(design, churn_trace)
            design.reset_stats()
            drive(design, churn_trace, start_ns=end)
            return design.stats()

        first, second = measure(), measure()
        assert first == second
        assert first["resize_events"] == 1  # fired inside the window


class TestSimulatorIntegration:
    def test_run_arms_schedule_and_reports_ledger(self, small_config):
        from repro.cpu.multicore import BoundTrace
        from repro.cpu.simulator import Simulator

        generator = TraceGenerator(spec_profile("mcf"), capacity_scale=64)
        bindings = [BoundTrace(0, 0, generator.generate(6000))]
        result = Simulator(small_config).run(
            "tagless-resizable", bindings,
            validate=True, validate_every=128,
            resize_schedule=[(2000, 0.75), (4000, 1.0)],
            max_remap_per_resize=8,
        )
        assert result.resize_events is not None
        assert len(result.resize_events) == 2
        assert all(e["remapped"] <= e["max_remap"]
                   for e in result.resize_events)

    def test_run_without_schedule_matches_plain_tagless(self, small_config):
        """With no events armed the resizable design is the tagless
        design: identical stats on an identical drive (the golden-stats
        oracle pins this shape too)."""
        from repro.cpu.multicore import BoundTrace
        from repro.cpu.simulator import Simulator

        generator = TraceGenerator(spec_profile("sphinx3"),
                                   capacity_scale=512)
        bindings = [BoundTrace(0, 0, generator.generate(3000))]
        base = Simulator(small_config).run("tagless", bindings)
        resizable = Simulator(small_config).run("tagless-resizable",
                                                bindings)
        resizable_stats = dict(resizable.stats)
        for key in ("resize_events", "resize_remapped_pages",
                    "resize_evicted_pages", "resize_shootdowns",
                    "resize_gated_free_blocks", "resize_active_occupancy"):
            resizable_stats.pop(key)
        assert resizable_stats == base.stats
        assert resizable.resize_events is None
