"""Block-based (Alloy-style) extension design tests."""

import pytest

from repro.designs import create_design
from repro.designs.alloy import TAG_CAPACITY_TAX, AlloyCacheDesign


@pytest.fixture
def design(small_config):
    return create_design("alloy", small_config)


def touch(design, vpn, line, now=0.0, write=False):
    return design.access(0, 0, vpn, line, write, now)


def test_registered(design):
    assert isinstance(design, AlloyCacheDesign)


def test_block_granularity_no_overfetch(design):
    """A miss moves 64 bytes, not a 4 KB page."""
    touch(design, vpn=1, line=0)
    assert design.off_package.energy.read_bytes == 64 + 8  # block + PTE


def test_miss_then_hit_same_block(design):
    touch(design, vpn=1, line=0)
    assert design.misses == 1
    # Drop the line from the on-die caches so the next touch reaches L3.
    pte = design.page_table(0).entry(1)
    design.ondie[0].invalidate_page(pte.physical_page)
    touch(design, vpn=1, line=0, now=10**6)
    assert design.hits == 1


def test_adjacent_lines_miss_separately(design):
    """No spatial prefetch: each 64 B line of a page misses on its own
    (the block-based weakness page-based caches fix)."""
    for line in range(8):
        touch(design, vpn=1, line=line, now=line * 1000.0)
    assert design.misses == 8


def test_direct_mapped_conflicts(design):
    """Two lines mapping to the same slot evict each other."""
    stride = design.num_blocks  # same slot, different line
    line_a = 0
    # vpn/line pair producing line numbers that collide mod num_blocks:
    # use two pages far apart; compute via internal mapping for the test.
    pte_a = design.page_table(0).entry(1)
    # Probe with a raw slot collision through the public API: touch many
    # pages; with a small cache, conflicts must occur.
    for vpn in range(1, design.num_blocks // 4 + 32):
        touch(design, vpn, 0, now=vpn * 500.0)
    before = design.misses
    touch(design, vpn=1, line=0, now=10**8)
    # Either a conflict evicted page 1's line (miss) or it survived; with
    # a cache this small relative to the touched set a re-miss happens.
    assert design.misses >= before


def test_dirty_victim_written_back(design):
    pte = design.page_table(0).entry(1)
    touch(design, vpn=1, line=0, write=True)
    # Find another virtual page whose line 0 collides with vpn 1 line 0.
    target_slot = (pte.physical_page * 64) % design.num_blocks
    for vpn in range(2, 5000):
        candidate = design.page_table(0).entry(vpn)
        if (candidate.physical_page * 64) % design.num_blocks == target_slot:
            before = design.writebacks
            touch(design, vpn, 0, now=10**6)
            assert design.writebacks == before + 1
            return
    pytest.skip("no colliding frame found in 5000 pages")


def test_tag_capacity_tax(design):
    assert design.effective_capacity_fraction() == pytest.approx(
        1 - TAG_CAPACITY_TAX
    )
    assert design.num_blocks < design.config.cache_pages * 64


def test_probe_cost_paid_even_on_miss(design):
    """Every L3 access touches in-package DRAM (the TAD probe)."""
    touch(design, vpn=1, line=0)
    assert design.in_package.demand_accesses == 1
    assert design.off_package.demand_accesses == 1


def test_stats_and_reset(design):
    touch(design, vpn=1, line=0)
    stats = design.stats()
    assert stats["l3_misses"] == 1.0
    design.reset_stats()
    assert design.misses == 0
