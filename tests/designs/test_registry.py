"""Design registry tests."""

import pytest

from repro.common.errors import ConfigurationError
from repro.designs import DESIGN_NAMES, create_design
from repro.designs.bank_interleave import BankInterleavingDesign
from repro.designs.ideal import IdealDesign
from repro.designs.no_l3 import NoL3Design
from repro.designs.sram_tag import SRAMTagDesign
from repro.designs.tagless_design import TaglessDesign


def test_design_names_match_paper_order():
    assert DESIGN_NAMES == ("no-l3", "bi", "sram", "tagless", "ideal")


@pytest.mark.parametrize("name,cls", [
    ("no-l3", NoL3Design),
    ("bi", BankInterleavingDesign),
    ("sram", SRAMTagDesign),
    ("tagless", TaglessDesign),
    ("ideal", IdealDesign),
])
def test_factory_builds_each_design(small_config, name, cls):
    design = create_design(name, small_config)
    assert isinstance(design, cls)
    assert design.name == name


def test_alloy_extension_registered(small_config):
    from repro.designs.alloy import AlloyCacheDesign

    assert isinstance(create_design("alloy", small_config),
                      AlloyCacheDesign)


def test_unknown_design_rejected(small_config):
    with pytest.raises(ConfigurationError):
        create_design("footprint", small_config)
