"""Dirty on-die victims must drain to the right device per design."""

import pytest

from repro.common.addressing import LINES_PER_PAGE
from repro.designs import create_design
from repro.designs.base import PA_NAMESPACE_OFFSET


def test_no_l3_writebacks_go_off_package(small_config):
    design = create_design("no-l3", small_config)
    before = design.off_package.energy.write_bytes
    design._writeback_line(1234 * LINES_PER_PAGE + 5, now_ns=0.0)
    assert design.off_package.energy.write_bytes == before + 64
    assert design.in_package.energy.write_bytes == 0


def test_ideal_writebacks_stay_in_package(small_config):
    design = create_design("ideal", small_config)
    design._writeback_line(1234 * LINES_PER_PAGE, now_ns=0.0)
    assert design.in_package.energy.write_bytes == 64
    assert design.off_package.energy.write_bytes == 0


def test_bi_writebacks_follow_frame_placement(small_config):
    design = create_design("bi", small_config)
    in_page = 0  # inside the in-package slice
    off_page = design.in_package_pages + 7
    design._writeback_line(in_page * LINES_PER_PAGE, 0.0)
    assert design.in_package.energy.write_bytes == 64
    design._writeback_line(off_page * LINES_PER_PAGE, 0.0)
    assert design.off_package.energy.write_bytes == 64


def test_sram_writebacks_land_in_cache_when_page_cached(small_config):
    design = create_design("sram", small_config)
    design.access(0, 0, 1, 0, True, 0.0)  # fills the page, cached now
    ppn = design.page_table(0).entry(1).physical_page
    before = design.in_package.energy.write_bytes
    design._writeback_line(ppn * LINES_PER_PAGE + 3, 10_000.0)
    assert design.in_package.energy.write_bytes == before + 64


def test_sram_writebacks_go_home_when_page_not_cached(small_config):
    design = create_design("sram", small_config)
    before = design.off_package.energy.write_bytes
    design._writeback_line(4321 * LINES_PER_PAGE, 0.0)
    assert design.off_package.energy.write_bytes == before + 64


def test_tagless_routes_by_namespace(small_config):
    design = create_design("tagless", small_config)
    design.access(0, 0, 1, 0, True, 0.0)
    ca = design.page_table(0).entry(1).cache_page
    # CA-space line: in-package, and the page turns dirty.
    in_before = design.in_package.energy.write_bytes
    design._writeback_line(ca * LINES_PER_PAGE + 2, 10_000.0)
    assert design.in_package.energy.write_bytes == in_before + 64
    assert design.engine.gipt.require(ca).dirty
    # PA-namespace line (an NC page's): off-package.
    off_before = design.off_package.energy.write_bytes
    design._writeback_line(PA_NAMESPACE_OFFSET + 99 * LINES_PER_PAGE, 0.0)
    assert design.off_package.energy.write_bytes == off_before + 64


def test_writebacks_are_asynchronous(small_config):
    """No design charges demand latency for a write-back."""
    for name in ("no-l3", "bi", "sram", "tagless", "ideal"):
        design = create_design(name, small_config)
        demand_before = (design.in_package.demand_accesses
                         + design.off_package.demand_accesses)
        design._writeback_line(50 * LINES_PER_PAGE, 0.0)
        demand_after = (design.in_package.demand_accesses
                        + design.off_package.demand_accesses)
        assert demand_after == demand_before, name
