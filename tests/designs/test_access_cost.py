"""AccessCost semantics: what each field promises the simulator."""

import pytest

from repro.designs import create_design


def test_l1_hit_cost_is_hit_cycles(small_config):
    design = create_design("no-l3", small_config)
    design.access(0, 0, 1, 0, False, 0.0)
    cost = design.access(0, 0, 1, 0, False, 100.0)
    assert cost.ondie_level == "l1"
    assert not cost.l3_involved
    assert cost.l3_cycles == 0.0
    assert cost.cycles == pytest.approx(small_config.l1.hit_cycles)


def test_l3_cycles_include_tlb_penalty(small_config):
    """Figure 8's metric counts TLB time (Section 5.1: "including TLB
    access time"): a first touch's l3_cycles carry the walk."""
    design = create_design("no-l3", small_config)
    cost = design.access(0, 0, 1, 0, False, 0.0)
    assert cost.l3_involved
    assert cost.tlb_level == "miss"
    assert cost.l3_cycles >= small_config.scaled_tlb.walk_cycles
    assert cost.l3_cycles == pytest.approx(cost.cycles)


def test_mean_l3_latency_averages_only_l3_accesses(small_config):
    design = create_design("no-l3", small_config)
    first = design.access(0, 0, 1, 0, False, 0.0)
    design.access(0, 0, 1, 0, False, 100.0)  # L1 hit: not counted
    assert design.l3_accesses == 1
    assert design.mean_l3_latency_cycles() == pytest.approx(
        first.l3_cycles
    )


def test_l2_tlb_hit_penalty_counted():
    # A config whose L2 TLB is genuinely larger than its L1 TLB (the
    # small_config fixture clamps both to 32 entries, so an L2-only hit
    # cannot occur there).
    import dataclasses

    from repro.common.config import default_system

    config = dataclasses.replace(
        default_system(cache_megabytes=128, num_cores=1,
                       capacity_scale=512),
        tlb_scale=8,  # L2 TLB: 64 entries vs the 32-entry L1
    )
    design = create_design("no-l3", config)
    l1_entries = config.scaled_tlb.l1_entries
    for vpn in range(l1_entries + 2):
        design.access(0, 0, vpn, 0, False, vpn * 100.0)
    cost = design.access(0, 0, 0, 1, False, 10**6)
    assert cost.tlb_level == "l2"
    assert cost.cycles >= config.scaled_tlb.l2_hit_cycles


def test_tagless_cost_never_below_sram_savings(small_config):
    """Steady-state L3 hit: tagless saves exactly the tag latency."""
    sram = create_design("sram", small_config)
    tagless = create_design("tagless", small_config)
    for design in (sram, tagless):
        design.access(0, 0, 1, 0, False, 0.0)  # fill
        # Evict the line from on-die so the next access reaches L3.
        target = design.tlbs[0].l1.peek(1).target_page
        design.ondie[0].invalidate_page(target)
    sram_cost = sram.access(0, 0, 1, 0, False, 10**6).cycles
    tagless_cost = tagless.access(0, 0, 1, 0, False, 10**6).cycles
    assert sram_cost - tagless_cost == pytest.approx(
        sram.tags.access_cycles, abs=2.0
    )
