"""No-L3, BI and Ideal design behaviour."""

import pytest

from repro.designs import create_design


def run_accesses(design, n=200, footprint=30, core_id=0, process_id=0):
    now = 0.0
    total = 0.0
    for i in range(n):
        cost = design.access(
            core_id, process_id, virtual_page=(i * 3) % footprint,
            line_index=i % 64, is_write=(i % 4 == 0), now_ns=now,
        )
        total += cost.cycles
        now += 2.0 + cost.cycles / 3.0
    return total / n


class TestNoL3:
    def test_l2_misses_go_off_package(self, small_config):
        design = create_design("no-l3", small_config)
        run_accesses(design)
        assert design.off_package.demand_accesses > 0
        assert design.in_package.demand_accesses == 0

    def test_l3_latency_counts_only_l2_misses(self, small_config):
        design = create_design("no-l3", small_config)
        run_accesses(design)
        assert 0 < design.l3_accesses <= design.accesses
        assert design.mean_l3_latency_cycles() > 0


class TestIdeal:
    def test_everything_in_package(self, small_config):
        design = create_design("ideal", small_config)
        run_accesses(design)
        assert design.in_package.demand_accesses > 0
        assert design.off_package.demand_accesses == 0

    def test_faster_than_no_l3(self, small_config):
        ideal = create_design("ideal", small_config)
        no_l3 = create_design("no-l3", small_config)
        assert run_accesses(ideal) < run_accesses(no_l3)


class TestBankInterleaving:
    def test_traffic_splits_by_frame_placement(self, small_config):
        design = create_design("bi", small_config)
        run_accesses(design, n=500, footprint=100)
        assert design.in_package.demand_accesses > 0
        assert design.off_package.demand_accesses > 0
        # Off-package dominates: it is 8x-ish larger.
        assert (design.off_package.demand_accesses
                > design.in_package.demand_accesses)

    def test_placement_is_stable_per_page(self, small_config):
        design = create_design("bi", small_config)
        pte = design.page_table(0).entry(5)
        assert design.is_in_package(pte.physical_page) in (True, False)
        # Same page, same placement, always.
        again = design.page_table(0).entry(5)
        assert again.physical_page == pte.physical_page

    def test_between_no_l3_and_ideal(self, small_config):
        bi = run_accesses(create_design("bi", small_config), n=600,
                          footprint=120)
        no_l3 = run_accesses(create_design("no-l3", small_config), n=600,
                             footprint=120)
        ideal = run_accesses(create_design("ideal", small_config), n=600,
                             footprint=120)
        assert ideal < bi < no_l3


class TestCommonPath:
    def test_tlb_levels_reported(self, small_config):
        design = create_design("no-l3", small_config)
        first = design.access(0, 0, 1, 0, False, 0.0)
        assert first.tlb_level == "miss"
        second = design.access(0, 0, 1, 1, False, 10.0)
        assert second.tlb_level == "l1"

    def test_ondie_levels_reported(self, small_config):
        design = create_design("no-l3", small_config)
        assert design.access(0, 0, 1, 0, False, 0.0).ondie_level == "miss"
        assert design.access(0, 0, 1, 0, False, 10.0).ondie_level == "l1"

    def test_bad_line_index_rejected(self, small_config):
        from repro.common.errors import SimulationError
        design = create_design("no-l3", small_config)
        with pytest.raises(SimulationError):
            design.access(0, 0, 1, 64, False, 0.0)

    def test_reset_stats_zeroes_counters_keeps_warmth(self, small_config):
        design = create_design("no-l3", small_config)
        run_accesses(design, n=100)
        design.reset_stats()
        assert design.accesses == 0
        assert design.l3_accesses == 0
        # TLB and caches stay warm.
        cost = design.access(0, 0, 0, 0, False, 0.0)
        assert cost.tlb_level != "miss" or cost.ondie_level != "miss"

    def test_stats_keys_exist(self, small_config):
        design = create_design("no-l3", small_config)
        run_accesses(design, n=50)
        stats = design.stats()
        assert stats["accesses"] == 50.0
        assert "core0_tlb_misses" in stats
        assert "offpkg_demand_accesses" in stats
