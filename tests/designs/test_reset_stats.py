"""reset_stats audit: counters clear, cached state stays warm.

The warmup/measurement boundary calls ``reset_stats()``; a counter a
design forgets to clear silently inflates every warmed measurement.
These tests sweep the whole registry so a new design (or a new counter
on an old one) cannot dodge the audit.
"""

import pytest

from repro.designs.registry import ALL_DESIGN_NAMES, create_design

#: Stats that survive a reset by design: they are gauges describing
#: current structural state (cache occupancy, free pool, GIPT size),
#: not accumulated event counts.
GAUGE_SUFFIXES = (
    "occupancy",
    "resident_pages",
    "free_blocks",
    "live_entries",
    "storage_bytes",
)


def drive(design, trace, start_ns=0.0):
    now = start_ns
    for i in range(len(trace)):
        cycles = design.access_cycles(
            0, 0, int(trace.virtual_pages[i]), int(trace.lines[i]),
            bool(trace.writes[i]), now,
        )
        now += (cycles + int(trace.instruction_gaps[i])) * 0.5
    return now


@pytest.mark.parametrize("name", ALL_DESIGN_NAMES)
def test_reset_clears_every_counter(small_config, tiny_trace, name):
    design = create_design(name, small_config)
    drive(design, tiny_trace)
    assert design.stats()["accesses"] > 0
    design.reset_stats()
    leftovers = {
        key: value for key, value in design.stats().items()
        if value != 0 and not key.endswith(GAUGE_SUFFIXES)
    }
    assert not leftovers, f"{name}: counters survived reset: {leftovers}"
    assert design.mean_l3_latency_cycles() == 0.0


@pytest.mark.parametrize("name", ALL_DESIGN_NAMES)
def test_run_reset_run_is_deterministic(small_config, tiny_trace, name):
    """Two identically built designs through the same warmup/reset/measure
    sequence must report identical measured stats -- the property the
    simulator's warmup split relies on."""

    def measure():
        design = create_design(name, small_config)
        end = drive(design, tiny_trace)
        design.reset_stats()
        drive(design, tiny_trace, start_ns=end)
        return design.stats()

    assert measure() == measure()


def test_reset_keeps_cache_warm(small_config, tiny_trace):
    design = create_design("tagless", small_config)
    drive(design, tiny_trace)
    occupancy = len(design.engine.gipt._entries)
    fills_before = design.stats()["engine_fills"]
    assert fills_before > 0
    design.reset_stats()
    # Structural state untouched; counters back to zero.
    assert len(design.engine.gipt._entries) == occupancy
    assert design.stats()["engine_fills"] == 0.0


def test_reset_clears_caching_policy_counters(small_config, tiny_trace):
    from repro.policy.touch_filter import TouchCountFilterPolicy

    design = create_design("tagless", small_config)
    design.set_caching_policy(TouchCountFilterPolicy(threshold=2))
    drive(design, tiny_trace)
    policy = design.caching_policy
    assert policy.bypasses + policy.promotions > 0
    counts_before = dict(policy._counts)
    design.reset_stats()
    assert policy.bypasses == 0
    assert policy.promotions == 0
    # Learned state (the touch counters) survives: reset is a stats
    # boundary, not a policy retrain.
    assert policy._counts == counts_before
