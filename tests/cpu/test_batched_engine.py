"""Batched engine: bit-identical to the scalar loop, on every design.

The batched engine's whole contract is "same floats, fewer Python
instructions".  These tests run the two engines over identical bindings
and compare the *entire* observable output -- the stats dictionary
(exact ``==`` on every float), the energy breakdown, and the per-core
instruction/cycle/stall counts -- for every registered design, single-
and quad-core.  The golden-stats oracle additionally locks both engines
against checked-in numbers (CI runs it under ``REPRO_ENGINE=batched``).
"""

import pytest

from repro.common.config import default_system
from repro.common.errors import ConfigurationError
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.designs.registry import ALL_DESIGN_NAMES
from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import mix_traces
from repro.workloads.spec import spec_profile

ACCESSES = 3_000


def _single_core_bindings():
    generator = TraceGenerator(spec_profile("mcf"), capacity_scale=64)
    return [BoundTrace(0, 0, generator.generate(ACCESSES))]


def _quad_core_bindings():
    traces = mix_traces("MIX1", accesses_per_program=1_500,
                        capacity_scale=64)
    return [BoundTrace(i, i, t) for i, t in enumerate(traces)]


def _snapshot(result):
    return (
        result.stats,
        result.energy,
        [(c.core_id, c.instructions, c.cycles, c.stall_cycles)
         for c in result.cores],
        result.elapsed_ns,
        result.mean_l3_latency_cycles,
    )


@pytest.mark.parametrize("design", ALL_DESIGN_NAMES)
def test_batched_bit_identical_single_core(design):
    simulator = Simulator(default_system(cache_megabytes=256, num_cores=1,
                                         capacity_scale=64))
    bindings = _single_core_bindings()
    scalar = simulator.run(design, bindings, engine="scalar")
    batched = simulator.run(design, bindings, engine="batched")
    assert _snapshot(scalar) == _snapshot(batched)


@pytest.mark.parametrize("design", ALL_DESIGN_NAMES)
def test_batched_bit_identical_quad_core(design):
    simulator = Simulator(default_system(cache_megabytes=256, num_cores=4,
                                         capacity_scale=64))
    bindings = _quad_core_bindings()
    scalar = simulator.run(design, bindings, engine="scalar")
    batched = simulator.run(design, bindings, engine="batched")
    assert _snapshot(scalar) == _snapshot(batched)


def test_run_batched_convenience_method():
    simulator = Simulator(default_system(cache_megabytes=256, num_cores=1,
                                         capacity_scale=64))
    bindings = _single_core_bindings()
    direct = simulator.run("tagless", bindings, engine="batched")
    convenience = simulator.run_batched("tagless", bindings)
    assert _snapshot(direct) == _snapshot(convenience)


def test_unknown_engine_rejected():
    simulator = Simulator(default_system(cache_megabytes=256, num_cores=1,
                                         capacity_scale=64))
    with pytest.raises(ConfigurationError):
        simulator.run("tagless", _single_core_bindings(), engine="vector")


def test_engine_env_default(monkeypatch):
    simulator = Simulator(default_system(cache_megabytes=256, num_cores=1,
                                         capacity_scale=64))
    bindings = _single_core_bindings()
    explicit = simulator.run("tagless", bindings, engine="batched")
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    via_env = simulator.run("tagless", bindings)
    assert _snapshot(explicit) == _snapshot(via_env)


def test_observed_batched_run_stays_identical():
    """Validation hooks force the scalar fallback -- results unchanged."""
    simulator = Simulator(default_system(cache_megabytes=256, num_cores=1,
                                         capacity_scale=64))
    bindings = _single_core_bindings()
    plain = simulator.run("tagless", bindings, engine="batched")
    validated = simulator.run("tagless", bindings, engine="batched",
                              validate=True)
    assert _snapshot(plain) == _snapshot(validated)
