"""Simulator facade tests: warmup, NC plumbing, result fields."""

import pytest

from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator


def bindings_for(trace):
    return [BoundTrace(core_id=0, process_id=0, trace=trace)]


def test_result_fields(small_config, tiny_trace):
    result = Simulator(small_config).run("no-l3", bindings_for(tiny_trace))
    assert result.design_name == "no-l3"
    assert result.ipc_sum > 0
    assert result.elapsed_ns > 0
    assert result.instructions > 0
    assert result.total_energy_j > 0
    assert result.edp > 0
    assert result.mean_l3_latency_cycles > 0
    assert "accesses" in result.stats


def test_ipc_of(small_config, tiny_trace):
    result = Simulator(small_config).run("no-l3", bindings_for(tiny_trace))
    assert result.ipc_of(0) == result.cores[0].ipc
    with pytest.raises(KeyError):
        result.ipc_of(3)


def test_warmup_excludes_cold_start(small_config, tiny_trace):
    sim = Simulator(small_config)
    cold = sim.run("tagless", bindings_for(tiny_trace), warmup_fraction=0.0)
    warm = sim.run("tagless", bindings_for(tiny_trace), warmup_fraction=0.3)
    # The warmed run measures fewer accesses and fewer cold fills.
    assert warm.stats["accesses"] < cold.stats["accesses"]
    assert warm.stats["engine_fills"] < cold.stats["engine_fills"]


def test_invalid_warmup_rejected(small_config, tiny_trace):
    with pytest.raises(ValueError):
        Simulator(small_config).run("no-l3", bindings_for(tiny_trace),
                                    warmup_fraction=1.0)


def test_max_accesses(small_config, tiny_trace):
    result = Simulator(small_config).run(
        "no-l3", bindings_for(tiny_trace), max_accesses=100,
        warmup_fraction=0.0,
    )
    assert result.stats["accesses"] == 100.0


def test_non_cacheable_only_affects_tagless(small_config, tiny_trace):
    sim = Simulator(small_config)
    nc = {0: list(range(10))}
    tagless = sim.run("tagless", bindings_for(tiny_trace), non_cacheable=nc)
    assert tagless.stats["nc_accesses"] > 0
    # Other designs silently ignore the hint.
    sram = sim.run("sram", bindings_for(tiny_trace), non_cacheable=nc)
    assert "nc_accesses" not in sram.stats


def test_each_run_uses_a_fresh_design(small_config, tiny_trace):
    sim = Simulator(small_config)
    first = sim.run("sram", bindings_for(tiny_trace), warmup_fraction=0.0)
    second = sim.run("sram", bindings_for(tiny_trace), warmup_fraction=0.0)
    assert first.ipc_sum == pytest.approx(second.ipc_sum)


def test_determinism(small_config, tiny_trace):
    a = Simulator(small_config).run("tagless", bindings_for(tiny_trace))
    b = Simulator(small_config).run("tagless", bindings_for(tiny_trace))
    assert a.ipc_sum == pytest.approx(b.ipc_sum)
    assert a.total_energy_j == pytest.approx(b.total_energy_j)
