"""Interval core timing model tests."""

import pytest

from repro.common.config import CoreConfig
from repro.cpu.core_model import CoreTimingModel


def make(base_cpi=0.5, mlp=2.0):
    return CoreTimingModel(CoreConfig(), base_cpi=base_cpi, mlp=mlp)


def test_advance_instructions():
    core = make(base_cpi=0.5)
    core.advance_instructions(1000)
    assert core.instructions == 1000
    assert core.cycles == pytest.approx(500.0)


def test_l1_hits_never_stall():
    core = make()
    stall = core.account_memory(latency_cycles=2.0)  # L1 hit time
    assert stall == 0.0
    assert core.instructions == 1
    assert core.cycles == pytest.approx(0.5)  # just the instruction


def test_mlp_divides_excess_latency():
    core = make(mlp=2.0)
    stall = core.account_memory(latency_cycles=102.0)
    assert stall == pytest.approx((102.0 - 2.0) / 2.0)
    assert core.stall_cycles == pytest.approx(50.0)


def test_ipc_computation():
    core = make(base_cpi=0.5, mlp=1.0)
    core.advance_instructions(99)
    core.account_memory(2.0)
    assert core.ipc() == pytest.approx(100 / 50.0)


def test_time_ns_follows_frequency():
    core = make(base_cpi=1.0)
    core.advance_instructions(3000)
    assert core.time_ns == pytest.approx(1000.0)  # 3 GHz


def test_empty_core_ipc_zero():
    assert make().ipc() == 0.0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        make(base_cpi=0.0)
    with pytest.raises(ValueError):
        make(mlp=0.5)


def test_higher_mlp_hides_more_latency():
    low = make(mlp=1.5)
    high = make(mlp=3.0)
    low.account_memory(100.0)
    high.account_memory(100.0)
    assert high.cycles < low.cycles


class TestWindowModel:
    def make_window(self, base_cpi=0.5, rob=64):
        import dataclasses

        from repro.cpu.core_model import WindowCoreTimingModel

        cfg = dataclasses.replace(CoreConfig(), model="window",
                                  rob_entries=rob)
        return WindowCoreTimingModel(cfg, base_cpi=base_cpi, mlp=2.0)

    def test_window_hides_short_latency_completely(self):
        core = self.make_window(base_cpi=0.5, rob=64)  # hides 32 cycles
        stall = core.account_memory(latency_cycles=30.0)
        assert stall == 0.0

    def test_long_latency_stalls_beyond_the_window(self):
        core = self.make_window(base_cpi=0.5, rob=64)
        stall = core.account_memory(latency_cycles=102.0)
        # excess 100, window hides 32 -> 68 visible.
        assert stall == pytest.approx(68.0)

    def test_overlapping_misses_share_one_shadow(self):
        core = self.make_window(base_cpi=0.5, rob=64)
        first = core.account_memory(202.0)
        # Issued immediately after: its completion falls inside the
        # first miss's shadow, so it adds (almost) nothing.
        second = core.account_memory(202.0)
        assert second < first * 0.2

    def test_distant_misses_stall_independently(self):
        core = self.make_window(base_cpi=0.5, rob=64)
        first = core.account_memory(202.0)
        core.advance_instructions(10_000)  # shadow long expired
        second = core.account_memory(202.0)
        assert second == pytest.approx(first)

    def test_factory(self):
        import dataclasses

        from repro.cpu.core_model import (
            CoreTimingModel,
            WindowCoreTimingModel,
            make_core_model,
        )

        assert isinstance(
            make_core_model(CoreConfig(), 0.5, 2.0), CoreTimingModel
        )
        window_cfg = dataclasses.replace(CoreConfig(), model="window")
        assert isinstance(
            make_core_model(window_cfg, 0.5, 2.0), WindowCoreTimingModel
        )
        # Bogus model names now die at config construction, before a
        # factory could even see them.
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            dataclasses.replace(CoreConfig(), model="oracle")

    def test_design_ordering_survives_the_window_model(self):
        """The qualitative result is model-robust: under the window
        model the design ordering of Figure 7 still holds."""
        import dataclasses

        from repro import BoundTrace, Simulator, default_system
        from repro.workloads import TraceGenerator, spec_profile

        config = default_system(cache_megabytes=1024, num_cores=1,
                                capacity_scale=64)
        config = dataclasses.replace(
            config, core=dataclasses.replace(config.core, model="window")
        )
        trace = TraceGenerator(
            spec_profile("milc"), capacity_scale=64
        ).generate(20_000)
        sim = Simulator(config)
        bindings = [BoundTrace(0, 0, trace)]
        ipc = {name: sim.run(name, bindings).ipc_sum
               for name in ("no-l3", "sram", "tagless", "ideal")}
        assert ipc["no-l3"] < ipc["sram"] < ipc["tagless"]
        assert ipc["tagless"] < ipc["ideal"]
