"""Interleaved multicore execution engine tests."""

import numpy as np
import pytest

from repro.cpu.multicore import BoundTrace, run_interleaved
from repro.designs import create_design
from repro.workloads.trace import AccessTrace


def make_trace(name, pages, cpi=0.5, mlp=2.0, gap=20):
    n = len(pages)
    return AccessTrace(
        name=name,
        virtual_pages=np.array(pages, dtype=np.int64),
        lines=np.arange(n, dtype=np.int16) % 64,
        writes=np.zeros(n, dtype=bool),
        instruction_gaps=np.full(n, gap, dtype=np.int64),
        base_cpi=cpi,
        mlp=mlp,
    )


def test_single_core_runs_to_completion(small_config):
    design = create_design("no-l3", small_config)
    trace = make_trace("t", [1, 2, 3, 1, 2, 3] * 50)
    results = run_interleaved(design, [BoundTrace(0, 0, trace)])
    assert len(results) == 1
    assert results[0].instructions == trace.total_instructions
    assert results[0].cycles > 0


def test_empty_bindings():
    assert run_interleaved(None, []) == []


def test_duplicate_core_rejected(small_config):
    design = create_design("no-l3", small_config)
    trace = make_trace("t", [1])
    with pytest.raises(ValueError):
        run_interleaved(
            design,
            [BoundTrace(0, 0, trace), BoundTrace(0, 1, trace)],
        )


def test_multicore_all_traces_complete(small_mp_config):
    design = create_design("no-l3", small_mp_config)
    bindings = [
        BoundTrace(i, i, make_trace(f"t{i}", [(i * 37 + j) % 50
                                              for j in range(300)]))
        for i in range(4)
    ]
    results = run_interleaved(design, bindings)
    assert len(results) == 4
    assert all(r.instructions > 0 for r in results)
    assert {r.core_id for r in results} == {0, 1, 2, 3}


def test_interleaving_keeps_clocks_close(small_mp_config):
    """The min-time scheduler should keep core clocks within one access
    cost of each other while all traces are active (same-length traces
    with identical behaviour finish at similar times)."""
    design = create_design("no-l3", small_mp_config)
    bindings = [
        BoundTrace(i, i, make_trace(f"t{i}", [j % 40 for j in range(400)]))
        for i in range(4)
    ]
    results = run_interleaved(design, bindings)
    cycles = [r.cycles for r in results]
    assert max(cycles) / min(cycles) < 1.2


def test_max_accesses_truncates(small_config):
    design = create_design("no-l3", small_config)
    trace = make_trace("t", list(range(50)))
    results = run_interleaved(design, [BoundTrace(0, 0, trace)],
                              max_accesses=10)
    assert design.accesses == 10
    assert results[0].instructions == 10 * 21  # 10 gaps of 20 + 10 mem ops


def test_workload_name_propagates(small_config):
    design = create_design("no-l3", small_config)
    results = run_interleaved(
        design, [BoundTrace(0, 0, make_trace("myprog", [1, 2]))]
    )
    assert results[0].workload == "myprog"


def test_ipc_property(small_config):
    design = create_design("no-l3", small_config)
    results = run_interleaved(
        design, [BoundTrace(0, 0, make_trace("t", [1] * 100))]
    )
    r = results[0]
    assert r.ipc == pytest.approx(r.instructions / r.cycles)
