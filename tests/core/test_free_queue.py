"""Free queue / header pointer tests."""

import pytest

from repro.common.errors import SimulationError
from repro.core.free_queue import FreeQueue


def test_header_pointer_walks_addresses_in_order():
    fq = FreeQueue(capacity_pages=4, alpha=1)
    assert fq.header_pointer == 0
    assert [fq.allocate() for _ in range(4)] == [0, 1, 2, 3]


def test_allocation_exhaustion_is_a_bug():
    fq = FreeQueue(capacity_pages=2, alpha=1)
    fq.allocate()
    fq.allocate()
    with pytest.raises(SimulationError):
        fq.allocate()


def test_needs_eviction_below_alpha():
    fq = FreeQueue(capacity_pages=4, alpha=2)
    fq.allocate()
    assert not fq.needs_eviction()  # 3 free >= alpha 2
    fq.allocate()
    fq.allocate()
    assert fq.needs_eviction()  # 1 free < alpha 2


def test_eviction_cycle_returns_block_to_pool():
    fq = FreeQueue(capacity_pages=2, alpha=1)
    a = fq.allocate()
    fq.allocate()
    assert fq.free_blocks == 0
    fq.enqueue_eviction(a)
    assert fq.pending_evictions == 1
    assert fq.pop_pending() == a
    fq.mark_free(a)
    assert fq.free_blocks == 1
    assert fq.header_pointer == a  # recycled block is next to allocate


def test_pop_pending_empty_returns_none():
    fq = FreeQueue(capacity_pages=2, alpha=1)
    assert fq.pop_pending() is None


def test_mark_free_out_of_range_is_a_bug():
    fq = FreeQueue(capacity_pages=2, alpha=1)
    with pytest.raises(SimulationError):
        fq.mark_free(5)


def test_alpha_must_leave_room():
    with pytest.raises(ValueError):
        FreeQueue(capacity_pages=2, alpha=2)
    with pytest.raises(ValueError):
        FreeQueue(capacity_pages=4, alpha=0)


def test_stats():
    fq = FreeQueue(capacity_pages=4, alpha=1)
    fq.allocate()
    fq.enqueue_eviction(0)
    stats = fq.stats("f_")
    assert stats["f_allocations"] == 1.0
    assert stats["f_evictions_enqueued"] == 1.0
    assert stats["f_free_blocks"] == 3.0
    assert stats["f_pending"] == 1.0
