"""cTLB semantic wrapper tests."""

import pytest

from repro.core.ctlb import CacheMapTLB
from repro.vm.page_table import PageTableEntry
from repro.vm.tlb import TLBHierarchy


@pytest.fixture
def ctlb():
    return CacheMapTLB(TLBHierarchy(2, 4))


def test_cache_mapping_returns_cache_page(ctlb):
    ctlb.install_cache_mapping(virtual_page=5, cache_page=17)
    level, entry = ctlb.lookup(5)
    assert level == "l1"
    assert entry.target_page == 17
    assert not entry.non_cacheable


def test_noncacheable_mapping_returns_physical_page(ctlb):
    pte = PageTableEntry(virtual_page=6, physical_page=900,
                         non_cacheable=True)
    ctlb.install_noncacheable(pte)
    __, entry = ctlb.lookup(6)
    assert entry.target_page == 900
    assert entry.non_cacheable


def test_miss_returns_none(ctlb):
    level, entry = ctlb.lookup(99)
    assert level == "miss" and entry is None


def test_shootdown(ctlb):
    ctlb.install_cache_mapping(1, 2)
    assert ctlb.shootdown(1)
    level, __ = ctlb.lookup(1)
    assert level == "miss"
    assert not ctlb.shootdown(1)


def test_resident_and_peek(ctlb):
    ctlb.install_cache_mapping(1, 2)
    assert ctlb.resident(1)
    assert ctlb.peek_target(1) == 2
    assert ctlb.peek_target(42) is None


def test_miss_rate_delegation(ctlb):
    ctlb.lookup(1)
    ctlb.install_cache_mapping(1, 2)
    ctlb.lookup(1)
    assert ctlb.accesses == 2
    assert ctlb.miss_rate() == pytest.approx(0.5)
