"""cTLB miss handler tests -- the Figure 4 flow chart."""

import pytest

from repro.common.config import CoreConfig, DRAMCacheConfig, TLBConfig, default_system
from repro.core.ctlb import CacheMapTLB
from repro.core.miss_handler import CTLBMissHandler, MissOutcome
from repro.core.tagless_cache import TaglessCacheEngine
from repro.dram.device import DRAMDevice
from repro.vm.page_table import PageTable, PhysicalFrameAllocator
from repro.vm.tlb import TLBHierarchy
from repro.vm.walker import PageTableWalker


def make_handler(capacity_pages=8, num_cores=2):
    cfg = default_system()
    engine = TaglessCacheEngine(
        capacity_pages=capacity_pages,
        cache_config=DRAMCacheConfig(),
        core_config=CoreConfig(),
        num_cores=num_cores,
        in_package=DRAMDevice(cfg.in_package, cfg.in_package_energy),
        off_package=DRAMDevice(cfg.off_package, cfg.off_package_energy),
        gipt_base_page=10_000,
    )
    handlers = []
    for core_id in range(num_cores):
        ctlb = CacheMapTLB(TLBHierarchy(2, 4))
        handlers.append(
            CTLBMissHandler(
                core_id=core_id,
                ctlb=ctlb,
                engine=engine,
                walker=PageTableWalker(TLBConfig(walk_cycles=60)),
                core_config=CoreConfig(),
            )
        )
    return engine, handlers


@pytest.fixture
def table():
    return PageTable(PhysicalFrameAllocator(5000))


def test_first_touch_fills(table):
    engine, (h, __) = make_handler()
    cycles, outcome = h.handle(table, 7, now_ns=0.0)
    assert outcome is MissOutcome.FILL
    assert cycles > 60  # walk + fill + GIPT
    assert engine.fills == 1
    # The cTLB now maps the page to its cache address.
    __, entry = h.ctlb.lookup(7)
    assert entry.target_page == table.entry(7).cache_page


def test_cached_page_is_victim_hit(table):
    engine, (h0, h1) = make_handler()
    h0.handle(table, 7, 0.0)
    cycles, outcome = h1.handle(table, 7, 1000.0)
    assert outcome is MissOutcome.VICTIM_HIT
    assert cycles == pytest.approx(60.0)  # walk only (Table 1, row 3)
    assert engine.victim_hits == 1
    assert engine.fills == 1  # no duplicate fill


def test_noncacheable_page_gets_physical_mapping(table):
    engine, (h, __) = make_handler()
    table.set_non_cacheable(3)
    cycles, outcome = h.handle(table, 3, 0.0)
    assert outcome is MissOutcome.NON_CACHEABLE
    assert engine.fills == 0
    __, entry = h.ctlb.lookup(3)
    assert entry.non_cacheable
    assert entry.target_page == table.entry(3).physical_page


def test_pu_wait_for_in_flight_fill(table):
    """A second core reaching the page before the first core's fill
    completes must stall until it does (the PU busy-wait)."""
    engine, (h0, h1) = make_handler()
    h0.handle(table, 7, now_ns=0.0)
    pending_until = table.entry(7).pending_until_ns
    assert pending_until > 0
    cycles, outcome = h1.handle(table, 7, now_ns=pending_until / 2)
    assert outcome is MissOutcome.PU_WAIT
    # Walk plus the remaining wait.
    expected_wait = (pending_until / 2) * CoreConfig().frequency_ghz
    assert cycles == pytest.approx(60.0 + expected_wait)


def test_no_pu_wait_after_completion(table):
    engine, (h0, h1) = make_handler()
    h0.handle(table, 7, now_ns=0.0)
    after = table.entry(7).pending_until_ns + 1.0
    __, outcome = h1.handle(table, 7, now_ns=after)
    assert outcome is MissOutcome.VICTIM_HIT


def test_residence_set_for_each_core(table):
    engine, (h0, h1) = make_handler()
    h0.handle(table, 7, 0.0)
    h1.handle(table, 7, 1000.0)
    ca = table.entry(7).cache_page
    assert engine.gipt.require(ca).residence_mask == 0b11


def test_fill_clears_pu_bit(table):
    __, (h, _h1) = make_handler()
    h.handle(table, 7, 0.0)
    assert not table.entry(7).pending_update


def test_outcome_stats(table):
    engine, (h, __) = make_handler()
    h.handle(table, 1, 0.0)
    table.set_non_cacheable(2)
    h.handle(table, 2, 0.0)
    stats = h.stats("h_")
    assert stats["h_fill"] == 1.0
    assert stats["h_non_cacheable"] == 1.0
    assert stats["h_cycles_total"] > 0
