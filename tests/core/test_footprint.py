"""Footprint partial-fill extension tests."""

import dataclasses

import pytest

from repro.common.addressing import LINES_PER_PAGE
from repro.core.footprint import (
    FULL_MASK,
    FootprintHistoryTable,
    mask_bit,
    mask_bytes,
)


class TestMaskHelpers:
    def test_full_mask_covers_page(self):
        assert mask_bytes(FULL_MASK) == 4096

    def test_mask_bit(self):
        assert mask_bit(0) == 1
        assert mask_bit(63) == 1 << 63

    def test_mask_bytes_counts_blocks(self):
        assert mask_bytes(0b1011) == 3 * 64


class TestHistoryTable:
    def test_unseen_page_fetches_everything_during_warmup(self):
        table = FootprintHistoryTable()
        assert table.predict(1, first_line=0) == FULL_MASK
        assert table.full_fetches == 1

    def test_refill_uses_recorded_mask_plus_trigger(self):
        table = FootprintHistoryTable()
        table.record(1, touched_mask=0b110)
        mask = table.predict(1, first_line=5)
        assert mask == 0b110 | mask_bit(5)

    def test_empty_residency_records_minimal_footprint(self):
        table = FootprintHistoryTable()
        table.record(1, touched_mask=0)
        assert table.predict(1, first_line=0) == mask_bit(0)

    def test_global_density_kicks_in_after_warmup(self):
        table = FootprintHistoryTable()
        for page in range(table.WARMUP_RECORDS):
            table.record(page + 1000, touched_mask=0b1111)  # 4 blocks
        mask = table.predict(1, first_line=10)
        assert mask != FULL_MASK
        assert mask & mask_bit(10)
        assert mask_bytes(mask) == 4 * 64  # the global average

    def test_window_wraps_within_page(self):
        table = FootprintHistoryTable()
        for page in range(table.WARMUP_RECORDS):
            table.record(page + 1000, touched_mask=0b11)  # 2 blocks
        mask = table.predict(1, first_line=LINES_PER_PAGE - 1)
        assert mask & mask_bit(LINES_PER_PAGE - 1)
        assert mask & mask_bit(0)  # wrapped

    def test_storage_accounting(self):
        table = FootprintHistoryTable()
        table.record(1, 0b1)
        table.record(2, 0b1)
        assert len(table) == 2
        assert table.storage_bytes() == 16
        stats = table.stats("f_")
        assert stats["f_records"] == 2.0


class TestEngineIntegration:
    def make_config(self, small_config):
        return dataclasses.replace(
            small_config,
            dram_cache=dataclasses.replace(
                small_config.dram_cache, footprint_caching=True
            ),
        )

    def test_footprint_miss_fetches_block_on_demand(self, small_config):
        from repro.designs.tagless_design import TaglessDesign

        design = TaglessDesign(self.make_config(small_config))
        capacity = small_config.cache_pages
        entries = small_config.scaled_tlb.l2_entries
        # Touch a page on one line only, then churn it out of the cache
        # so its recorded footprint is 1 block.
        design.access(0, 0, 0, 3, False, 0.0)
        now = 1000.0
        for vpn in range(1, capacity + entries + 4):
            design.access(0, 0, vpn, 0, False, now)
            now += 2000.0
        assert not design.page_table(0).entry(0).valid_in_cache
        # Refill: only block 5 (trigger) + block 3 (history) transfer.
        design.access(0, 0, 0, 5, False, now)
        before = design.engine.footprint_misses
        # Touching an unfetched block is a footprint miss.
        design.access(0, 0, 0, 40, False, now + 1000.0)
        assert design.engine.footprint_misses == before + 1
        # And it is now resident: no second footprint miss.
        design.ondie[0].invalidate_page(
            design.page_table(0).entry(0).cache_page
        )
        design.access(0, 0, 0, 40, False, now + 2000.0)
        assert design.engine.footprint_misses == before + 1
        design.engine.check_invariants()

    def test_partial_fill_charges_fewer_bytes(self, small_config):
        from repro.designs.tagless_design import TaglessDesign

        design = TaglessDesign(self.make_config(small_config))
        capacity = small_config.cache_pages
        entries = small_config.scaled_tlb.l2_entries
        design.access(0, 0, 0, 3, False, 0.0)
        now = 1000.0
        for vpn in range(1, capacity + entries + 4):
            design.access(0, 0, vpn, 0, False, now)
            now += 2000.0
        before = design.off_package.energy.read_bytes
        design.access(0, 0, 0, 5, False, now)
        fetched = design.off_package.energy.read_bytes - before
        assert fetched < 4096  # partial fill, not the whole page

    def test_disabled_by_default(self, small_config):
        from repro.designs.tagless_design import TaglessDesign

        design = TaglessDesign(small_config)
        assert design.engine.footprint is None
        design.access(0, 0, 0, 3, False, 0.0)
        assert design.engine.ensure_line_fetched(0, 63, 0.0) == 0.0
