"""Tagless cache engine tests: fills, evictions, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CoreConfig, DRAMCacheConfig, default_system
from repro.common.errors import SimulationError
from repro.core.tagless_cache import TaglessCacheEngine
from repro.dram.device import DRAMDevice
from repro.vm.page_table import PageTable, PhysicalFrameAllocator


def make_engine(capacity_pages=8, replacement="fifo", alpha=1,
                num_cores=2):
    cfg = default_system()
    in_pkg = DRAMDevice(cfg.in_package, cfg.in_package_energy)
    off_pkg = DRAMDevice(cfg.off_package, cfg.off_package_energy)
    evicted = []
    engine = TaglessCacheEngine(
        capacity_pages=capacity_pages,
        cache_config=DRAMCacheConfig(replacement=replacement, alpha=alpha),
        core_config=CoreConfig(),
        num_cores=num_cores,
        in_package=in_pkg,
        off_package=off_pkg,
        gipt_base_page=10_000,
        on_page_evicted=evicted.append,
    )
    return engine, evicted


@pytest.fixture
def table():
    return PageTable(PhysicalFrameAllocator(5000))


def test_fill_installs_state(table):
    engine, __ = make_engine()
    pte = table.entry(1)
    ca, latency = engine.allocate_and_fill(0.0, pte, core_id=0)
    assert latency > 0
    assert pte.valid_in_cache and pte.cache_page == ca
    assert engine.gipt.require(ca).physical_page == pte.physical_page
    assert engine.gipt.is_resident(ca)  # protected for the filling core
    engine.check_invariants()


def test_fill_charges_page_read_and_gipt_writes(table):
    engine, __ = make_engine()
    engine.allocate_and_fill(0.0, table.entry(1), core_id=0)
    assert engine.off_package.energy.read_bytes == 4096
    assert engine.off_package.energy.write_bytes == 2 * 64  # GIPT
    assert engine.in_package.energy.write_bytes == 4096  # lay-in


def test_eviction_starts_when_free_falls_below_alpha(table):
    engine, evicted = make_engine(capacity_pages=4, alpha=2)
    ptes = [table.entry(i) for i in range(4)]
    for core, pte in enumerate(ptes[:3]):
        ca, __ = engine.allocate_and_fill(0.0, pte, core_id=0)
        # Release residence so pages become evictable.
        engine.gipt.clear_resident(ca, 0)
    # 3 filled, 1 free < alpha=2: one eviction must have run.
    assert engine.free_queue.free_blocks >= engine.cache_config.alpha
    assert evicted, "on_page_evicted callback must fire"
    engine.check_invariants()


def test_fifo_evicts_oldest_unprotected(table):
    engine, evicted = make_engine(capacity_pages=3, alpha=1)
    cas = []
    for i in range(3):
        ca, __ = engine.allocate_and_fill(0.0, table.entry(i), core_id=0)
        engine.gipt.clear_resident(ca, 0)
        cas.append(ca)
    assert evicted[0] == cas[0]
    # The evicted page's PTE reverted to its physical address.
    assert not table.entry(0).valid_in_cache
    engine.check_invariants()


def test_resident_page_never_evicted(table):
    engine, evicted = make_engine(capacity_pages=3, alpha=1)
    first_ca, __ = engine.allocate_and_fill(0.0, table.entry(0), core_id=0)
    # Keep page 0 TLB-resident; fill more pages, releasing their bits.
    for i in range(1, 3):
        ca, __ = engine.allocate_and_fill(0.0, table.entry(i), core_id=1)
        engine.gipt.clear_resident(ca, 1)
    assert first_ca not in evicted
    assert table.entry(0).valid_in_cache
    engine.check_invariants()


def test_dirty_eviction_writes_back(table):
    engine, __ = make_engine(capacity_pages=2, alpha=1)
    ca, __ = engine.allocate_and_fill(0.0, table.entry(0), core_id=0)
    engine.note_access(ca, is_write=True)
    engine.gipt.clear_resident(ca, 0)
    before = engine.off_package.energy.write_bytes
    ca2, __ = engine.allocate_and_fill(0.0, table.entry(1), core_id=0)
    assert engine.writebacks == 1
    # A full page went home plus the new fill's GIPT writes.
    assert engine.off_package.energy.write_bytes >= before + 4096


def test_clean_eviction_skips_writeback(table):
    engine, __ = make_engine(capacity_pages=2, alpha=1)
    ca, __ = engine.allocate_and_fill(0.0, table.entry(0), core_id=0)
    engine.note_access(ca, is_write=False)
    engine.gipt.clear_resident(ca, 0)
    engine.allocate_and_fill(0.0, table.entry(1), core_id=0)
    assert engine.writebacks == 0


def test_all_protected_records_alpha_deficit(table):
    engine, __ = make_engine(capacity_pages=2, alpha=1)
    engine.allocate_and_fill(0.0, table.entry(0), core_id=0)
    engine.allocate_and_fill(0.0, table.entry(1), core_id=0)
    # Both pages resident: nothing evictable.
    assert engine.alpha_deficits >= 1
    engine.check_invariants()


def test_gipt_page_mapping_is_dense(table):
    engine, __ = make_engine(capacity_pages=8)
    assert engine.gipt_page_of(0) == 10_000
    # 16-byte entries: 256 per 4 KB page.
    assert engine.gipt_page_of(255) == 10_000
    assert engine.gipt_page_of(256) == 10_001


def test_stats_and_reset(table):
    engine, __ = make_engine()
    engine.allocate_and_fill(0.0, table.entry(0), core_id=0)
    stats = engine.stats("e_")
    assert stats["e_fills"] == 1.0
    assert stats["e_occupancy"] == pytest.approx(1 / 8)
    engine.reset_stats()
    assert engine.fills == 0
    assert len(engine.gipt) == 1  # contents stay warm
    engine.check_invariants()


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        make_engine(capacity_pages=0)


@settings(max_examples=25, deadline=None)
@given(
    vpns=st.lists(st.integers(0, 30), min_size=1, max_size=120),
    replacement=st.sampled_from(["fifo", "lru"]),
)
def test_engine_invariants_under_random_workload(vpns, replacement):
    """Property: after any fill/touch/release sequence,

    - block accounting (live + free + pending == capacity) holds;
    - every GIPT entry agrees with its PTE;
    - a VC=1 PTE always points at a live GIPT entry.
    """
    engine, __ = make_engine(capacity_pages=8, replacement=replacement)
    table = PageTable(PhysicalFrameAllocator(5000))
    resident_cas = []
    for i, vpn in enumerate(vpns):
        pte = table.entry(vpn)
        if pte.valid_in_cache:
            engine.note_victim_hit(pte.cache_page)
            engine.note_access(pte.cache_page, is_write=(i % 3 == 0))
        else:
            ca, __ = engine.allocate_and_fill(float(i), pte, core_id=0)
            resident_cas.append(ca)
            # Model a tiny TLB: only the two most recent fills stay
            # protected.
            while len(resident_cas) > 2:
                old = resident_cas.pop(0)
                engine.gipt.clear_resident(old, 0)
        engine.check_invariants()
        for page_vpn in range(31):
            entry = table.existing_entry(page_vpn)
            if entry is not None and entry.valid_in_cache:
                assert entry.cache_page in engine.gipt
