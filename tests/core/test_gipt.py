"""Global Inverted Page Table tests, including the paper's size claim."""

import pytest

from repro.common.errors import SimulationError
from repro.core.gipt import (
    GlobalInvertedPageTable,
    gipt_storage_megabytes,
)
from repro.vm.page_table import PageTableEntry


def make_pte(vpn=1, ppn=100):
    return PageTableEntry(virtual_page=vpn, physical_page=ppn)


@pytest.fixture
def gipt():
    return GlobalInvertedPageTable(capacity_pages=16, num_cores=4)


def test_insert_lookup_remove(gipt):
    pte = make_pte()
    entry = gipt.insert(3, 100, pte)
    assert gipt.lookup(3) is entry
    assert gipt.require(3).physical_page == 100
    removed = gipt.remove(3)
    assert removed is entry
    assert gipt.lookup(3) is None


def test_double_insert_is_a_bug(gipt):
    gipt.insert(3, 100, make_pte())
    with pytest.raises(SimulationError):
        gipt.insert(3, 200, make_pte())


def test_remove_absent_is_a_bug(gipt):
    with pytest.raises(SimulationError):
        gipt.remove(5)


def test_require_absent_is_a_bug(gipt):
    with pytest.raises(SimulationError):
        gipt.require(5)


def test_out_of_range_ca_rejected(gipt):
    with pytest.raises(SimulationError):
        gipt.insert(16, 1, make_pte())
    with pytest.raises(SimulationError):
        gipt.insert(-1, 1, make_pte())


class TestResidenceBits:
    def test_set_and_clear(self, gipt):
        gipt.insert(1, 10, make_pte())
        gipt.set_resident(1, 0)
        gipt.set_resident(1, 3)
        assert gipt.is_resident(1)
        gipt.clear_resident(1, 0)
        assert gipt.is_resident(1)  # core 3 still holds it
        gipt.clear_resident(1, 3)
        assert not gipt.is_resident(1)

    def test_eviction_of_resident_page_is_a_bug(self, gipt):
        gipt.insert(1, 10, make_pte())
        gipt.set_resident(1, 2)
        with pytest.raises(SimulationError):
            gipt.remove(1)

    def test_clear_on_absent_page_tolerated(self, gipt):
        gipt.clear_resident(9, 0)  # no exception: page already evicted

    def test_bad_core_rejected(self, gipt):
        gipt.insert(1, 10, make_pte())
        with pytest.raises(SimulationError):
            gipt.set_resident(1, 4)

    def test_set_resident_on_absent_page_is_a_bug(self, gipt):
        with pytest.raises(SimulationError):
            gipt.set_resident(9, 0)


class TestSizeModel:
    def test_entry_bits_match_paper(self):
        """Section 3.2: 36 PPN + 42 PTEP + 4 residence bits = 82 bits."""
        assert GlobalInvertedPageTable.entry_bits(num_cores=4) == 82

    def test_1gb_cache_gipt_is_2_56mb(self):
        """Section 3.2's headline number: 2.56 MB for a 1 GB cache."""
        assert gipt_storage_megabytes(1.0, num_cores=4) == pytest.approx(
            2.56, rel=0.02
        )

    def test_overhead_about_quarter_percent(self):
        """The paper quotes "<0.25% overhead"; 82 bits/entry works out to
        0.2502%, so the claim holds to rounding."""
        gipt = GlobalInvertedPageTable(capacity_pages=262144, num_cores=4)
        assert gipt.storage_overhead(2**30) == pytest.approx(0.0025, rel=0.01)


def test_stats(gipt):
    gipt.insert(1, 10, make_pte())
    gipt.set_resident(1, 0)
    stats = gipt.stats("g_")
    assert stats["g_inserts"] == 1.0
    assert stats["g_live_entries"] == 1.0
    assert stats["g_residence_updates"] == 1.0
