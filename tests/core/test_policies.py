"""Victim-selection policy tests (FIFO with TLB-skip, LRU)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SimulationError
from repro.core.policies import (
    FIFOVictimTracker,
    LRUVictimTracker,
    make_victim_tracker,
)


def never(_):
    return False


class TestFIFO:
    def test_selects_in_fill_order(self):
        t = FIFOVictimTracker()
        for ca in (3, 1, 2):
            t.on_fill(ca)
        assert t.select(never) == 3
        assert t.select(never) == 1

    def test_touch_is_ignored(self):
        t = FIFOVictimTracker()
        t.on_fill(1)
        t.on_fill(2)
        t.on_touch(1)
        assert t.select(never) == 1

    def test_protected_pages_skipped(self):
        t = FIFOVictimTracker()
        for ca in (1, 2, 3):
            t.on_fill(ca)
        assert t.select(lambda ca: ca == 1) == 2
        assert t.skips == 1

    def test_all_protected_returns_none(self):
        t = FIFOVictimTracker()
        t.on_fill(1)
        assert t.select(lambda ca: True) is None

    def test_lazy_deletion_of_evicted(self):
        t = FIFOVictimTracker()
        t.on_fill(1)
        t.on_fill(2)
        t.on_evicted(1)
        assert len(t) == 1
        assert t.select(never) == 2

    def test_refill_after_eviction(self):
        t = FIFOVictimTracker()
        t.on_fill(1)
        t.on_evicted(1)
        t.on_fill(1)
        assert t.select(never) == 1


class TestLRU:
    def test_selects_least_recent(self):
        t = LRUVictimTracker()
        for ca in (1, 2, 3):
            t.on_fill(ca)
        t.on_touch(1)
        assert t.select(never) == 2

    def test_protected_pages_skipped(self):
        t = LRUVictimTracker()
        for ca in (1, 2):
            t.on_fill(ca)
        assert t.select(lambda ca: ca == 1) == 2

    def test_all_protected_returns_none(self):
        t = LRUVictimTracker()
        t.on_fill(1)
        assert t.select(lambda ca: True) is None

    def test_evicted_disappears(self):
        t = LRUVictimTracker()
        t.on_fill(1)
        t.on_evicted(1)
        assert len(t) == 0
        assert t.select(never) is None


def test_factory():
    assert isinstance(make_victim_tracker("fifo"), FIFOVictimTracker)
    assert isinstance(make_victim_tracker("lru"), LRUVictimTracker)
    with pytest.raises(SimulationError):
        make_victim_tracker("optimal")


@settings(max_examples=50)
@given(st.lists(st.tuples(st.sampled_from(["fill", "touch", "evict"]),
                          st.integers(0, 9)), max_size=80),
       st.sampled_from(["fifo", "lru"]))
def test_tracker_never_selects_nonresident_or_protected(ops, policy):
    """Property: a selected victim is always a live, unprotected page,
    and select() removes it from the tracker."""
    tracker = make_victim_tracker(policy)
    live = set()
    for op, ca in ops:
        if op == "fill" and ca not in live:
            tracker.on_fill(ca)
            live.add(ca)
        elif op == "touch" and ca in live:
            tracker.on_touch(ca)
        elif op == "evict" and ca in live:
            tracker.on_evicted(ca)
            live.discard(ca)
    protected = {ca for ca in live if ca % 2 == 0}
    victim = tracker.select(lambda ca: ca in protected)
    if victim is not None:
        assert victim in live
        assert victim not in protected
        # A second select never returns the same page again.
        second = tracker.select(lambda ca: ca in protected)
        assert second != victim
    else:
        assert live <= protected
