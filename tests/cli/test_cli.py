"""Command-line interface tests."""

import json

import pytest

from repro.cli.main import build_parser, main
from repro.workloads.trace import load_trace


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_workloads_lists_catalogues(capsys):
    code, out = run_cli(capsys, "workloads")
    assert code == 0
    assert "mcf" in out
    assert "streamcluster" in out
    assert "MIX5: mcf-soplex-GemsFDTD-lbm" in out


def test_trace_generation_and_save(tmp_path, capsys):
    out_path = str(tmp_path / "trace.npz")
    code, out = run_cli(
        capsys, "trace", "sphinx3", "--accesses", "2000", "--out", out_path
    )
    assert code == 0
    assert "2000 accesses" in out
    trace = load_trace(out_path)
    assert len(trace) == 2000
    assert trace.name == "sphinx3"


def test_trace_unknown_workload(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "not-a-program"])


def test_run_single_program_json(capsys):
    code, out = run_cli(
        capsys, "run", "tagless", "sphinx3",
        "--accesses", "3000", "--json",
    )
    assert code == 0
    metrics = json.loads(out)
    assert metrics["design"] == "tagless"
    assert metrics["ipc"] > 0
    assert len(metrics["per_core_ipc"]) == 1


def test_run_mix_uses_four_cores(capsys):
    code, out = run_cli(
        capsys, "run", "no-l3", "MIX1", "--accesses", "1500", "--json",
    )
    metrics = json.loads(out)
    assert len(metrics["per_core_ipc"]) == 4


def test_run_human_readable(capsys):
    code, out = run_cli(
        capsys, "run", "sram", "sphinx3", "--accesses", "2000",
    )
    assert code == 0
    assert "mean_l3_latency_cycles" in out


def test_experiment_fig13_small(capsys):
    code, out = run_cli(
        capsys, "experiment", "fig13", "--accesses", "15000",
    )
    assert code == 0
    assert "Figure 13" in out


def test_parser_rejects_unknown_design():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "magic", "sphinx3"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
