"""Command-line interface tests."""

import json

import pytest

from repro.cli.main import build_parser, main
from repro.workloads.trace import load_trace


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_workloads_lists_catalogues(capsys):
    code, out = run_cli(capsys, "workloads")
    assert code == 0
    assert "mcf" in out
    assert "streamcluster" in out
    assert "MIX5: mcf-soplex-GemsFDTD-lbm" in out


def test_trace_generation_and_save(tmp_path, capsys):
    out_path = str(tmp_path / "trace.npz")
    code, out = run_cli(
        capsys, "trace", "sphinx3", "--accesses", "2000", "--out", out_path
    )
    assert code == 0
    assert "2000 accesses" in out
    trace = load_trace(out_path)
    assert len(trace) == 2000
    assert trace.name == "sphinx3"


def test_trace_unknown_workload(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "not-a-program"])


def test_run_single_program_json(capsys):
    code, out = run_cli(
        capsys, "run", "tagless", "sphinx3",
        "--accesses", "3000", "--json",
    )
    assert code == 0
    metrics = json.loads(out)
    assert metrics["design"] == "tagless"
    assert metrics["ipc"] > 0
    assert len(metrics["per_core_ipc"]) == 1


def test_run_mix_uses_four_cores(capsys):
    code, out = run_cli(
        capsys, "run", "no-l3", "MIX1", "--accesses", "1500", "--json",
    )
    metrics = json.loads(out)
    assert len(metrics["per_core_ipc"]) == 4


def test_run_human_readable(capsys):
    code, out = run_cli(
        capsys, "run", "sram", "sphinx3", "--accesses", "2000",
    )
    assert code == 0
    assert "mean_l3_latency_cycles" in out


def test_experiment_fig13_small(capsys):
    code, out = run_cli(
        capsys, "experiment", "fig13", "--accesses", "15000",
    )
    assert code == 0
    assert "Figure 13" in out


def test_parser_rejects_unknown_design():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "magic", "sphinx3"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_design_choices_cover_whole_registry():
    from repro.designs.registry import ALL_DESIGN_NAMES

    args = build_parser().parse_args(["run", "alloy", "sphinx3"])
    assert args.design == "alloy"
    assert "alloy" in ALL_DESIGN_NAMES


def test_run_warmup_flag_threads_through(capsys):
    code, out = run_cli(
        capsys, "run", "tagless", "sphinx3",
        "--accesses", "3000", "--warmup", "0.5", "--json",
    )
    assert code == 0
    metrics = json.loads(out)
    assert metrics["warmup_fraction"] == 0.5
    # A different warmup split measures a different trace slice.
    _, out0 = run_cli(
        capsys, "run", "tagless", "sphinx3",
        "--accesses", "3000", "--warmup", "0.0", "--json",
    )
    assert json.loads(out0)["ipc"] != metrics["ipc"]


def test_run_rejects_invalid_warmup(capsys):
    with pytest.raises(SystemExit):
        main(["run", "tagless", "sphinx3", "--warmup", "1.0"])


def test_experiment_json_output(tmp_path, capsys):
    code, out = run_cli(
        capsys, "experiment", "fig13", "--accesses", "15000", "--json",
        "--no-cache", "--artifact", str(tmp_path / "a.jsonl"),
    )
    assert code == 0
    data = json.loads(out)
    assert data["baseline_ipc"] > 0
    assert data["threshold"] == 32


def test_experiment_caches_between_invocations(tmp_path, capsys):
    from repro.harness import read_artifact

    argv = ["experiment", "fig13", "--accesses", "15000",
            "--cache-dir", str(tmp_path / "cache")]
    cold_code, cold_out = run_cli(
        capsys, *argv, "--artifact", str(tmp_path / "cold.jsonl")
    )
    warm_code, warm_out = run_cli(
        capsys, *argv, "--artifact", str(tmp_path / "warm.jsonl")
    )
    assert cold_code == warm_code == 0
    assert cold_out == warm_out  # byte-identical tables
    warm_summary = [
        r for r in read_artifact(str(tmp_path / "warm.jsonl"))
        if r["record"] == "summary"
    ][0]
    assert warm_summary["cache_hit_rate"] == 1.0


def test_sweep_writes_jsonl_artifact(tmp_path, capsys):
    from repro.harness import read_artifact

    out_path = str(tmp_path / "sweep.jsonl")
    code, out = run_cli(
        capsys, "sweep", "--designs", "no-l3", "tagless",
        "--workloads", "sphinx3", "--cache-sizes", "512", "1024",
        "--accesses", "2000", "--out", out_path, "--no-cache", "--json",
    )
    assert code == 0
    summary = json.loads(out)
    assert summary["jobs"] == 4
    assert summary["errors"] == 0
    jobs = [
        r for r in read_artifact(out_path) if r["record"] == "job"
    ]
    assert len(jobs) == 4
    assert {j["spec"]["cache_megabytes"] for j in jobs} == {512, 1024}
    assert all(j["metrics"]["ipc"] > 0 for j in jobs)


def test_sweep_rejects_unknown_workload(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--workloads", "not-a-program",
              "--out", str(tmp_path / "x.jsonl"), "--no-cache"])


def test_profile_json_report(capsys):
    code, out = run_cli(
        capsys, "profile", "--design", "tagless", "--workload", "sphinx3",
        "--accesses", "3000", "--top", "5", "--json",
    )
    assert code == 0
    report = json.loads(out)
    assert report["design"] == "tagless"
    assert report["accesses"] == 3000
    assert report["accesses_per_second"] > 0
    assert 1 <= len(report["top"]) <= 5
    # Cumulative ranking puts the simulation entry points first.
    functions = {row["function"] for row in report["top"]}
    assert "run" in functions or "access_cycles" in functions
    ranked = [row["cumtime_s"] for row in report["top"]]
    assert ranked == sorted(ranked, reverse=True)


def test_profile_text_report(capsys):
    code, out = run_cli(
        capsys, "profile", "--design", "no-l3", "--workload", "sphinx3",
        "--accesses", "2000", "--top", "3", "--sort", "tottime",
    )
    assert code == 0
    assert "no-l3 on sphinx3: 2000 accesses" in out
    assert "top 3 by tottime" in out


def test_profile_rejects_bad_top(capsys):
    with pytest.raises(SystemExit):
        main(["profile", "--top", "0"])


def test_check_smoke_single_design(capsys):
    code, out = run_cli(capsys, "check", "--smoke", "--design", "tagless")
    assert code == 0
    assert "[ok]   tagless" in out
    assert "[ok]   lru" in out
    assert "check: PASS" in out


def test_check_smoke_runs_bound_chain(capsys):
    code, out = run_cli(capsys, "check", "--smoke",
                        "--design", "tagless", "no-l3")
    assert code == 0
    assert "service_ratio[tagless] >= service_ratio[no-l3]" in out
    assert "check: PASS" in out


def test_check_rejects_negative_accesses():
    with pytest.raises(SystemExit):
        main(["check", "--design", "tagless", "--accesses", "-5"])


def test_check_rejects_unknown_design():
    with pytest.raises(SystemExit):
        main(["check", "--design", "not-a-design"])


def test_sweep_validate_flag_parses():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--designs", "tagless",
                              "--workloads", "sphinx3", "--validate"])
    assert args.validate is True


def test_trace_capture_mode_writes_artifacts(tmp_path, capsys):
    trace_path = str(tmp_path / "t.perfetto.json")
    series_path = str(tmp_path / "t.timeseries.jsonl")
    code, out = run_cli(
        capsys, "trace", "tagless", "sphinx3", "--accesses", "3000",
        "--interval", "256",
        "--trace-out", trace_path, "--timeseries-out", series_path,
    )
    assert code == 0
    assert "windows" in out
    document = json.loads(open(trace_path).read())
    assert document["traceEvents"]
    from repro.obs import load_timeseries

    meta, columns, _hist = load_timeseries(series_path)
    assert meta["design"] == "tagless"
    assert columns["free_queue_depth"]


def test_trace_capture_requires_workload():
    with pytest.raises(SystemExit):
        main(["trace", "tagless"])


def test_trace_smoke_single_design(capsys):
    code, out = run_cli(capsys, "trace", "tagless", "--smoke",
                        "--accesses", "1500")
    assert code == 0
    assert "[ok]   tagless" in out
    assert "trace smoke: PASS" in out


def test_report_renders_captured_artifact(tmp_path, capsys):
    series_path = str(tmp_path / "t.timeseries.jsonl")
    run_cli(capsys, "trace", "no-l3", "sphinx3", "--accesses", "2500",
            "--interval", "256",
            "--trace-out", str(tmp_path / "t.perfetto.json"),
            "--timeseries-out", series_path)
    code, out = run_cli(capsys, "report", series_path, "--width", "20")
    assert code == 0
    assert "no-l3 on sphinx3" in out
    assert "ctlb_hit_rate" in out


def test_report_rejects_non_artifact(tmp_path):
    bad = tmp_path / "nope.jsonl"
    bad.write_text('{"record": "header"}\n')
    with pytest.raises(SystemExit):
        main(["report", str(bad)])


def test_run_trace_flags_add_artifact_keys(tmp_path, capsys):
    trace_path = str(tmp_path / "r.perfetto.json")
    series_path = str(tmp_path / "r.timeseries.jsonl")
    code, out = run_cli(
        capsys, "run", "tagless", "sphinx3", "--accesses", "3000",
        "--json", "--trace", trace_path, "--timeseries", series_path,
    )
    assert code == 0
    metrics = json.loads(out)
    assert metrics["trace"] == trace_path
    assert metrics["timeseries"] == series_path
    assert json.loads(open(trace_path).read())["traceEvents"]


def test_run_without_trace_flags_keeps_plain_keys(capsys):
    code, out = run_cli(capsys, "run", "tagless", "sphinx3",
                        "--accesses", "2000", "--json")
    metrics = json.loads(out)
    assert "trace" not in metrics and "timeseries" not in metrics


def test_run_telemetry_does_not_change_metrics(tmp_path, capsys):
    argv = ["run", "tagless", "sphinx3", "--accesses", "3000", "--json"]
    _, plain = run_cli(capsys, *argv)
    _, traced = run_cli(
        capsys, *argv, "--trace", str(tmp_path / "x.perfetto.json"),
    )
    plain_metrics = json.loads(plain)
    traced_metrics = json.loads(traced)
    traced_metrics.pop("trace")
    assert traced_metrics == plain_metrics


def test_sweep_timeseries_flag_writes_progress_artifact(tmp_path, capsys):
    series_path = str(tmp_path / "progress.jsonl")
    code, _ = run_cli(
        capsys, "sweep", "--designs", "no-l3", "--workloads", "sphinx3",
        "--accesses", "1500", "--out", str(tmp_path / "s.jsonl"),
        "--no-cache", "--timeseries", series_path,
    )
    assert code == 0
    from repro.obs import load_timeseries

    meta, columns, _hist = load_timeseries(series_path)
    assert meta["design"] == "harness"
    assert columns["jobs_done"] == [1.0]


def test_profile_json_reports_sampling_metadata(capsys):
    from repro.common import rng

    code, out = run_cli(
        capsys, "profile", "--design", "no-l3", "--workload", "sphinx3",
        "--accesses", "2000", "--top", "3", "--json",
    )
    assert code == 0
    report = json.loads(out)
    assert report["seed"] == rng.BASE_SEED
    assert report["accesses"] == 2000
    assert report["design"] == "no-l3"
    assert report["replacement"] == "fifo"
