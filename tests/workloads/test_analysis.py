"""Trace characterisation tests."""

import numpy as np
import pytest

from repro.workloads.analysis import (
    TraceCharacter,
    character_table,
    characterize,
    reuse_histogram,
    working_set_curve,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile
from repro.workloads.trace import AccessTrace


def make_trace(pages, lines=None):
    n = len(pages)
    return AccessTrace(
        name="t",
        virtual_pages=np.array(pages, dtype=np.int64),
        lines=np.array(lines if lines is not None else list(range(n)),
                       dtype=np.int16) % 64,
        writes=np.zeros(n, dtype=bool),
        instruction_gaps=np.full(n, 10, dtype=np.int64),
    )


def test_basic_counts():
    c = characterize(make_trace([1, 1, 1, 2]), singleton_threshold=2)
    assert c.footprint_pages == 2
    assert c.mean_accesses_per_page == pytest.approx(2.0)
    assert c.singleton_page_fraction == pytest.approx(0.5)  # page 2
    assert c.singleton_access_fraction == pytest.approx(0.25)


def test_hot_share():
    # One page takes 90 of 100 accesses.
    pages = [7] * 90 + list(range(10))
    c = characterize(make_trace(pages))
    assert c.hot10pct_access_share >= 0.9


def test_sequential_detection():
    seq = make_trace([1] * 16, lines=list(range(16)))
    c = characterize(seq)
    assert c.sequential_step_fraction == pytest.approx(1.0)
    rand = make_trace([1] * 16, lines=[0, 17, 3, 40, 9, 22, 50, 1,
                                       30, 12, 60, 5, 44, 2, 55, 8])
    assert characterize(rand).sequential_step_fraction < 0.2


def test_page_transition_rate():
    c = characterize(make_trace([1, 1, 2, 2]))
    assert c.page_transition_rate == pytest.approx(1 / 3)


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        characterize(make_trace([]))


def test_reuse_histogram_buckets():
    hist = reuse_histogram(make_trace([1] * 5 + [2]), buckets=(1, 4))
    assert hist["1-1"] == 1      # page 2
    assert hist["2-4"] == 0
    assert hist[">4"] == 1       # page 1 (5 accesses)


def test_working_set_curve_monotone():
    trace = TraceGenerator(
        spec_profile("milc"), capacity_scale=128
    ).generate(5000)
    curve = working_set_curve(trace, num_points=5)
    sizes = [touched for __, touched in curve]
    assert sizes == sorted(sizes)
    assert sizes[-1] == trace.footprint_pages


def test_generator_matches_profile_character():
    """The calibration loop in one test: a generated GemsFDTD trace
    must exhibit the character its profile encodes."""
    profile = spec_profile("GemsFDTD")
    trace = TraceGenerator(profile, capacity_scale=64).generate(40_000)
    c = characterize(trace)
    assert c.apki == pytest.approx(profile.apki, rel=0.15)
    assert c.write_fraction == pytest.approx(profile.write_fraction,
                                             abs=0.05)
    assert c.singleton_page_fraction > 0.1  # the low-reuse pages exist
    assert c.hot10pct_access_share > 0.2    # and so does a hot set


def test_character_table_renders():
    c = characterize(make_trace([1, 2, 3]))
    table = character_table([c])
    assert "workload" in table
    assert "t" in table


def test_character_is_frozen():
    c = characterize(make_trace([1]))
    assert isinstance(c, TraceCharacter)
    with pytest.raises(Exception):
        c.accesses = 5
