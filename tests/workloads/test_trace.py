"""AccessTrace container tests."""

import numpy as np
import pytest

from repro.common.errors import TraceError
from repro.workloads.trace import AccessTrace, concatenate_traces


def make(pages, lines=None, writes=None, gaps=None):
    n = len(pages)
    return AccessTrace(
        name="t",
        virtual_pages=np.array(pages, dtype=np.int64),
        lines=np.array(lines if lines is not None else [0] * n,
                       dtype=np.int16),
        writes=np.array(writes if writes is not None else [False] * n),
        instruction_gaps=np.array(gaps if gaps is not None else [10] * n,
                                  dtype=np.int64),
    )


def test_length_and_instructions():
    trace = make([1, 2, 3])
    assert len(trace) == 3
    assert trace.total_instructions == 33  # 3 gaps of 10 + 3 memory ops


def test_footprint():
    assert make([1, 1, 2, 5]).footprint_pages == 3


def test_apki():
    trace = make([1, 2])
    assert trace.accesses_per_kilo_instruction == pytest.approx(
        1000 * 2 / 22
    )


def test_write_fraction():
    trace = make([1, 2], writes=[True, False])
    assert trace.write_fraction() == pytest.approx(0.5)


def test_page_access_counts():
    counts = make([1, 1, 2]).page_access_counts()
    assert counts == {1: 2, 2: 1}


def test_mismatched_arrays_rejected():
    with pytest.raises(TraceError):
        AccessTrace(
            name="bad",
            virtual_pages=np.array([1, 2]),
            lines=np.array([0], dtype=np.int16),
            writes=np.array([False, False]),
            instruction_gaps=np.array([1, 1]),
        )


def test_line_range_validated():
    with pytest.raises(TraceError):
        make([1], lines=[64])


def test_negative_values_rejected():
    with pytest.raises(TraceError):
        make([-1])
    with pytest.raises(TraceError):
        make([1], gaps=[-5])


def test_head_and_slice():
    trace = make([1, 2, 3, 4])
    assert len(trace.head(2)) == 2
    sliced = trace.slice(1, 3)
    assert list(sliced.virtual_pages) == [2, 3]
    assert sliced.base_cpi == trace.base_cpi


def test_as_lists_round_trip():
    trace = make([1, 2], writes=[True, False])
    pages, lines, writes, gaps = trace.as_lists()
    assert pages == [1, 2]
    assert writes == [True, False]
    assert isinstance(pages, list)


def test_concatenate():
    joined = concatenate_traces("j", [make([1, 2]), make([3])])
    assert len(joined) == 3
    assert list(joined.virtual_pages) == [1, 2, 3]


def test_concatenate_empty_rejected():
    with pytest.raises(TraceError):
        concatenate_traces("j", [])


def test_empty_trace_properties():
    trace = make([])
    assert trace.footprint_pages == 0
    assert trace.accesses_per_kilo_instruction == 0.0
    assert trace.write_fraction() == 0.0
