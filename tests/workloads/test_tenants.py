"""Tenant scenario spec validation and schedule determinism.

The determinism property is the load-bearing one: a schedule must be
bit-identical for a fixed seed (campaign cache keys and repetition
statistics rely on it) and must re-roll completely when the seed, the
scenario name, or any tenant-level component changes.
"""

import dataclasses
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.tenants import (
    TenantScenarioSpec,
    build_schedule,
)


def scenario(**overrides):
    base = dict(
        name="unit",
        tenants=6,
        profiles=("mcf", "sphinx3"),
        tenant_accesses=400,
        quantum=100,
        capacity_scale=256,
        seed=7,
    )
    base.update(overrides)
    return TenantScenarioSpec(**base)


class TestSpecValidation:
    def test_rejects_unknown_profile(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            scenario(profiles=("mcf", "nosuch"))

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            scenario(tenants=0)
        with pytest.raises(ConfigurationError):
            scenario(quantum=0)
        with pytest.raises(ConfigurationError):
            scenario(capacity_scale=0)
        with pytest.raises(ConfigurationError):
            scenario(arrival_rate=0.0)

    def test_resize_events_normalised_and_sorted(self):
        spec = scenario(resize=[[500, 1.0], [100, 0.5]])
        assert spec.resize == ((100, 0.5), (500, 1.0))
        with pytest.raises(ConfigurationError, match="at_access"):
            scenario(resize=[[0, 0.5]])
        with pytest.raises(ConfigurationError, match="positive"):
            scenario(resize=[[100, 0.0]])

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            TenantScenarioSpec.from_dict({"name": "x", "tenants": 1,
                                          "quantums": 5})

    def test_round_trips_through_dict(self):
        spec = scenario(resize=[[100, 0.5]])
        assert TenantScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            TenantScenarioSpec.from_file(str(path))

    def test_spec_hash_tracks_content(self, tmp_path):
        spec = scenario()
        assert spec.spec_hash() == scenario().spec_hash()
        assert spec.spec_hash() != scenario(quantum=101).spec_hash()
        # File identity is content identity: rewriting the same JSON in
        # a different key order does not change the hash.
        path = tmp_path / "s.json"
        path.write_text(json.dumps(spec.to_dict()))
        shuffled = dict(reversed(list(spec.to_dict().items())))
        assert (TenantScenarioSpec.from_file(str(path)).spec_hash()
                == TenantScenarioSpec.from_dict(shuffled).spec_hash())


class TestScheduleDeterminism:
    def test_fixed_seed_is_bit_identical(self):
        first = build_schedule(scenario(), num_cores=2)
        second = build_schedule(scenario(), num_cores=2)
        assert first.digest() == second.digest()

    @pytest.mark.parametrize("mutation", [
        dict(seed=8),
        dict(name="unit2"),
        dict(tenants=7),
        dict(tenant_accesses=401),
        dict(quantum=101),
        dict(capacity_scale=255),
        dict(footprint_zipf=0.9),
        dict(arrival_rate=0.2),
        dict(profiles=("mcf", "milc")),
    ])
    def test_any_tenant_level_component_rerolls(self, mutation):
        base = build_schedule(scenario(), num_cores=2).digest()
        mutated = build_schedule(scenario(**mutation), num_cores=2).digest()
        assert mutated != base, f"digest blind to {mutation}"

    def test_base_seed_applies_only_without_explicit_seed(self):
        floating = scenario(seed=None)
        a = build_schedule(floating, num_cores=2, base_seed=1)
        b = build_schedule(floating, num_cores=2, base_seed=2)
        assert a.digest() != b.digest()
        pinned = scenario(seed=7)
        c = build_schedule(pinned, num_cores=2, base_seed=1)
        d = build_schedule(pinned, num_cores=2, base_seed=2)
        assert c.digest() == d.digest()


class TestScheduleStructure:
    def test_demands_fully_scheduled(self):
        schedule = build_schedule(scenario(), num_cores=2)
        assert schedule.total_accesses == sum(
            info.demand_accesses for info in schedule.tenants
        )
        assert all(len(segment.trace) <= scenario().quantum
                   for segments in schedule.per_core
                   for segment in segments)

    def test_vpn_windows_are_private(self):
        """Two time-shared tenants must never alias virtual pages: the
        modelled TLBs have no ASIDs, so window overlap would leak
        translations across context switches."""
        schedule = build_schedule(scenario(), num_cores=2)
        windows = sorted(
            (info.vpn_base, info.vpn_base + info.vpn_span)
            for info in schedule.tenants
        )
        for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
            assert next_start >= prev_end
        by_tenant = {info.tenant_id: info for info in schedule.tenants}
        for segments in schedule.per_core:
            for segment in segments:
                info = by_tenant[segment.tenant_id]
                pages, _, _, _ = segment.trace.as_lists()
                assert all(
                    info.vpn_base <= p < info.vpn_base + info.vpn_span
                    for p in pages
                )

    def test_process_ids_are_distinct(self):
        schedule = build_schedule(scenario(), num_cores=2)
        pids = [info.process_id for info in schedule.tenants]
        assert len(set(pids)) == len(pids)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError, match="at least one core"):
            build_schedule(scenario(), num_cores=0)
