"""Table 5 mix generation: argument validation regression tests."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import MIX_ORDER, MIXES, mix_programs, mix_traces
from repro.workloads.spec import spec_profile


def test_every_mix_has_four_programs():
    assert set(MIX_ORDER) == set(MIXES)
    for name in MIX_ORDER:
        assert len(mix_programs(name)) == 4


def test_unknown_mix_rejected():
    with pytest.raises(ConfigurationError, match="unknown mix"):
        mix_programs("MIX9")


def test_capacity_scale_validated_before_generation():
    """Regression: a zero/negative scale used to reach the footprint
    arithmetic and fail with a bare numpy error deep in the generator."""
    with pytest.raises(ConfigurationError, match="capacity_scale"):
        mix_traces("MIX1", accesses_per_program=100, capacity_scale=0)
    with pytest.raises(ConfigurationError, match="capacity_scale"):
        TraceGenerator(spec_profile("mcf"), capacity_scale=-1)


def test_default_accesses_per_program():
    """Regression: ``accesses_per_program=None`` (the annotated default)
    must fall through to each profile's own default length."""
    traces = mix_traces("MIX1", accesses_per_program=None,
                        capacity_scale=4096)
    assert len(traces) == 4
    for trace, program in zip(traces, mix_programs("MIX1")):
        assert trace.name == program
        assert len(trace) == spec_profile(program).default_accesses


def test_private_address_spaces_are_seeded_per_slot():
    """The four slots must not share RNG streams even when a program
    repeats across mixes."""
    a, b = mix_traces("MIX1", accesses_per_program=200, capacity_scale=512)[:2]
    assert a.virtual_pages.tolist() != b.virtual_pages.tolist()
