"""ColumnarTrace: replay-equivalent to AccessTrace, zero-copy slicing.

The columnar representation must be indistinguishable from the object
trace everywhere replay can look: ``as_lists`` values and types,
``page_access_counts`` content *and iteration order* (NC classification
iterates it), derived properties, and the flat-buffer round trip the
shared-memory arena depends on.
"""

import numpy as np
import pytest

from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile
from repro.workloads.trace import AccessTrace, ColumnarTrace, TraceError


@pytest.fixture(scope="module")
def object_trace():
    generator = TraceGenerator(spec_profile("mcf"), capacity_scale=64)
    return generator.generate(4_000)


@pytest.fixture()
def columnar(object_trace):
    return ColumnarTrace.from_trace(object_trace)


def test_as_lists_matches_object_trace(object_trace, columnar):
    assert columnar.as_lists() == object_trace.as_lists()
    # Same Python types too: replay arithmetic is type-sensitive.
    pages, lines, writes, gaps = columnar.as_lists()
    assert all(type(p) is int for p in pages[:16])
    assert all(type(w) is bool for w in writes[:16])


def test_page_access_counts_content_and_order(object_trace, columnar):
    ours = columnar.page_access_counts()
    theirs = object_trace.page_access_counts()
    assert ours == theirs
    assert list(ours) == list(theirs)  # iteration order is part of the API


def test_derived_properties(object_trace, columnar):
    assert len(columnar) == len(object_trace)
    assert columnar.total_instructions == object_trace.total_instructions
    assert columnar.footprint_pages == object_trace.footprint_pages
    assert (columnar.accesses_per_kilo_instruction
            == object_trace.accesses_per_kilo_instruction)
    assert columnar.write_fraction() == object_trace.write_fraction()
    assert columnar.nbytes == 18 * len(object_trace)


def test_to_trace_round_trip(object_trace, columnar):
    back = columnar.to_trace()
    assert np.array_equal(back.virtual_pages, object_trace.virtual_pages)
    assert np.array_equal(back.lines, object_trace.lines)
    assert np.array_equal(back.writes, object_trace.writes)
    assert np.array_equal(back.instruction_gaps,
                          object_trace.instruction_gaps)
    assert back.base_cpi == object_trace.base_cpi
    assert back.mlp == object_trace.mlp


def test_flat_buffer_round_trip(columnar):
    buffer = bytearray(ColumnarTrace.buffer_nbytes(len(columnar)))
    written = columnar.pack_into(buffer)
    assert written == len(buffer)
    attached = ColumnarTrace.from_buffer(
        columnar.name, len(columnar), buffer,
        base_cpi=columnar.base_cpi, mlp=columnar.mlp, owner=buffer,
    )
    assert attached.as_lists() == columnar.as_lists()
    assert attached.page_access_counts() == columnar.page_access_counts()


def test_from_buffer_rejects_short_buffer(columnar):
    with pytest.raises(TraceError):
        ColumnarTrace.from_buffer("short", len(columnar), bytearray(17))


def test_slice_is_window_and_shares_list_cache(columnar):
    parent_lists = columnar.as_lists()
    child = columnar.slice(100, 300)
    assert len(child) == 200
    # The child's lists were seeded from the parent's cache, not
    # re-materialized from the columns.
    assert child._lists is not None
    assert child._lists == tuple(part[100:300] for part in parent_lists)
    assert child.as_lists() == tuple(part[100:300] for part in parent_lists)


def test_head_equals_slice(columnar):
    assert columnar.head(50).as_lists() == columnar.slice(0, 50).as_lists()


def test_object_slice_seeded_from_materialized_parent(object_trace):
    """Regression for the warmup-split path: once a parent's list cache
    is materialized, ``AccessTrace.slice`` children inherit shared
    slices of it instead of re-converting the numpy columns."""
    parent_lists = object_trace.as_lists()
    split = len(object_trace) // 4
    warm = object_trace.slice(0, split)
    measured = object_trace.slice(split, len(object_trace))
    assert warm._lists is not None and measured._lists is not None
    assert warm.as_lists() == tuple(p[:split] for p in parent_lists)
    assert measured.as_lists() == tuple(p[split:] for p in parent_lists)
    # Shared, not copied: the seeded slices are views over the same
    # objects the parent cached (ints are interned/shared; identity on
    # the first element proves no per-element reconversion happened).
    assert warm.as_lists()[0][0] is parent_lists[0][0]


def test_columnar_replay_bit_identical(object_trace, columnar):
    """Full simulation over ColumnarTrace bindings equals AccessTrace."""
    from repro.common.config import default_system
    from repro.cpu.multicore import BoundTrace
    from repro.cpu.simulator import Simulator

    simulator = Simulator(default_system(cache_megabytes=256, num_cores=1,
                                         capacity_scale=64))
    via_object = simulator.run(
        "tagless", [BoundTrace(0, 0, object_trace)], engine="batched")
    via_columnar = simulator.run(
        "tagless", [BoundTrace(0, 0, columnar)], engine="batched")
    assert via_object.stats == via_columnar.stats
    assert via_object.energy == via_columnar.energy
    assert ([(c.instructions, c.cycles, c.stall_cycles)
             for c in via_object.cores]
            == [(c.instructions, c.cycles, c.stall_cycles)
                for c in via_columnar.cores])
