"""SPEC/PARSEC profile catalogues and the Table 5 mixes."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.mixes import MIXES, MIX_ORDER, mix_programs, mix_traces
from repro.workloads.parsec import (
    PARSEC_ORDER,
    PARSEC_PROFILES,
    parsec_profile,
    parsec_thread_traces,
)
from repro.workloads.profile import WorkloadProfile
from repro.workloads.spec import SPEC_ORDER, SPEC_PROFILES, spec_profile


class TestSpecCatalogue:
    def test_eleven_programs(self):
        """Section 4: the 11 most memory-bound SPEC 2006 programs."""
        assert len(SPEC_PROFILES) == 11

    def test_order_covers_all(self):
        assert set(SPEC_ORDER) == set(SPEC_PROFILES)

    def test_lookup(self):
        assert spec_profile("mcf").name == "mcf"
        with pytest.raises(ConfigurationError):
            spec_profile("gcc")

    def test_every_profile_is_memory_bound(self):
        for profile in SPEC_PROFILES.values():
            assert profile.apki >= 20, profile.name

    def test_characters(self):
        assert not spec_profile("mcf").sequential_lines  # pointer chasing
        assert spec_profile("libquantum").stream_fraction > 0.8
        assert spec_profile("lbm").write_fraction > 0.4
        assert (spec_profile("GemsFDTD").cold_fraction
                > spec_profile("sphinx3").cold_fraction)


class TestParsecCatalogue:
    def test_four_programs(self):
        assert len(PARSEC_PROFILES) == 4
        assert set(PARSEC_ORDER) == set(PARSEC_PROFILES)

    def test_paper_characterisation(self):
        """Section 5.3: streamcluster/facesim reuse+MPKI high;
        swaptions/fluidanimate singleton-heavy with low MPKI."""
        assert parsec_profile("streamcluster").apki > 20
        assert parsec_profile("swaptions").apki < 5
        assert (parsec_profile("swaptions").cold_fraction
                > parsec_profile("streamcluster").cold_fraction)

    def test_thread_traces(self):
        traces = parsec_thread_traces("swaptions", num_threads=4,
                                      accesses_per_thread=1000)
        assert len(traces) == 4
        assert all(len(t) == 1000 for t in traces)

    def test_unknown_program(self):
        with pytest.raises(ConfigurationError):
            parsec_profile("blackscholes")


class TestMixes:
    def test_table5_verbatim(self):
        assert MIXES["MIX1"] == ("milc", "leslie3d", "omnetpp", "sphinx3")
        assert MIXES["MIX5"] == ("mcf", "soplex", "GemsFDTD", "lbm")
        assert MIXES["MIX8"] == ("mcf", "leslie3d", "GemsFDTD", "omnetpp")

    def test_eight_mixes_of_four(self):
        assert len(MIXES) == 8
        for programs in MIXES.values():
            assert len(programs) == 4
            for program in programs:
                assert program in SPEC_PROFILES

    def test_mix_order(self):
        assert MIX_ORDER == tuple(f"MIX{i}" for i in range(1, 9))

    def test_mix_traces(self):
        traces = mix_traces("MIX1", accesses_per_program=500)
        assert len(traces) == 4
        assert [t.name for t in traces] == list(MIXES["MIX1"])

    def test_same_program_different_slots_differ(self):
        """mcf appears in several mixes; each slot gets its own slice."""
        mix5 = mix_traces("MIX5", accesses_per_program=2000)[0]
        mix6 = mix_traces("MIX6", accesses_per_program=2000)[0]
        assert mix5.name == mix6.name == "mcf"
        assert (mix5.virtual_pages != mix6.virtual_pages).any()

    def test_unknown_mix(self):
        with pytest.raises(ConfigurationError):
            mix_programs("MIX9")


class TestProfileValidation:
    def test_shares_must_fit(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", footprint_mb=10, apki=10,
                            hot_access_fraction=0.6, stream_fraction=0.3,
                            cold_fraction=0.2)

    def test_positive_parameters(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", footprint_mb=0, apki=10)

    def test_footprint_scaling(self):
        profile = WorkloadProfile(name="x", footprint_mb=64.0, apki=10)
        assert profile.footprint_pages(1) == 16384
        assert profile.footprint_pages(64) == 256

    def test_uniform_share_is_remainder(self):
        profile = WorkloadProfile(
            name="x", footprint_mb=10, apki=10,
            hot_access_fraction=0.5, stream_fraction=0.2, cold_fraction=0.1,
        )
        assert profile.uniform_access_fraction == pytest.approx(0.2)

    def test_scaled_override(self):
        profile = spec_profile("mcf").scaled(apki=99.0)
        assert profile.apki == 99.0
        assert profile.name == "mcf"
