"""Trace generator tests: determinism and statistical fidelity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.workloads.generator import TraceGenerator
from repro.workloads.profile import WorkloadProfile


def make_profile(**overrides):
    base = dict(
        name="synthetic",
        footprint_mb=8.0,
        apki=25.0,
        hot_page_fraction=0.2,
        hot_access_fraction=0.5,
        zipf_alpha=0.9,
        stream_fraction=0.25,
        cold_fraction=0.05,
        burst_length=4.0,
        write_fraction=0.3,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


def test_deterministic():
    gen_a = TraceGenerator(make_profile(), capacity_scale=64)
    gen_b = TraceGenerator(make_profile(), capacity_scale=64)
    a, b = gen_a.generate(5000), gen_b.generate(5000)
    assert (a.virtual_pages == b.virtual_pages).all()
    assert (a.lines == b.lines).all()
    assert (a.writes == b.writes).all()


def test_seed_tag_changes_trace():
    a = TraceGenerator(make_profile(), seed_tag="a").generate(5000)
    b = TraceGenerator(make_profile(), seed_tag="b").generate(5000)
    assert (a.virtual_pages != b.virtual_pages).any()


def test_requested_length():
    trace = TraceGenerator(make_profile()).generate(3000)
    assert len(trace) == 3000


def test_write_fraction_close_to_profile():
    trace = TraceGenerator(make_profile(write_fraction=0.3)).generate(20000)
    assert trace.write_fraction() == pytest.approx(0.3, abs=0.03)


def test_apki_close_to_profile():
    trace = TraceGenerator(make_profile(apki=25.0)).generate(20000)
    assert trace.accesses_per_kilo_instruction == pytest.approx(25.0,
                                                                rel=0.15)


def test_footprint_bounded():
    profile = make_profile()
    gen = TraceGenerator(profile, capacity_scale=64)
    trace = gen.generate(20000)
    resident = profile.footprint_pages(64)
    # Touched pages: the resident footprint plus the bounded cold region.
    assert trace.footprint_pages <= resident * 3 + 64
    assert trace.footprint_pages > resident // 2


def test_hot_pages_dominate_accesses():
    trace = TraceGenerator(
        make_profile(hot_access_fraction=0.7, stream_fraction=0.1,
                     cold_fraction=0.05)
    ).generate(20000)
    pages, counts = np.unique(trace.virtual_pages, return_counts=True)
    top_share = np.sort(counts)[::-1][:50].sum() / counts.sum()
    assert top_share > 0.4  # a skewed hot set exists


def test_cold_pages_rarely_reused():
    # Footprint large enough that the bounded cold region does not wrap.
    profile = make_profile(cold_fraction=0.05, footprint_mb=64.0)
    gen = TraceGenerator(profile, capacity_scale=64)
    trace = gen.generate(20000)
    resident = profile.footprint_pages(64)
    counts = trace.page_access_counts()
    cold_counts = [c for p, c in counts.items() if p >= resident]
    assert cold_counts, "cold pages must exist"
    assert np.mean(cold_counts) < 6  # near-singleton


def test_sequential_lines_walk_the_page():
    trace = TraceGenerator(
        make_profile(stream_fraction=0.9, hot_access_fraction=0.05,
                     cold_fraction=0.0, burst_length=16.0)
    ).generate(5000)
    deltas = np.diff(trace.lines.astype(int)) % 64
    # Mostly +1 steps within bursts.
    assert (deltas == 1).mean() > 0.5


def test_random_lines_when_not_sequential():
    trace = TraceGenerator(
        make_profile(sequential_lines=False)
    ).generate(5000)
    deltas = np.diff(trace.lines.astype(int)) % 64
    assert (deltas == 1).mean() < 0.2


def test_threads_share_hot_set_but_split_streams():
    profile = make_profile(stream_fraction=0.5, hot_access_fraction=0.3)
    gen = TraceGenerator(profile, capacity_scale=64)
    t0 = gen.generate(8000, thread_id=0, num_threads=4)
    t1 = gen.generate(8000, thread_id=1, num_threads=4)
    hot = profile.footprint_pages(64) * profile.hot_page_fraction
    shared = set(t0.virtual_pages.tolist()) & set(t1.virtual_pages.tolist())
    assert shared, "threads must share hot pages"
    assert any(p < hot for p in shared)


def test_invalid_requests_rejected():
    gen = TraceGenerator(make_profile())
    with pytest.raises(ConfigurationError):
        gen.generate(-1)
    with pytest.raises(ConfigurationError):
        gen.generate(100, thread_id=4, num_threads=4)


def test_zero_length_trace_is_legal_and_empty():
    gen = TraceGenerator(make_profile())
    trace = gen.generate(0)
    assert len(trace) == 0
    assert trace.virtual_pages.dtype == np.int64
    # The degenerate case must not perturb positive-length streams.
    assert np.array_equal(
        gen.generate(100).virtual_pages,
        TraceGenerator(make_profile()).generate(100).virtual_pages,
    )


@settings(max_examples=15, deadline=None)
@given(
    hot=st.floats(0.0, 0.6),
    stream=st.floats(0.0, 0.39),
    cold=st.floats(0.0, 0.3),
    burst=st.floats(1.0, 32.0),
)
def test_generator_robust_over_parameter_space(hot, stream, cold, burst):
    """Any legal profile yields a valid trace of the requested length."""
    from hypothesis import assume

    assume(hot + stream + cold <= 1.0)
    profile = make_profile(
        hot_access_fraction=hot, stream_fraction=stream,
        cold_fraction=cold, burst_length=burst,
    )
    trace = TraceGenerator(profile, capacity_scale=128).generate(2000)
    assert len(trace) == 2000
    assert trace.lines.min() >= 0 and trace.lines.max() < 64
    assert trace.virtual_pages.min() >= 0
