"""Reference-model differential tests, including mutation kills."""

import pytest

from repro.sram.set_assoc import SetAssociativeCache
from repro.validate.invariants import InvariantViolation
from repro.validate.reference import (
    REFERENCE_POLICIES,
    ReferenceSetAssociativeCache,
    _compare_state,
    run_reference_differential,
)


@pytest.mark.parametrize("policy", REFERENCE_POLICIES)
def test_optimized_matches_reference(policy):
    counts = run_reference_differential(policy, operations=5_000)
    assert counts["policy"] == policy
    assert counts["operations"] == 5_000
    # The op mix must actually exercise every path.
    for op in ("lookup", "insert", "invalidate", "mark_dirty"):
        assert counts[op] > 0


@pytest.mark.parametrize("policy", REFERENCE_POLICIES)
def test_differential_is_seed_deterministic(policy):
    a = run_reference_differential(policy, operations=2_000, seed=3)
    b = run_reference_differential(policy, operations=2_000, seed=3)
    assert a == b


def test_random_policy_is_excluded():
    with pytest.raises(ValueError):
        ReferenceSetAssociativeCache(4, 8, policy="random")


def test_catches_preexisting_divergence():
    # A fast structure that already holds a line the reference has never
    # seen.  The key sits outside the differential's key space, so the
    # trace cannot re-insert it and silently heal the divergence: the
    # first state sweep (or an eviction mismatch) must flag it.
    fast = SetAssociativeCache(4, 8, policy="lru")
    fast.insert(64)
    with pytest.raises(InvariantViolation):
        run_reference_differential("lru", operations=500,
                                   state_check_every=16, fast=fast)


@pytest.mark.parametrize("policy", ["lru", "fifo"])
def test_catches_corrupted_recency_order(policy):
    """Same residents, wrong victim order -- the classic fused-dict bug."""
    fast = SetAssociativeCache(4, 8, policy=policy)
    reference = ReferenceSetAssociativeCache(4, 8, policy=policy)
    for key in (0, 4, 8):  # all land in set 0
        fast.insert(key)
        reference.insert(key, False)
    _compare_state(fast, reference, 0)  # in sync before the corruption
    cache_set = fast._sets[0]
    reversed_entries = dict(reversed(list(cache_set.entries.items())))
    cache_set.entries.clear()
    cache_set.entries.update(reversed_entries)
    with pytest.raises(InvariantViolation, match="order diverged"):
        _compare_state(fast, reference, 1)


def test_catches_corrupted_clock_ref_bit():
    fast = SetAssociativeCache(4, 8, policy="clock")
    reference = ReferenceSetAssociativeCache(4, 8, policy="clock")
    for key in (0, 4):
        fast.insert(key)
        reference.insert(key, False)
    _compare_state(fast, reference, 0)
    fast._sets[0].policy._referenced[0] = True  # spurious reference bit
    with pytest.raises(InvariantViolation, match="ref bits diverged"):
        _compare_state(fast, reference, 1)


def test_catches_corrupted_dirty_bit():
    fast = SetAssociativeCache(4, 8, policy="lru")
    reference = ReferenceSetAssociativeCache(4, 8, policy="lru")
    fast.insert(0)
    reference.insert(0, False)
    fast.mark_dirty(0)  # reference not told
    with pytest.raises(InvariantViolation, match="dirty bits diverged"):
        _compare_state(fast, reference, 1)
