"""Invariant-checker tests: env gating, sweep plumbing, mutation kills.

The mutation tests are the teeth of the subsystem: they corrupt a live
design the way a real hot-path bug would (leak a resident page into the
free pool, dangle a cTLB translation) and assert the checker notices.
A checker that passes corrupted state is worse than no checker.
"""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.designs.registry import ALL_DESIGN_NAMES, create_design
from repro.validate.invariants import (
    DEFAULT_CHECK_EVERY,
    ENV_ENABLE,
    ENV_EVERY,
    InvariantChecker,
    InvariantViolation,
    check_interval,
    validation_enabled,
)


# ----------------------------------------------------------------------
# Environment gating
# ----------------------------------------------------------------------
class TestEnvGating:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        assert validation_enabled() is False
        assert validation_enabled(default=True) is True

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_ENABLE, value)
        assert validation_enabled() is True

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
    def test_falsey_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_ENABLE, value)
        assert validation_enabled() is False

    def test_interval_default(self, monkeypatch):
        monkeypatch.delenv(ENV_EVERY, raising=False)
        assert check_interval() == DEFAULT_CHECK_EVERY
        assert check_interval(default=7) == 7

    def test_interval_parses(self, monkeypatch):
        monkeypatch.setenv(ENV_EVERY, "256")
        assert check_interval() == 256

    @pytest.mark.parametrize("value", ["zero", "1.5"])
    def test_interval_rejects_non_integers(self, monkeypatch, value):
        monkeypatch.setenv(ENV_EVERY, value)
        with pytest.raises(ConfigurationError):
            check_interval()

    @pytest.mark.parametrize("value", ["0", "-4"])
    def test_interval_rejects_non_positive(self, monkeypatch, value):
        monkeypatch.setenv(ENV_EVERY, value)
        with pytest.raises(ConfigurationError):
            check_interval()


# ----------------------------------------------------------------------
# Checker mechanics
# ----------------------------------------------------------------------
def drive(design, trace, accesses=None, start_ns=0.0):
    """Replay ``accesses`` references of a trace straight into a design."""
    n = len(trace) if accesses is None else min(accesses, len(trace))
    now = start_ns
    for i in range(n):
        cycles = design.access_cycles(
            0, 0, int(trace.virtual_pages[i]), int(trace.lines[i]),
            bool(trace.writes[i]), now,
        )
        now += (cycles + int(trace.instruction_gaps[i])) * 0.5
    return now


def test_rejects_bad_interval(small_config):
    design = create_design("no-l3", small_config)
    with pytest.raises(ValueError):
        InvariantChecker(design, every=0)


def test_designs_register_checks(small_config):
    for name in ALL_DESIGN_NAMES:
        checker = InvariantChecker(create_design(name, small_config))
        assert checker.checks, f"{name} registered no invariants"
        checker.run_checks()  # fresh state must pass
        assert checker.sweeps == 1


def test_violation_names_design_and_check(small_config):
    design = create_design("no-l3", small_config)
    checker = InvariantChecker(design)

    def broken():
        raise SimulationError("the sky is falling")

    checker.register("sky", broken)
    with pytest.raises(InvariantViolation, match=r"\[no-l3\] sky: the sky"):
        checker.run_checks()


def test_install_sweeps_every_n_accesses(small_config, tiny_trace):
    design = create_design("tagless", small_config)
    checker = InvariantChecker(design, every=100)
    checker.install()
    drive(design, tiny_trace, accesses=1000)
    assert checker.sweeps == 10
    checker.uninstall()
    # The wrapper is gone: further accesses no longer sweep.
    drive(design, tiny_trace, accesses=200, start_ns=1e9)
    assert checker.sweeps == 10
    assert "access_cycles" not in vars(design)


def test_install_is_idempotent(small_config):
    design = create_design("no-l3", small_config)
    checker = InvariantChecker(design, every=10)
    checker.install()
    wrapper = design.access_cycles
    checker.install()  # must not wrap the wrapper
    assert design.access_cycles is wrapper
    checker.uninstall()
    checker.uninstall()  # no-op on a clean design


# ----------------------------------------------------------------------
# Mutation tests: corrupted state must be caught
# ----------------------------------------------------------------------
@pytest.fixture
def warm_tagless(small_config, tiny_trace):
    """A tagless design after enough traffic to fill the small cache."""
    design = create_design("tagless", small_config)
    checker = InvariantChecker(design)
    drive(design, tiny_trace)
    checker.run_checks()  # sanity: uncorrupted state passes
    return design, checker


def test_catches_resident_page_leaked_to_free_pool(warm_tagless):
    design, checker = warm_tagless
    live_page = next(iter(design.engine.gipt._entries))
    design.engine.free_queue._free.append(live_page)
    with pytest.raises(InvariantViolation):
        checker.run_checks()


def test_catches_duplicate_free_block(warm_tagless):
    design, checker = warm_tagless
    free = design.engine.free_queue._free
    free.append(free[0])
    with pytest.raises(InvariantViolation):
        checker.run_checks()


def test_catches_dangling_ctlb_translation(warm_tagless):
    design, checker = warm_tagless
    tlb = design.tlbs[0]
    entry = next(e for e in tlb.l2._map.values() if not e.non_cacheable)
    # Point the translation at a recycled (free) cache page.
    entry.target_page = design.engine.free_queue.free_pages()[0]
    with pytest.raises(InvariantViolation, match="ctlb_residence"):
        checker.run_checks()


def test_catches_tlb_inclusion_break(small_config, tiny_trace):
    design = create_design("no-l3", small_config)
    checker = InvariantChecker(design)
    drive(design, tiny_trace)
    l1 = design.tlbs[0].l1
    stray = max(l1._map) + 1 if l1._map else 1
    l2_entry = next(iter(design.tlbs[0].l2._map.values()))
    l1._map[stray] = l2_entry
    with pytest.raises(InvariantViolation, match="tlb_inclusion"):
        checker.run_checks()


# ----------------------------------------------------------------------
# Golden invariance: checks observe, never mutate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design", ["tagless", "sram"])
def test_validated_run_is_bit_identical(small_config, tiny_trace, design):
    bindings = [BoundTrace(0, 0, tiny_trace)]
    plain = Simulator(small_config).run(design, bindings, validate=False)
    checked = Simulator(small_config).run(design, bindings, validate=True,
                                          validate_every=256)
    assert checked.stats == plain.stats
    assert checked.ipc_sum == plain.ipc_sum
    assert checked.elapsed_ns == plain.elapsed_ns


def test_env_variable_turns_validation_on(monkeypatch, small_config,
                                          tiny_trace):
    monkeypatch.setenv(ENV_ENABLE, "1")
    monkeypatch.setenv(ENV_EVERY, "512")
    bindings = [BoundTrace(0, 0, tiny_trace)]
    result = Simulator(small_config).run("tagless", bindings)
    baseline = Simulator(small_config).run("tagless", bindings,
                                           validate=False)
    assert result.stats == baseline.stats
