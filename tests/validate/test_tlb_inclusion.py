"""Mutation-kill tests for the TLB shootdown/eviction notification paths.

The "TLB hit => cache hit" guarantee rests on one bookkeeping rule:
*every* way a translation can leave L2 reach -- capacity eviction,
overwrite, single-VPN shootdown, full flush -- must fire the eviction
callback exactly once, or a GIPT residence bit strands and that cache
page can never be evicted again.  Each test here is written to fail if
one specific notification site is deleted or its condition inverted.
"""

import pytest

from repro.designs.registry import create_design
from repro.validate.invariants import InvariantChecker
from repro.vm.tlb import TLBEntry, TLBHierarchy


class Recorder:
    def __init__(self):
        self.events = []

    def __call__(self, virtual_page, entry):
        self.events.append((virtual_page, entry))


@pytest.fixture
def recorder():
    return Recorder()


def hierarchy(recorder, l1=2, l2=4):
    return TLBHierarchy(l1, l2, on_l2_evict=recorder)


class TestSingleVpnShootdown:
    def test_invalidate_fires_callback_once(self, recorder):
        h = hierarchy(recorder)
        entry = TLBEntry(target_page=7)
        h.install(0x10, entry)
        assert h.invalidate(0x10) is True
        assert recorder.events == [(0x10, entry)]

    def test_invalidate_clears_both_levels(self, recorder):
        h = hierarchy(recorder)
        h.install(0x10, TLBEntry(target_page=7))
        h.invalidate(0x10)
        assert not h.l1.contains(0x10)
        assert not h.l2.contains(0x10)

    def test_invalidate_absent_vpn_is_silent(self, recorder):
        h = hierarchy(recorder)
        h.install(0x10, TLBEntry(target_page=7))
        assert h.invalidate(0x99) is False
        assert recorder.events == []

    def test_invalidate_l1_only_residue_still_notifies_from_l2(
            self, recorder):
        """The L2 copy is the authoritative one: invalidation must report
        and notify based on L2 membership even if L1 already lost it."""
        h = hierarchy(recorder)
        entry = TLBEntry(target_page=7)
        h.install(0x10, entry)
        h.l1.invalidate(0x10)  # L1 dropped it independently
        assert h.invalidate(0x10) is True
        assert recorder.events == [(0x10, entry)]


class TestInstallPaths:
    def test_overwrite_fires_callback_for_replaced_payload(self, recorder):
        h = hierarchy(recorder)
        old = TLBEntry(target_page=7)
        new = TLBEntry(target_page=9)
        h.install(0x10, old)
        h.install(0x10, new)
        assert recorder.events == [(0x10, old)]
        assert h.l2.peek(0x10) is new

    def test_reinstall_same_entry_object_does_not_notify(self, recorder):
        """Promoting the identical payload (an LRU refresh) is not a
        departure from TLB reach."""
        h = hierarchy(recorder)
        entry = TLBEntry(target_page=7)
        h.install(0x10, entry)
        h.install(0x10, entry)
        assert recorder.events == []

    def test_capacity_eviction_notifies_and_preserves_inclusion(
            self, recorder):
        h = hierarchy(recorder, l1=2, l2=2)
        first = TLBEntry(target_page=1)
        h.install(0x1, first)
        h.install(0x2, TLBEntry(target_page=2))
        h.install(0x3, TLBEntry(target_page=3))  # evicts 0x1 from L2
        assert recorder.events == [(0x1, first)]
        # Inclusion: the L2 victim must leave L1 too.
        assert not h.l1.contains(0x1)
        assert h.l2.contains(0x2) and h.l2.contains(0x3)


class TestFullFlush:
    def test_flush_notifies_every_l2_entry(self, recorder):
        h = hierarchy(recorder)
        entries = {vpn: TLBEntry(target_page=vpn + 100)
                   for vpn in (0x1, 0x2, 0x3)}
        for vpn, entry in entries.items():
            h.install(vpn, entry)
        dropped = h.flush()
        assert dropped == 3
        assert dict(recorder.events) == {v: e for v, e in entries.items()}
        assert len(h.l1) == 0 and len(h.l2) == 0

    def test_flush_empty_is_silent(self, recorder):
        h = hierarchy(recorder)
        assert h.flush() == 0
        assert recorder.events == []


class TestTaglessEndToEnd:
    """The callbacks above drive GIPT residence bits in the tagless
    design; these close the loop on the invariant itself."""

    def warm(self, small_config, tiny_trace):
        from tests.designs.test_reset_stats import drive

        design = create_design("tagless", small_config)
        drive(design, tiny_trace)
        return design

    def resident_pages(self, design):
        return [(ca, e) for ca, e in design.engine.gipt._entries.items()
                if e.residence_mask]

    def test_shootdown_clears_residence_bit(self, small_config, tiny_trace):
        design = self.warm(small_config, tiny_trace)
        live = self.resident_pages(design)
        assert live, "warmup left nothing TLB-resident"
        cache_page, entry = live[0]
        assert design.ctlbs[0].shootdown(entry.pte.virtual_page)
        assert entry.residence_mask == 0

    def test_ctlb_flush_unfreezes_eviction(self, small_config, tiny_trace):
        """A context-switch flush must clear every residence bit: a
        level-skipping flush (``TLB.flush``) would strand them all and
        freeze eviction for good."""
        design = self.warm(small_config, tiny_trace)
        assert self.resident_pages(design)
        dropped = design.ctlbs[0].flush()
        assert dropped > 0
        assert not self.resident_pages(design)
        checker = InvariantChecker(design, every=1)
        checker.run_checks()

    def test_invariants_hold_after_single_shootdowns(self, small_config,
                                                     tiny_trace):
        design = self.warm(small_config, tiny_trace)
        for _, entry in list(self.resident_pages(design)):
            design.ctlbs[0].shootdown(entry.pte.virtual_page)
        checker = InvariantChecker(design, every=1)
        checker.run_checks()
