"""Cross-design bound tests: the chain holds, failures are loud."""

import pytest

from repro.cpu.multicore import BoundTrace
from repro.validate.differential import (
    BOUND_CHAIN,
    BoundCheck,
    DifferentialReport,
    in_package_service_ratio,
    run_cross_design_bounds,
)
from repro.validate.invariants import InvariantViolation


@pytest.fixture(scope="module")
def report_and_results():
    import dataclasses

    from repro.common.config import default_system
    from repro.workloads.generator import TraceGenerator
    from repro.workloads.spec import spec_profile

    config = dataclasses.replace(
        default_system(cache_megabytes=128, num_cores=1, capacity_scale=512),
        tlb_scale=32,
    )
    trace = TraceGenerator(spec_profile("sphinx3"),
                           capacity_scale=512).generate(3000)
    results = {}
    report = run_cross_design_bounds(
        config, [BoundTrace(0, 0, trace)],
        workload="sphinx3", validate=False, results=results,
    )
    return report, results


def test_bound_chain_holds(report_and_results):
    report, results = report_and_results
    assert report.passed
    assert report.accesses == 3000
    assert set(results) == set(BOUND_CHAIN)
    # The chain's anchors are exact by construction.
    assert report.ratios["ideal"] == 1.0
    assert report.ratios["no-l3"] == 0.0
    # The interesting designs land strictly between them on this trace.
    assert 0.0 < report.ratios["tagless"] <= 1.0
    report.raise_on_failure()  # no-op on a passing report


def test_offpkg_ceiling_is_no_l3(report_and_results):
    report, _ = report_and_results
    ceiling = report.offpkg_demand["no-l3"]
    assert ceiling > 0
    for name, demand in report.offpkg_demand.items():
        assert demand <= ceiling


def test_table_mentions_every_check(report_and_results):
    report, _ = report_and_results
    text = report.table()
    assert "sphinx3" in text
    for check in report.checks:
        assert check.name in text
    assert "[FAIL]" not in text


def test_failing_report_raises():
    report = DifferentialReport(
        workload="w", accesses=1, ratios={}, offpkg_demand={},
        checks=[BoundCheck(name="broken", passed=False, detail="1 vs 2")],
    )
    assert not report.passed
    with pytest.raises(InvariantViolation, match="broken: 1 vs 2"):
        report.raise_on_failure()


def test_service_ratio_definitions():
    assert in_package_service_ratio("ideal", {}) == 1.0
    assert in_package_service_ratio("no-l3", {}) == 0.0
    stats = {"cache_accesses": 80.0, "nc_accesses": 20.0,
             "engine_fills": 30.0}
    assert in_package_service_ratio("tagless", stats) == pytest.approx(0.5)
    assert in_package_service_ratio(
        "bi", {"l3_accesses": 10.0, "in_package_hits": 4.0}
    ) == pytest.approx(0.4)
    assert in_package_service_ratio(
        "sram", {"l3_hits": 3.0, "l3_misses": 1.0}
    ) == pytest.approx(0.75)


def test_service_ratio_empty_stats_degrade_to_zero():
    for name in ("tagless", "bi", "sram", "alloy"):
        assert in_package_service_ratio(name, {}) == 0.0


def test_service_ratio_unknown_design():
    with pytest.raises(ValueError):
        in_package_service_ratio("mystery", {})
