"""Run-time invariant checking for the simulated memory-system designs.

PR 2 rewrote the per-access hot path with hand-inlined probes, fused
residency/recency dicts and lazy replacement structures -- exactly the
kind of optimisation that can break the paper's structural guarantees
(the alpha free-block reserve, GIPT<->cTLB consistency, tagless
residency) without moving the golden stats of the pinned traces.  This
module provides the safety net: every design registers cheap, strictly
read-only assertions over its own state, and an
:class:`InvariantChecker` runs them every ``every`` accesses during a
validated run.

Validation is opt-in three ways, strongest first:

- ``Simulator.run(..., validate=True)`` (what ``repro check`` uses);
- ``JobSpec(validate=True)`` for individual harness jobs;
- the ``REPRO_VALIDATE=1`` environment variable, which turns it on for
  every run that did not explicitly decide (``REPRO_VALIDATE_EVERY``
  overrides the check interval).

Checks observe, never mutate: a validated run produces bit-identical
statistics to an unvalidated one (the golden-stats suite enforces this).
"""

from __future__ import annotations

import os
from typing import Callable, List, Tuple

from repro.common.errors import ConfigurationError, SimulationError

#: Accesses between check sweeps unless overridden.
DEFAULT_CHECK_EVERY = 1024

ENV_ENABLE = "REPRO_VALIDATE"
ENV_EVERY = "REPRO_VALIDATE_EVERY"

_FALSEY = ("", "0", "false", "no", "off")


class InvariantViolation(SimulationError):
    """A registered structural invariant failed during a validated run."""


def validation_enabled(default: bool = False) -> bool:
    """Has the user switched validation on via ``REPRO_VALIDATE``?"""
    value = os.environ.get(ENV_ENABLE)
    if value is None:
        return default
    return value.strip().lower() not in _FALSEY


def check_interval(default: int = DEFAULT_CHECK_EVERY) -> int:
    """Check interval from ``REPRO_VALIDATE_EVERY`` (falls back to
    ``default``)."""
    value = os.environ.get(ENV_EVERY)
    if value is None or not value.strip():
        return default
    try:
        every = int(value)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_EVERY}={value!r} is not an integer"
        ) from None
    if every < 1:
        raise ConfigurationError(f"{ENV_EVERY} must be >= 1, got {every}")
    return every


class InvariantChecker:
    """Periodically runs the read-only checks a design registers.

    Construction asks the design to register its checks
    (:meth:`~repro.designs.base.MemorySystemDesign.register_invariants`);
    :meth:`install` then wraps ``design.access_cycles`` as an *instance*
    attribute so every N-th access triggers a sweep.  The multicore
    engine binds ``access_cycles`` once at loop start, so install the
    checker before the run begins.  The wrapper only counts and calls
    the checks -- simulation state and statistics are untouched.
    """

    def __init__(self, design, every: int = DEFAULT_CHECK_EVERY):
        if every < 1:
            raise ValueError(f"check interval must be >= 1, got {every}")
        self.design = design
        self.every = every
        self.checks: List[Tuple[str, Callable[[], None]]] = []
        self.sweeps = 0
        self._installed = False
        #: Optional repro.obs.events.EventTracer; when set, every sweep
        #: emits a matched begin/end slice so validation pauses are
        #: visible in a Perfetto trace.
        self.tracer = None
        design.register_invariants(self)

    def register(self, name: str, check: Callable[[], None]) -> None:
        """Add one named, zero-argument, read-only check.

        The check signals a violation by raising
        :class:`~repro.common.errors.SimulationError` (or the more
        specific :class:`InvariantViolation`); the sweep wraps either
        into an :class:`InvariantViolation` naming the check.
        """
        self.checks.append((name, check))

    def run_checks(self, now_ns: float = 0.0) -> None:
        """Run every registered check once (one sweep).

        ``now_ns`` is purely observational: it timestamps the sweep's
        trace slice when a tracer is attached (checks themselves take
        zero simulated time).
        """
        self.sweeps += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("validate", "sweep", now_ns,
                         args={"sweep": self.sweeps})
        for name, check in self.checks:
            try:
                check()
            except SimulationError as exc:
                raise InvariantViolation(
                    f"[{self.design.name}] {name}: {exc}"
                ) from None
        if tracer is not None:
            tracer.end("validate", "sweep", now_ns)

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Shadow ``design.access_cycles`` with a counting wrapper."""
        if self._installed:
            return
        inner = self.design.access_cycles  # bound method from the class
        every = self.every
        countdown = [every]

        def checked_access_cycles(core_id, process_id, virtual_page,
                                  line_index, is_write, now_ns):
            cycles = inner(core_id, process_id, virtual_page, line_index,
                           is_write, now_ns)
            countdown[0] -= 1
            if countdown[0] <= 0:
                countdown[0] = every
                self.run_checks(now_ns)
            return cycles

        self.design.access_cycles = checked_access_cycles
        self._installed = True

    def uninstall(self) -> None:
        """Remove the wrapper, restoring the class's ``access_cycles``."""
        if self._installed:
            del self.design.access_cycles  # the instance attribute
            self._installed = False


# ----------------------------------------------------------------------
# Shared check helpers (used by the designs' register_invariants hooks)
# ----------------------------------------------------------------------
def check_tlb_hierarchy(hierarchy, label: str) -> None:
    """L1 within capacity and a subset of L2 (the hierarchy is inclusive,
    which is what lets GIPT residence track only L2 membership)."""
    l1, l2 = hierarchy.l1, hierarchy.l2
    if len(l1._map) > l1.capacity:
        raise SimulationError(
            f"{label}: L1 TLB holds {len(l1._map)} > {l1.capacity} entries"
        )
    if len(l2._map) > l2.capacity:
        raise SimulationError(
            f"{label}: L2 TLB holds {len(l2._map)} > {l2.capacity} entries"
        )
    l2_map = l2._map
    for virtual_page in l1._map:
        if virtual_page not in l2_map:
            raise SimulationError(
                f"{label}: VA page {virtual_page:#x} in L1 TLB but not L2 "
                "(inclusion broken)"
            )
