"""Cross-design differential validation.

Replays one trace through several designs and asserts the ordering
relationships the paper's architecture implies, whatever the workload:

- **In-package service ratio** is monotone in cache capability: the
  ideal SRAM L3 serves everything in package, the tagless DRAM cache at
  least as much as bank interleaving (which only catches pages that
  happen to live in the on-package half of the flat address space), and
  the no-L3 baseline serves nothing in package.
- **Off-package demand traffic**: no design may send more demand
  accesses off package than the no-L3 baseline, which misses everything.

These are bounds, not fixtures -- they hold for any trace, so the
harness runs them on randomized workloads where golden stats cannot
reach.  Each constituent run also executes with the invariant checker
installed, so a differential run doubles as a structural sweep of every
design involved.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import SimulationResult, Simulator
from repro.validate.invariants import InvariantViolation

#: Designs whose service ratios form a provable chain, best first.
BOUND_CHAIN = ("ideal", "tagless", "bi", "no-l3")

#: Tolerance for floating-point ratio comparisons.
EPS = 1e-9


def in_package_service_ratio(design_name: str,
                             stats: Dict[str, float]) -> float:
    """Fraction of L3-level demand served without leaving the package.

    Each design exposes the quantity through different counters, so this
    normalises them to one comparable ratio in [0, 1].
    """
    if design_name == "ideal":
        return 1.0  # perfect SRAM L3: every L3 access hits in package
    if design_name == "no-l3":
        return 0.0  # no L3 at all: everything goes to off-package DRAM
    if design_name == "tagless":
        cache = stats.get("cache_accesses", 0.0)
        nc = stats.get("nc_accesses", 0.0)
        fills = stats.get("engine_fills", 0.0)
        total = cache + nc
        if total <= 0:
            return 0.0
        # Cache accesses minus fills-from-home approximates hits; NC
        # accesses always go off package.
        return min(1.0, max(0.0, (cache - fills) / total))
    if design_name == "bi":
        total = stats.get("l3_accesses", 0.0)
        if total <= 0:
            return 0.0
        return min(1.0, stats.get("in_package_hits", 0.0) / total)
    if design_name in ("sram", "alloy"):
        hits = stats.get("l3_hits", 0.0)
        misses = stats.get("l3_misses", 0.0)
        total = hits + misses
        if total <= 0:
            return 0.0
        return hits / total
    raise ValueError(f"no service-ratio definition for design {design_name!r}")


@dataclasses.dataclass
class BoundCheck:
    """One cross-design assertion and its measured values."""

    name: str
    passed: bool
    detail: str


@dataclasses.dataclass
class DifferentialReport:
    """Outcome of one cross-design differential run."""

    workload: str
    accesses: int
    ratios: Dict[str, float]
    offpkg_demand: Dict[str, float]
    checks: List[BoundCheck]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def table(self) -> str:
        lines = [
            f"differential: {self.workload}, {self.accesses} accesses",
            f"{'design':10s} {'in-pkg ratio':>12s} {'offpkg demand':>14s}",
        ]
        for name in self.ratios:
            lines.append(f"{name:10s} {self.ratios[name]:12.4f} "
                         f"{self.offpkg_demand[name]:14,.0f}")
        for check in self.checks:
            status = "ok" if check.passed else "FAIL"
            lines.append(f"  [{status}] {check.name}: {check.detail}")
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        failures = [c for c in self.checks if not c.passed]
        if failures:
            raise InvariantViolation(
                "; ".join(f"{c.name}: {c.detail}" for c in failures)
            )


def run_cross_design_bounds(
    config: SystemConfig,
    bindings: Sequence[BoundTrace],
    designs: Sequence[str] = BOUND_CHAIN,
    workload: str = "?",
    validate: bool = True,
    results: Optional[Dict[str, SimulationResult]] = None,
) -> DifferentialReport:
    """Replay ``bindings`` through each design and check the bounds.

    ``results`` (optional, mutated in place) collects the per-design
    :class:`SimulationResult` objects for callers that want to inspect
    more than the bound metrics.
    """
    simulator = Simulator(config)
    accesses = sum(len(b.trace) for b in bindings)
    ratios: Dict[str, float] = {}
    offpkg: Dict[str, float] = {}
    for name in designs:
        result = simulator.run(name, bindings, validate=validate)
        ratios[name] = in_package_service_ratio(name, result.stats)
        offpkg[name] = result.stats.get("offpkg_demand_accesses", 0.0)
        if results is not None:
            results[name] = result

    checks: List[BoundCheck] = []
    chain: List[Tuple[str, float]] = [
        (name, ratios[name]) for name in BOUND_CHAIN if name in ratios
    ]
    for (better, better_ratio), (worse, worse_ratio) in zip(chain,
                                                            chain[1:]):
        passed = better_ratio + EPS >= worse_ratio
        checks.append(BoundCheck(
            name=f"service_ratio[{better}] >= service_ratio[{worse}]",
            passed=passed,
            detail=f"{better_ratio:.6f} vs {worse_ratio:.6f}",
        ))
    for name, ratio in ratios.items():
        checks.append(BoundCheck(
            name=f"service_ratio[{name}] in [0, 1]",
            passed=-EPS <= ratio <= 1.0 + EPS,
            detail=f"{ratio:.6f}",
        ))
    if "no-l3" in offpkg:
        ceiling = offpkg["no-l3"]
        for name, demand in offpkg.items():
            if name == "no-l3":
                continue
            checks.append(BoundCheck(
                name=f"offpkg_demand[{name}] <= offpkg_demand[no-l3]",
                passed=demand <= ceiling + EPS,
                detail=f"{demand:,.0f} vs {ceiling:,.0f}",
            ))
    return DifferentialReport(
        workload=workload,
        accesses=accesses,
        ratios=ratios,
        offpkg_demand=offpkg,
        checks=checks,
    )
