"""Slow-but-obvious reference model of the set-associative structures.

``repro.sram.set_assoc`` fuses residency and recency into one
insertion-ordered dict for LRU/FIFO and pairs a lazy versioned ring with
the residency map for CLOCK.  This module re-implements the same
semantics the straightforward way -- explicit per-set recency lists, an
eager CLOCK hand -- and replays randomized operation traces through both,
comparing hits, victims, dirty write-backs and full structure state.

The random policy is deliberately excluded: its swap-pop optimisation
intentionally remaps which resident a given RNG draw selects (documented
in ``replacement.py``), so the two implementations agree only in
distribution, not trace-by-trace.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.sram.set_assoc import SetAssociativeCache
from repro.validate.invariants import InvariantViolation

#: Policies the reference model covers (deterministic victim orders).
REFERENCE_POLICIES = ("lru", "fifo", "clock")


class _ReferenceSet:
    """One set: an explicit order list, dirty bits, and CLOCK ref bits.

    ``order`` is the eviction order, front = next victim candidate.  For
    LRU that is recency order; for FIFO insertion order; for CLOCK the
    hand's rotation order (the hand always sits at the front).
    """

    def __init__(self, ways: int, policy: str):
        self.ways = ways
        self.policy = policy
        self.order: List[int] = []
        self.dirty: Dict[int, bool] = {}
        self.referenced: Dict[int, bool] = {}

    def lookup(self, key: int, is_write: bool) -> bool:
        if key not in self.dirty:
            return False
        if self.policy == "lru":
            self.order.remove(key)
            self.order.append(key)
        elif self.policy == "clock":
            self.referenced[key] = True
        if is_write:
            self.dirty[key] = True
        return True

    def victim(self) -> int:
        if self.policy in ("lru", "fifo"):
            return self.order[0]
        # CLOCK: rotate past referenced keys, clearing their bit; the
        # first unreferenced key under the hand is the victim.
        while True:
            key = self.order[0]
            if self.referenced[key]:
                self.referenced[key] = False
                self.order.append(self.order.pop(0))
                continue
            return key

    def insert(self, key: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Returns the (victim, victim_dirty) eviction, if any."""
        if key in self.dirty:
            if self.policy == "lru":
                self.order.remove(key)
                self.order.append(key)
            elif self.policy == "clock":
                # The fast structure routes a resident re-insert through
                # policy.on_access, which sets the reference bit.
                self.referenced[key] = True
            # FIFO: a resident re-insert leaves the order untouched.
            self.dirty[key] = self.dirty[key] or dirty
            return None
        evicted = None
        if len(self.dirty) >= self.ways:
            victim = self.victim()
            self.order.remove(victim)
            evicted = (victim, self.dirty.pop(victim))
            self.referenced.pop(victim, None)
        self.order.append(key)
        self.dirty[key] = dirty
        if self.policy == "clock":
            self.referenced[key] = False
        return evicted

    def invalidate(self, key: int) -> Optional[Tuple[int, bool]]:
        if key not in self.dirty:
            return None
        self.order.remove(key)
        self.referenced.pop(key, None)
        return (key, self.dirty.pop(key))

    def mark_dirty(self, key: int) -> None:
        if key in self.dirty:
            self.dirty[key] = True


class ReferenceSetAssociativeCache:
    """Eager, list-based twin of :class:`SetAssociativeCache`."""

    def __init__(self, num_sets: int, ways: int, policy: str = "lru"):
        if policy not in REFERENCE_POLICIES:
            raise ValueError(
                f"reference model covers {REFERENCE_POLICIES}, not {policy!r}"
            )
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy
        self._sets = [_ReferenceSet(ways, policy) for _ in range(num_sets)]

    def _set_for(self, key: int) -> _ReferenceSet:
        return self._sets[key % self.num_sets]

    def lookup(self, key: int, is_write: bool = False) -> bool:
        return self._set_for(key).lookup(key, is_write)

    def contains(self, key: int) -> bool:
        return key in self._set_for(key).dirty

    def insert(self, key: int, dirty: bool = False):
        return self._set_for(key).insert(key, dirty)

    def invalidate(self, key: int):
        return self._set_for(key).invalidate(key)

    def mark_dirty(self, key: int) -> None:
        self._set_for(key).mark_dirty(key)


# ----------------------------------------------------------------------
# State extraction from the optimized structure, for deep comparison
# ----------------------------------------------------------------------
def _fast_set_state(cache: SetAssociativeCache, index: int):
    """(ordered keys or residency set, dirty map, ref bits) of one set."""
    cache_set = cache._sets[index]
    entries = cache_set.entries
    policy = cache_set.policy
    if policy is None:  # fused LRU/FIFO: dict order IS the order
        return list(entries), dict(entries), None
    # CLOCK: live ring order (stale slots filtered), front = hand.
    ring = [key for key, version in policy._ring
            if key in policy._referenced and policy._version[key] == version]
    return ring, dict(entries), dict(policy._referenced)


def _compare_state(fast: SetAssociativeCache,
                   reference: ReferenceSetAssociativeCache,
                   op_index: int) -> None:
    for index in range(fast.num_sets):
        order, dirty, refbits = _fast_set_state(fast, index)
        ref_set = reference._sets[index]
        if order != ref_set.order:
            raise InvariantViolation(
                f"op {op_index}, set {index}: replacement order diverged -- "
                f"optimized {order} vs reference {ref_set.order}"
            )
        if dirty != ref_set.dirty:
            raise InvariantViolation(
                f"op {op_index}, set {index}: dirty bits diverged -- "
                f"optimized {dirty} vs reference {ref_set.dirty}"
            )
        if refbits is not None and refbits != ref_set.referenced:
            raise InvariantViolation(
                f"op {op_index}, set {index}: CLOCK ref bits diverged -- "
                f"optimized {refbits} vs reference {ref_set.referenced}"
            )


def run_reference_differential(policy: str, num_sets: int = 4, ways: int = 8,
                               operations: int = 20_000, seed: int = 0,
                               state_check_every: int = 64,
                               fast: Optional[SetAssociativeCache] = None,
                               ) -> dict:
    """Drive both implementations with one randomized op trace.

    Raises :class:`InvariantViolation` at the first divergence; returns a
    small summary dict on success.  ``fast`` lets mutation tests pass in
    a structure they intend to corrupt mid-run.
    """
    if fast is None:
        fast = SetAssociativeCache(num_sets, ways, policy=policy)
    reference = ReferenceSetAssociativeCache(num_sets, ways, policy=policy)
    rng = random.Random(seed)
    # Key space ~2x capacity so sets stay full and evictions are common.
    key_space = max(2 * num_sets * ways, 16)
    counts = {"lookup": 0, "insert": 0, "invalidate": 0, "mark_dirty": 0}

    for op_index in range(operations):
        key = rng.randrange(key_space)
        roll = rng.random()
        if roll < 0.55:  # demand access: lookup, insert on miss
            counts["lookup"] += 1
            is_write = rng.random() < 0.3
            hit_fast = fast.lookup(key, is_write)
            hit_ref = reference.lookup(key, is_write)
            if hit_fast != hit_ref:
                raise InvariantViolation(
                    f"op {op_index}: lookup({key}) hit mismatch -- "
                    f"optimized {hit_fast} vs reference {hit_ref}"
                )
            if not hit_fast:
                counts["insert"] += 1
                ev_fast = fast.insert(key, dirty=is_write)
                ev_ref = reference.insert(key, is_write)
                _compare_evictions(ev_fast, ev_ref, key, op_index)
        elif roll < 0.75:  # prefetch-style direct insert
            counts["insert"] += 1
            dirty = rng.random() < 0.3
            ev_fast = fast.insert(key, dirty=dirty)
            ev_ref = reference.insert(key, dirty)
            _compare_evictions(ev_fast, ev_ref, key, op_index)
        elif roll < 0.9:  # invalidate (shootdown)
            counts["invalidate"] += 1
            ev_fast = fast.invalidate(key)
            ev_ref = reference.invalidate(key)
            _compare_evictions(ev_fast, ev_ref, key, op_index)
        else:  # background dirty-bit update
            counts["mark_dirty"] += 1
            fast.mark_dirty(key)
            reference.mark_dirty(key)
        if (op_index + 1) % state_check_every == 0:
            _compare_state(fast, reference, op_index)

    _compare_state(fast, reference, operations)
    counts["operations"] = operations
    counts["policy"] = policy
    return counts


def _compare_evictions(ev_fast, ev_ref, key: int, op_index: int) -> None:
    fast_pair = (ev_fast.key, ev_fast.dirty) if ev_fast is not None else None
    if fast_pair != ev_ref:
        raise InvariantViolation(
            f"op {op_index}: insert/invalidate({key}) eviction mismatch -- "
            f"optimized {fast_pair} vs reference {ev_ref}"
        )
