"""Invariant checking and differential validation (``repro check``).

Kept import-light: only the invariant layer loads eagerly (designs and
the simulator import it on their hot construction path); the reference
and cross-design differential harnesses are imported lazily by callers
(``from repro.validate import differential, reference``).
"""

from repro.validate.invariants import (
    DEFAULT_CHECK_EVERY,
    ENV_ENABLE,
    ENV_EVERY,
    InvariantChecker,
    InvariantViolation,
    check_interval,
    check_tlb_hierarchy,
    validation_enabled,
)

__all__ = [
    "DEFAULT_CHECK_EVERY",
    "ENV_ENABLE",
    "ENV_EVERY",
    "InvariantChecker",
    "InvariantViolation",
    "check_interval",
    "check_tlb_hierarchy",
    "validation_enabled",
]
