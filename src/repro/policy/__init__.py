"""Pluggable caching policies for the tagless DRAM cache.

Section 3.5 of the paper stresses that, because the whole caching
mechanism lives in the TLB miss handler, "a caching policy (e.g.,
selective locking or bypassing of cache blocks) can be flexibly plugged
in by modifying the TLB miss handler".  This package is that plug-in
surface:

- :class:`repro.policy.base.CachingPolicy` -- the interface the cTLB
  miss handler consults before filling a page;
- :class:`repro.policy.always.AlwaysCachePolicy` -- the paper's default
  behaviour (every cacheable page is cached on first touch);
- :class:`repro.policy.static_profile.StaticProfilePolicy` -- the
  Section 5.4 case study: an offline profile flags low-reuse pages NC;
- :class:`repro.policy.touch_filter.TouchCountFilterPolicy` -- an
  online, CHOP-style filter (Jiang et al., HPCA 2010, cited as [22])
  that only caches a page once it has proven itself by missing in the
  TLB repeatedly within a decay window.
"""

from repro.policy.always import AlwaysCachePolicy
from repro.policy.base import CachingPolicy, PolicyDecision
from repro.policy.static_profile import StaticProfilePolicy
from repro.policy.touch_filter import TouchCountFilterPolicy

__all__ = [
    "AlwaysCachePolicy",
    "CachingPolicy",
    "PolicyDecision",
    "StaticProfilePolicy",
    "TouchCountFilterPolicy",
]
