"""Caching-policy interface consulted by the cTLB miss handler.

The handler reaches the policy exactly once per cTLB miss on a
cacheable-but-uncached page -- the shaded decision point of Figure 4 --
and the policy answers with a :class:`PolicyDecision`:

- ``CACHE``: proceed with the normal fill (allocate at HP, copy page);
- ``BYPASS``: serve this TLB window from off-package DRAM (a
  conventional VA->PA mapping is installed), but leave the PTE's NC bit
  clear so the page is reconsidered at its next TLB miss;
- ``PIN_NC``: set the PTE's NC bit permanently (Section 3.5's
  "non-cacheable page": all future misses skip the policy too).

Policies also observe fills and evictions so online schemes can learn.
"""

from __future__ import annotations

import enum

from repro.vm.page_table import PageTableEntry


class PolicyDecision(enum.Enum):
    """What to do with a cacheable page at its cTLB miss."""

    CACHE = "cache"
    BYPASS = "bypass"
    PIN_NC = "pin_nc"


class CachingPolicy:
    """Interface for page-caching policies.

    Implementations must be cheap: ``decide`` runs inside the simulated
    TLB miss handler, the hottest slow path in the system.
    """

    #: Registry/reporting name; subclasses override.
    name = "abstract"

    def decide(
        self,
        process_id: int,
        virtual_page: int,
        pte: PageTableEntry,
        now_ns: float,
    ) -> PolicyDecision:
        """Choose CACHE, BYPASS or PIN_NC for an uncached page."""
        raise NotImplementedError

    def on_fill(self, process_id: int, virtual_page: int) -> None:
        """A page chosen for caching was filled (learning hook)."""

    def on_evicted(self, physical_page: int) -> None:
        """A cached page was evicted from the DRAM cache."""

    def stats(self, prefix: str = "") -> dict:
        """Policy-specific counters for the experiment harness."""
        return {}

    def reset_stats(self) -> None:
        """Zero decision counters at the warmup/measurement boundary.

        Learned state (touch counts, profiles) stays -- only reporting
        counters reset, mirroring every other component's reset_stats.
        """
