"""Offline-profile NC classification (the Section 5.4 case study).

A profiling pass over the workload's trace counts accesses per page;
pages below a threshold (the paper uses 32 -- under half of a 4 KB
page's 64 blocks) are pinned non-cacheable, so they stop polluting the
DRAM cache and stop burning off-package bandwidth on 4 KB fills.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set, Tuple

from repro.policy.base import CachingPolicy, PolicyDecision
from repro.vm.page_table import PageTableEntry
from repro.workloads.trace import AccessTrace

#: The paper's threshold: fewer than half of the page's 64 blocks.
DEFAULT_THRESHOLD = 32


class StaticProfilePolicy(CachingPolicy):
    """Pin profiled low-reuse pages NC; cache everything else."""

    name = "static-profile"

    def __init__(self, nc_pages: Mapping[int, Iterable[int]]):
        """``nc_pages`` maps process id -> virtual pages to pin NC."""
        self._nc: Set[Tuple[int, int]] = {
            (process_id, int(page))
            for process_id, pages in nc_pages.items()
            for page in pages
        }
        self.pinned = 0
        self.cached = 0

    @classmethod
    def from_traces(
        cls,
        traces: Mapping[int, AccessTrace],
        threshold: int = DEFAULT_THRESHOLD,
    ) -> "StaticProfilePolicy":
        """Build the policy by profiling traces (process id -> trace)."""
        nc: Dict[int, list] = {}
        for process_id, trace in traces.items():
            counts = trace.page_access_counts()
            nc[process_id] = [
                page for page, count in counts.items() if count < threshold
            ]
        return cls(nc)

    def decide(
        self,
        process_id: int,
        virtual_page: int,
        pte: PageTableEntry,
        now_ns: float,
    ) -> PolicyDecision:
        if (process_id, virtual_page) in self._nc:
            self.pinned += 1
            return PolicyDecision.PIN_NC
        self.cached += 1
        return PolicyDecision.CACHE

    @property
    def nc_page_count(self) -> int:
        return len(self._nc)

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}pinned": float(self.pinned),
            f"{prefix}cached": float(self.cached),
            f"{prefix}nc_pages": float(len(self._nc)),
        }

    def reset_stats(self) -> None:
        # The NC page set is the (static) profile and stays.
        self.pinned = 0
        self.cached = 0
