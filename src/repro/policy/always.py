"""The paper's default policy: cache every cacheable page on first miss."""

from __future__ import annotations

from repro.policy.base import CachingPolicy, PolicyDecision
from repro.vm.page_table import PageTableEntry


class AlwaysCachePolicy(CachingPolicy):
    """Unconditional caching -- the behaviour evaluated in Figures 7-12."""

    name = "always"

    def __init__(self) -> None:
        self.decisions = 0

    def decide(
        self,
        process_id: int,
        virtual_page: int,
        pte: PageTableEntry,
        now_ns: float,
    ) -> PolicyDecision:
        self.decisions += 1
        return PolicyDecision.CACHE

    def stats(self, prefix: str = "") -> dict:
        return {f"{prefix}decisions": float(self.decisions)}

    def reset_stats(self) -> None:
        self.decisions = 0
