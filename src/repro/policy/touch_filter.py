"""Online touch-count filter (CHOP-style, reference [22] of the paper).

Jiang et al.'s filter-based DRAM caching only allocates pages that have
proven hot.  Adapted to the tagless design's software surface: each
cTLB miss on an uncached page bumps a per-page counter; the page is
bypassed (served at block granularity from off-package DRAM) until the
counter reaches ``threshold``, after which it is cached normally.
Counters decay periodically so stale history does not pin cold pages
hot forever.

Compared to :class:`StaticProfilePolicy` this needs no offline profile
-- the trade-off is that a hot page pays ``threshold - 1`` bypassed TLB
windows before it starts enjoying in-package hits.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.policy.base import CachingPolicy, PolicyDecision
from repro.vm.page_table import PageTableEntry


class TouchCountFilterPolicy(CachingPolicy):
    """Cache a page after ``threshold`` cTLB misses within the window."""

    name = "touch-filter"

    def __init__(self, threshold: int = 2, decay_interval_ns: float = 1e6):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if decay_interval_ns <= 0:
            raise ValueError("decay interval must be positive")
        self.threshold = threshold
        self.decay_interval_ns = decay_interval_ns
        self._counts: Dict[Tuple[int, int], int] = {}
        self._last_decay_ns = 0.0
        self.bypasses = 0
        self.promotions = 0
        self.decays = 0

    def decide(
        self,
        process_id: int,
        virtual_page: int,
        pte: PageTableEntry,
        now_ns: float,
    ) -> PolicyDecision:
        self._maybe_decay(now_ns)
        key = (process_id, virtual_page)
        count = self._counts.get(key, 0) + 1
        if count >= self.threshold:
            # Promoted: forget the counter (it has served its purpose).
            self._counts.pop(key, None)
            self.promotions += 1
            return PolicyDecision.CACHE
        self._counts[key] = count
        self.bypasses += 1
        return PolicyDecision.BYPASS

    def _maybe_decay(self, now_ns: float) -> None:
        """Halve all counters once per decay interval (cheap aging)."""
        if now_ns - self._last_decay_ns < self.decay_interval_ns:
            return
        self._last_decay_ns = now_ns
        self.decays += 1
        survivors = {
            key: count // 2
            for key, count in self._counts.items()
            if count // 2 > 0
        }
        self._counts = survivors

    def pending_pages(self) -> int:
        """Pages currently being observed (not yet promoted)."""
        return len(self._counts)

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}bypasses": float(self.bypasses),
            f"{prefix}promotions": float(self.promotions),
            f"{prefix}decays": float(self.decays),
            f"{prefix}pending": float(len(self._counts)),
        }

    def reset_stats(self) -> None:
        # The touch counters themselves are learned state and stay.
        self.bypasses = 0
        self.promotions = 0
        self.decays = 0
