"""Live fleet monitoring: per-worker rows over a running sweep.

``--live`` replaces the one-line progress bar with a small dashboard
fed entirely by the observer hooks the pooled runner already invokes --
no extra IPC beyond the workers' heartbeat messages:

    workers 4  jobs 37/180 (21%)  cache 12  retries 1  errors 0  eta 94s
      w0  busy  tagless/mcf@1024MB      #2  12.3s   1.2M acc/s  9 done
      w1  busy  sram-tags/lbm@1024MB    #0   2.1s   1.4M acc/s  8 done
      ...

Rendering is resilient to where it runs: on a TTY the block redraws in
place (cursor-up ANSI codes); on a dumb pipe (CI logs) it prints a
fresh block at most every few seconds.  The monitor is an *observer* --
state in, text out -- so :class:`CompositeObserver` can fan the same
hook stream out to it and a :class:`~repro.obs.harness.HarnessObserver`
simultaneously.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional


class CompositeObserver:
    """Fan one runner hook stream out to several observers.

    Hooks are forwarded only to children that define them, mirroring
    the runner's own optional-hook discipline, so a plain legacy
    observer can sit next to a :class:`LiveMonitor`.
    """

    _HOOKS = ("job_done", "job_retry", "job_dispatched", "job_finished",
              "worker_heartbeat", "finish")

    def __init__(self, *observers):
        self.observers = [obs for obs in observers if obs is not None]
        for hook in self._HOOKS:
            targets = [getattr(obs, hook) for obs in self.observers
                       if hasattr(obs, hook)]
            if targets:
                setattr(self, hook, _fan_out(targets))


def _fan_out(targets):
    def call(*args, **kwargs):
        for target in targets:
            target(*args, **kwargs)
    return call


class _WorkerRow:
    """What the dashboard knows about one pool worker."""

    __slots__ = ("worker_id", "label", "attempt", "elapsed_s",
                 "accesses_done", "jobs_done", "last_status", "busy",
                 "first_seen", "last_seen")

    def __init__(self, worker_id: int, now: float):
        self.worker_id = worker_id
        self.label: Optional[str] = None
        self.attempt = 0
        self.elapsed_s = 0.0
        self.accesses_done = 0
        self.jobs_done = 0
        self.last_status = ""
        self.busy = False
        self.first_seen = now
        self.last_seen = now

    def rate(self, now: float) -> float:
        """Accesses per second over the worker's observed lifetime."""
        uptime = max(1e-9, now - self.first_seen)
        return self.accesses_done / uptime


class LiveMonitor:
    """Renders fleet state from runner hooks; safe on TTYs and pipes."""

    def __init__(self, total: int, label: str = "run", stream=None,
                 interval_s: float = 0.5, clock=time.monotonic,
                 is_tty: Optional[bool] = None):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._clock = clock
        self._t0 = clock()
        self._tty = (self.stream.isatty() if is_tty is None
                     and hasattr(self.stream, "isatty") else bool(is_tty))
        self._last_render = -float("inf")
        self._last_lines = 0
        self.workers: Dict[int, _WorkerRow] = {}
        self.done = 0
        self.errors = 0
        self.cache_hits = 0
        self.resumed = 0
        self.retries = 0
        self.heartbeats = 0
        self._finished = False

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------
    def job_done(self, outcome) -> None:
        self.done += 1
        if not outcome.ok:
            self.errors += 1
        if outcome.cache_status == "hit":
            self.cache_hits += 1
        elif outcome.cache_status == "resume":
            self.resumed += 1
        self._render()

    def job_retry(self, spec, attempt: int, error: str) -> None:
        self.retries += 1
        self._render()

    def job_dispatched(self, index: int, spec, attempt: int,
                       worker_id: int, queue_wait_s: float) -> None:
        row = self._row(worker_id)
        row.busy = True
        row.label = spec.label
        row.attempt = attempt
        row.elapsed_s = 0.0
        self._render()

    def job_finished(self, index: int, spec, attempt: int, worker_id: int,
                     status: str, wall_s: float) -> None:
        row = self._row(worker_id)
        row.busy = False
        row.jobs_done += 1
        row.last_status = status
        row.elapsed_s = wall_s
        self._render()

    def worker_heartbeat(self, payload: dict) -> None:
        self.heartbeats += 1
        row = self._row(int(payload.get("worker", 0)))
        row.busy = True
        row.label = payload.get("label", row.label)
        row.attempt = int(payload.get("attempt", row.attempt))
        row.elapsed_s = float(payload.get("elapsed_s", 0.0))
        row.accesses_done = int(payload.get("accesses_done", 0))
        self._render()

    def finish(self) -> None:
        """Force a final frame so the last state is what stays behind."""
        if self._finished:
            return
        self._finished = True
        self._render(force=True)
        if not self._tty:
            return
        self.stream.write("\n")
        self.stream.flush()

    # ------------------------------------------------------------------
    def _row(self, worker_id: int) -> _WorkerRow:
        row = self.workers.get(worker_id)
        if row is None:
            row = _WorkerRow(worker_id, self._clock())
            self.workers[worker_id] = row
        row.last_seen = self._clock()
        return row

    def eta_s(self, now: Optional[float] = None) -> Optional[float]:
        """Naive remaining-time estimate from mean landed-job pace."""
        now = self._clock() if now is None else now
        if not self.done or self.total <= self.done:
            return None
        pace = (now - self._t0) / self.done
        return pace * (self.total - self.done)

    def render_lines(self) -> List[str]:
        now = self._clock()
        pct = (100.0 * self.done / self.total) if self.total else 100.0
        eta = self.eta_s(now)
        head = (f"{self.label}: workers {len(self.workers)}  "
                f"jobs {self.done}/{self.total} ({pct:.0f}%)  "
                f"cache {self.cache_hits}  resumed {self.resumed}  "
                f"retries {self.retries}  errors {self.errors}")
        if eta is not None:
            head += f"  eta {_fmt_duration(eta)}"
        lines = [head]
        for worker_id in sorted(self.workers):
            row = self.workers[worker_id]
            state = "busy" if row.busy else "idle"
            label = (row.label or "-")[:34]
            rate = row.rate(now)
            rate_text = f"{_fmt_quantity(rate)} acc/s" if rate > 0 else ""
            lines.append(
                f"  w{row.worker_id:<3d} {state:<4s} {label:<34s} "
                f"#{row.attempt}  {row.elapsed_s:6.1f}s  "
                f"{rate_text:>12s}  {row.jobs_done} done"
                + (f"  [{row.last_status}]"
                   if row.last_status and row.last_status != "ok" else "")
            )
        return lines

    def _render(self, force: bool = False) -> None:
        now = self._clock()
        # Pipes get a frame at most every 4 intervals to keep CI logs
        # readable; TTYs redraw in place at the configured cadence.
        min_gap = self.interval_s if self._tty else self.interval_s * 4
        if not force and now - self._last_render < min_gap:
            return
        self._last_render = now
        lines = self.render_lines()
        if self._tty:
            out = ""
            if self._last_lines:
                out += f"\x1b[{self._last_lines}F\x1b[J"
            out += "\n".join(lines)
            self.stream.write(out + "\n")
            self._last_lines = len(lines)
        else:
            self.stream.write("\n".join(lines) + "\n")
        self.stream.flush()


def _fmt_duration(seconds: float) -> str:
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 90 * 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _fmt_quantity(value: float) -> str:
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= scale:
            return f"{value / scale:.1f}{suffix}"
    return f"{value:.0f}"
