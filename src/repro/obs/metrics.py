"""Fleet-level metrics: a dependency-free registry of labeled instruments.

Simulator telemetry (PR 4) watches the *simulated machine*; this module
watches the *experiment system itself* -- worker spawns and crashes,
result-cache traffic, shared-memory dispatch volume, campaign expansion
-- through the three instrument shapes every metrics stack converges
on:

- :class:`Counter` -- monotonically increasing totals (``inc``);
- :class:`Gauge` -- instantaneous levels (``set``/``inc``/``dec``);
- :class:`HistogramMetric` -- bucketed distributions (``observe``).

Instruments are labeled: one ``Counter`` named
``repro_cache_lookups_total`` holds a separate series per label set
(``outcome="hit"`` vs ``outcome="miss"``), exactly like Prometheus
client libraries, and the registry exports in both of the formats the
rest of the repo's artifact discipline expects:

- :meth:`MetricsRegistry.to_jsonl` -- one JSON record per series,
  round-trippable via :meth:`MetricsRegistry.from_jsonl`;
- :meth:`MetricsRegistry.to_prometheus` -- the text exposition format,
  pasteable into any Prometheus/OpenMetrics scraper or ``promtool``.

Zero overhead when off is non-negotiable here like everywhere else in
``repro.obs``: a disabled registry hands every caller the shared
:data:`NULL_INSTRUMENT`, whose methods are empty -- instrumented sites
hold the instrument they fetched at construction time and pay one no-op
method call on *rare* events (a job lands, a worker dies), never per
access.  The global registry (:func:`get_registry`) starts disabled
unless ``$REPRO_METRICS`` enables it; the CLI's ``--metrics PATH``
installs an enabled registry for one run and snapshots it at the end.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Environment switch: ``1``/``on``/``true`` arms the global registry.
METRICS_ENV = "REPRO_METRICS"

#: Default histogram bucket upper bounds (seconds-flavoured: harness
#: latencies span sub-millisecond cache hits to multi-minute jobs).
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0, 300.0)

#: Canonical label-set key: sorted ``(name, value)`` pairs.
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _NullInstrument:
    """The shared no-op a disabled registry hands to every caller.

    Implements the union of the Counter/Gauge/HistogramMetric emission
    APIs so call sites never branch on whether metrics are enabled.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        return None

    def dec(self, amount: float = 1.0, **labels) -> None:
        return None

    def set(self, value: float, **labels) -> None:
        return None

    def observe(self, value: float, **labels) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class _Instrument:
    """Shared naming/locking plumbing of the three live instruments."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(
                f"metric name must be alphanumeric/underscore, got {name!r}"
            )
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    # Subclasses fill these in.
    def samples(self) -> List[dict]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonic total, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[dict]:
        with self._lock:
            return [
                {"name": self.name, "type": self.kind, "help": self.help,
                 "labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]


class Gauge(_Instrument):
    """Instantaneous level, one series per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[dict]:
        with self._lock:
            return [
                {"name": self.name, "type": self.kind, "help": self.help,
                 "labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]


class HistogramMetric(_Instrument):
    """Bucketed distribution with Prometheus-style cumulative exposition.

    Bucket bounds are upper-inclusive edges; every observation also
    lands in the implicit ``+Inf`` bucket, and ``sum``/``count`` ride
    along so rates and means are recoverable.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # Per label set: (per-bound counts, +Inf count folded at end,
        # sum, count).
        self._series: Dict[_LabelKey, List[float]] = {}
        self._sums: Dict[_LabelKey, float] = {}
        self._counts: Dict[_LabelKey, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._series.get(key)
            if counts is None:
                counts = [0.0] * (len(self.bounds) + 1)
                self._series[key] = counts
            placed = False
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[index] += 1
                    placed = True
                    break
            if not placed:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, **labels) -> int:
        return self._counts.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def samples(self) -> List[dict]:
        with self._lock:
            return [
                {"name": self.name, "type": self.kind, "help": self.help,
                 "labels": dict(key), "bounds": list(self.bounds),
                 "buckets": list(self._series[key]),
                 "sum": self._sums[key], "count": self._counts[key]}
                for key in sorted(self._series)
            ]


class MetricsRegistry:
    """Named instruments plus the two exporters.

    Fetching an already-registered name returns the same instrument
    (idempotent registration is what lets every ``ResultCache`` or
    ``WorkerPool`` constructed during one run share series); fetching a
    name under a different instrument kind raises.  A disabled registry
    returns :data:`NULL_INSTRUMENT` from every factory and exports
    nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _register(self, cls, name: str, help: str, **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  ) -> HistogramMetric:
        return self._register(HistogramMetric, name, help, buckets=buckets)

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """Every series of every instrument as plain JSON-safe dicts."""
        records: List[dict] = []
        for instrument in self.instruments():
            records.extend(instrument.samples())
        return records

    def to_jsonl(self, path: str) -> None:
        """One JSON record per series (the artifact form)."""
        with open(path, "w") as handle:
            for record in self.snapshot():
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    @classmethod
    def from_jsonl(cls, path: str) -> "MetricsRegistry":
        """Rebuild a registry whose :meth:`snapshot` equals the file's.

        The round trip is what ``repro status``-style tooling relies on:
        a snapshot written by one process must reconstruct to identical
        series in another.
        """
        registry = cls(enabled=True)
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                labels = record.get("labels", {})
                kind = record.get("type")
                if kind == "counter":
                    registry.counter(
                        record["name"], record.get("help", "")
                    ).inc(record["value"], **labels)
                elif kind == "gauge":
                    registry.gauge(
                        record["name"], record.get("help", "")
                    ).set(record["value"], **labels)
                elif kind == "histogram":
                    histogram = registry.histogram(
                        record["name"], record.get("help", ""),
                        buckets=record["bounds"],
                    )
                    key = _label_key(labels)
                    with histogram._lock:
                        histogram._series[key] = [
                            float(b) for b in record["buckets"]
                        ]
                        histogram._sums[key] = float(record["sum"])
                        histogram._counts[key] = int(record["count"])
                else:
                    raise ValueError(
                        f"unknown metric type {kind!r} in {path}"
                    )
        return registry

    def to_prometheus(self) -> str:
        """Text exposition format (the ``/metrics`` wire format)."""
        lines: List[str] = []
        for instrument in self.instruments():
            samples = instrument.samples()
            if not samples:
                continue
            if instrument.help:
                lines.append(f"# HELP {instrument.name} "
                             f"{_escape_help(instrument.help)}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            for sample in samples:
                if instrument.kind == "histogram":
                    lines.extend(_histogram_exposition(sample))
                else:
                    lines.append(
                        f"{sample['name']}"
                        f"{_format_labels(sample['labels'])} "
                        f"{_format_value(sample['value'])}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> None:
        """Snapshot to ``path``: ``.prom`` suffix selects exposition
        text, anything else the JSONL artifact form."""
        if path.endswith(".prom"):
            with open(path, "w") as handle:
                handle.write(self.to_prometheus())
        else:
            self.to_jsonl(path)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]]
                   = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                    for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _histogram_exposition(sample: dict) -> List[str]:
    """Cumulative ``_bucket`` series plus ``_sum``/``_count``."""
    lines: List[str] = []
    labels = sample["labels"]
    cumulative = 0.0
    for bound, count in zip(sample["bounds"], sample["buckets"]):
        cumulative += count
        lines.append(
            f"{sample['name']}_bucket"
            f"{_format_labels(labels, ('le', _format_value(bound)))} "
            f"{_format_value(cumulative)}"
        )
    cumulative += sample["buckets"][-1]
    lines.append(
        f"{sample['name']}_bucket"
        f"{_format_labels(labels, ('le', '+Inf'))} "
        f"{_format_value(cumulative)}"
    )
    lines.append(f"{sample['name']}_sum{_format_labels(labels)} "
                 f"{_format_value(sample['sum'])}")
    lines.append(f"{sample['name']}_count{_format_labels(labels)} "
                 f"{_format_value(sample['count'])}")
    return lines


# ----------------------------------------------------------------------
# The process-global registry instrumented call sites fetch from.
# ----------------------------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None
_REGISTRY_LOCK = threading.Lock()


def metrics_enabled() -> bool:
    """``$REPRO_METRICS`` truthiness (off by default)."""
    raw = os.environ.get(METRICS_ENV, "").strip().lower()
    return raw in ("1", "on", "true", "yes")


def get_registry() -> MetricsRegistry:
    """The global registry; created on first use, honouring the env."""
    global _REGISTRY
    if _REGISTRY is None:
        with _REGISTRY_LOCK:
            if _REGISTRY is None:
                _REGISTRY = MetricsRegistry(enabled=metrics_enabled())
    return _REGISTRY


def set_registry(registry: Optional[MetricsRegistry],
                 ) -> Optional[MetricsRegistry]:
    """Swap the global registry (``None`` resets to env-default lazy
    creation); returns the previous one so callers can restore it."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous = _REGISTRY
        _REGISTRY = registry
    return previous
