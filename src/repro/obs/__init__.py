"""Observability: zero-cost-when-off telemetry for simulation runs.

Simulator-level pieces, all opt-in per run and all strictly read-only
with respect to the simulated machine:

- :mod:`repro.obs.timeseries` -- windowed metric recording (MPKI, hit
  rates, free-queue depth, bandwidth, per-core IPC) via cumulative
  counter deltas;
- :mod:`repro.obs.events` -- an event tracer (cTLB fills, evictions,
  NC pins, validation sweeps) with ring-buffer retention and Chrome
  trace-event/Perfetto JSON export;
- :mod:`repro.obs.telemetry` -- the bundle that installs/uninstalls
  both onto a design, plus the off-package latency histogram.

Fleet-level pieces watch the experiment system itself:

- :mod:`repro.obs.metrics` -- a dependency-free registry of labeled
  counters/gauges/histograms over the pool, cache, shared-memory
  dispatch and campaign expansion, exported as JSONL or Prometheus
  text;
- :mod:`repro.obs.harness` -- harness-run observation (job lifecycle
  on wall-clock time, one Perfetto track per pool worker);
- :mod:`repro.obs.live` -- the ``--live`` per-worker dashboard fed by
  worker heartbeats;
- :mod:`repro.obs.report` -- ASCII sparkline rendering of artifacts.

When nothing is installed the hot path pays nothing: the only hooks are
prebound no-ops on rare paths, shared null metric instruments, and one
``getattr`` per run.
"""

from repro.obs.events import EventTracer, merge_perfetto_files, null_event
from repro.obs.harness import HarnessObserver
from repro.obs.live import CompositeObserver, LiveMonitor
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
)
from repro.obs.report import render_timeseries, sparkline
from repro.obs.telemetry import Telemetry, make_telemetry
from repro.obs.timeseries import TimeseriesRecorder, load_timeseries

__all__ = [
    "CompositeObserver",
    "EventTracer",
    "HarnessObserver",
    "LiveMonitor",
    "MetricsRegistry",
    "Telemetry",
    "TimeseriesRecorder",
    "get_registry",
    "load_timeseries",
    "make_telemetry",
    "merge_perfetto_files",
    "metrics_enabled",
    "null_event",
    "render_timeseries",
    "set_registry",
    "sparkline",
]
