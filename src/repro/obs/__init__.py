"""Observability: zero-cost-when-off telemetry for simulation runs.

Three cooperating pieces, all opt-in per run and all strictly read-only
with respect to the simulated machine:

- :mod:`repro.obs.timeseries` -- windowed metric recording (MPKI, hit
  rates, free-queue depth, bandwidth, per-core IPC) via cumulative
  counter deltas;
- :mod:`repro.obs.events` -- an event tracer (cTLB fills, evictions,
  NC pins, validation sweeps) with ring-buffer retention and Chrome
  trace-event/Perfetto JSON export;
- :mod:`repro.obs.telemetry` -- the bundle that installs/uninstalls
  both onto a design, plus the off-package latency histogram.

:mod:`repro.obs.harness` observes harness runs (job lifecycle on
wall-clock time); :mod:`repro.obs.report` renders artifacts as ASCII
sparklines.  When nothing is installed the hot path pays nothing: the
only hooks are prebound no-ops on rare paths and one ``getattr`` per
run.
"""

from repro.obs.events import EventTracer, null_event
from repro.obs.harness import HarnessObserver
from repro.obs.report import render_timeseries, sparkline
from repro.obs.telemetry import Telemetry, make_telemetry
from repro.obs.timeseries import TimeseriesRecorder, load_timeseries

__all__ = [
    "EventTracer",
    "HarnessObserver",
    "Telemetry",
    "TimeseriesRecorder",
    "load_timeseries",
    "make_telemetry",
    "null_event",
    "render_timeseries",
    "sparkline",
]
