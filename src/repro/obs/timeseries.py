"""Windowed time-series recording over a running design.

The :class:`TimeseriesRecorder` turns the simulator's cumulative
counters into per-window behaviour-over-time: it shadows
``design.access_cycles`` with a sampling wrapper (the same
instance-attribute trick the invariant checker uses), and at every
window boundary snapshots :meth:`~repro.designs.base.MemorySystemDesign.
timeseries_probe` and stores the counter *deltas* plus the instantaneous
gauges.  Nothing is accounted per access -- a window costs one probe --
so enabling telemetry cannot perturb the simulated machine, and leaving
it off costs nothing at all.

Windows are measured in ``accesses`` (every N memory references) or in
``cycles`` (every N core cycles of the interleaved clock, which is
globally non-decreasing).  The result is a compact columnar buffer
dumpable to JSONL or CSV and renderable by ``repro report``.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional, Tuple

#: Default sampling interval (in the recorder's unit).
DEFAULT_INTERVAL = 1024

#: Counters consumed by the derived columns below; anything else a
#: design's probe reports lands in the artifact as a raw ``d_<name>``
#: delta column.
_CONSUMED = frozenset((
    "accesses", "l3_accesses", "tlb_hits", "tlb_refs", "l3_hits",
    "l3_refs", "inpkg_bytes", "offpkg_bytes", "inpkg_busy_ns",
    "offpkg_busy_ns", "row_hits", "row_refs",
))

_MISSING = object()


def _ratio(num: float, den: float) -> float:
    return num / den if den > 0.0 else 0.0


class TimeseriesRecorder:
    """Samples a design's counters into per-window metric columns."""

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        unit: str = "accesses",
        tracer=None,
    ):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if unit not in ("accesses", "cycles"):
            raise ValueError(f"unit must be 'accesses' or 'cycles', "
                             f"got {unit!r}")
        self.interval = interval
        self.unit = unit
        self.tracer = tracer
        self.columns: Dict[str, List[float]] = {}
        self.meta: Dict[str, object] = {"interval": interval, "unit": unit}
        self.windows = 0
        self._design = None
        self._cores: List[Tuple[int, object]] = []
        self._core_prev: Dict[int, Tuple[float, float]] = {}
        self._prev_counters: Dict[str, float] = {}
        self._prev_t_ns = 0.0
        self._last_now_ns = 0.0
        self._saved_access_cycles = _MISSING
        self._installed = False

    # ------------------------------------------------------------------
    # Install / uninstall (mirrors InvariantChecker's wrapper protocol)
    # ------------------------------------------------------------------
    def install(self, design) -> None:
        """Shadow ``design.access_cycles`` with the sampling wrapper.

        Must run before ``run_interleaved`` binds ``access_cycles``.  If
        an invariant checker is already installed its wrapper is what we
        wrap, and :meth:`uninstall` restores it rather than deleting it.
        """
        if self._installed:
            return
        self._design = design
        self.meta["design"] = design.name
        counters, _gauges = design.timeseries_probe()
        self._prev_counters = counters
        self._prev_t_ns = 0.0
        # Whatever currently shadows access_cycles (checker wrapper, or
        # nothing) is the chain we extend and must later put back.
        self._saved_access_cycles = design.__dict__.get(
            "access_cycles", _MISSING
        )
        inner = design.access_cycles
        sample = self._sample

        if self.unit == "accesses":
            interval = self.interval
            countdown = [interval]

            def sampling_access_cycles(core_id, process_id, virtual_page,
                                       line_index, is_write, now_ns):
                cycles = inner(core_id, process_id, virtual_page,
                               line_index, is_write, now_ns)
                self._last_now_ns = now_ns
                countdown[0] -= 1
                if countdown[0] <= 0:
                    countdown[0] = interval
                    sample(now_ns)
                return cycles
        else:
            # Cycle windows: boundaries on the interleaved clock, which
            # only moves forward, so a simple high-water check suffices.
            interval_ns = self.interval / design.config.core.frequency_ghz
            boundary = [interval_ns]

            def sampling_access_cycles(core_id, process_id, virtual_page,
                                       line_index, is_write, now_ns):
                cycles = inner(core_id, process_id, virtual_page,
                               line_index, is_write, now_ns)
                self._last_now_ns = now_ns
                if now_ns >= boundary[0]:
                    while boundary[0] <= now_ns:
                        boundary[0] += interval_ns
                    sample(now_ns)
                return cycles

        design.access_cycles = sampling_access_cycles
        self._installed = True

    def uninstall(self) -> None:
        """Restore whatever shadowed ``access_cycles`` before us."""
        if not self._installed:
            return
        if self._saved_access_cycles is _MISSING:
            try:
                del self._design.access_cycles
            except AttributeError:
                pass
        else:
            self._design.access_cycles = self._saved_access_cycles
        self._saved_access_cycles = _MISSING
        self._installed = False

    def attach_cores(self, cores) -> None:
        """Receive ``[(core_id, model), ...]`` from ``run_interleaved``
        so windows can carry per-core IPC."""
        self._cores = list(cores)
        self._core_prev = {
            core_id: (model.instructions, model.cycles)
            for core_id, model in self._cores
        }

    def finalize(self) -> None:
        """Flush the trailing partial window (and guarantee at least one
        window for any run that performed accesses)."""
        if self._design is None:
            return
        counters, _gauges = self._design.timeseries_probe()
        if counters.get("accesses", 0.0) != self._prev_counters.get(
                "accesses", 0.0):
            self._sample(max(self._last_now_ns, self._prev_t_ns))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample(self, now_ns: float) -> None:
        counters, gauges = self._design.timeseries_probe()
        prev = self._prev_counters
        delta = {key: value - prev.get(key, 0.0)
                 for key, value in counters.items()}
        self._prev_counters = counters
        dt_ns = now_ns - self._prev_t_ns
        self._prev_t_ns = now_ns

        instructions = 0.0
        ipc_total = 0.0
        per_core: List[Tuple[int, float]] = []
        for core_id, model in self._cores:
            prev_instr, prev_cycles = self._core_prev.get(core_id, (0.0, 0.0))
            d_instr = model.instructions - prev_instr
            d_cycles = model.cycles - prev_cycles
            self._core_prev[core_id] = (model.instructions, model.cycles)
            instructions += d_instr
            core_ipc = _ratio(d_instr, d_cycles)
            ipc_total += core_ipc
            per_core.append((core_id, core_ipc))

        row: Dict[str, float] = {
            "t_ns": now_ns,
            "accesses": delta.get("accesses", 0.0),
            "instructions": instructions,
            "mpki": _ratio(1000.0 * delta.get("l3_accesses", 0.0),
                           instructions),
            "ipc": ipc_total,
            "ctlb_hit_rate": _ratio(delta.get("tlb_hits", 0.0),
                                    delta.get("tlb_refs", 0.0)),
            "l3_hit_rate": _ratio(delta.get("l3_hits", 0.0),
                                  delta.get("l3_refs", 0.0)),
            "row_hit_rate": _ratio(delta.get("row_hits", 0.0),
                                   delta.get("row_refs", 0.0)),
            # bytes/ns == GB/s: the unit-free arithmetic the energy
            # account also relies on.
            "inpkg_gbps": _ratio(delta.get("inpkg_bytes", 0.0), dt_ns),
            "offpkg_gbps": _ratio(delta.get("offpkg_bytes", 0.0), dt_ns),
            "inpkg_bus_util": _ratio(delta.get("inpkg_busy_ns", 0.0), dt_ns),
            "offpkg_bus_util": _ratio(delta.get("offpkg_busy_ns", 0.0),
                                      dt_ns),
        }
        for key, value in gauges.items():
            row[key] = value
        for core_id, core_ipc in per_core:
            row[f"ipc_core{core_id}"] = core_ipc
        for key, value in delta.items():
            if key not in _CONSUMED:
                row[f"d_{key}"] = value

        columns = self.columns
        for key, value in row.items():
            columns.setdefault(key, []).append(value)
        self.windows += 1

        if self.tracer is not None:
            self.tracer.counter("free_queue", now_ns, {
                "depth": row.get("free_queue_depth", 0.0),
                "alpha": row.get("free_queue_alpha", 0.0),
            })
            self.tracer.counter("bandwidth_gbps", now_ns, {
                "in_package": row["inpkg_gbps"],
                "off_package": row["offpkg_gbps"],
            })
            self.tracer.counter("hit_rates", now_ns, {
                "ctlb": row["ctlb_hit_rate"],
                "l3": row["l3_hit_rate"],
            })

    # ------------------------------------------------------------------
    # Dump / load
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str, histogram=None,
                 extra_meta: Optional[Dict[str, object]] = None) -> None:
        """Write ``meta`` + one compact record per window (+ an optional
        trailing histogram record) as JSONL."""
        names = list(self.columns)
        meta: Dict[str, object] = {"record": "meta", "kind": "timeseries"}
        meta.update(self.meta)
        if extra_meta:
            meta.update(extra_meta)
        meta["columns"] = names
        meta["windows"] = self.windows
        with open(path, "w") as handle:
            handle.write(json.dumps(meta) + "\n")
            for index in range(self.windows):
                record = {
                    "record": "window",
                    "v": [self.columns[name][index] for name in names],
                }
                handle.write(json.dumps(record) + "\n")
            if histogram is not None:
                record = {"record": "histogram"}
                record.update(histogram.to_dict())
                handle.write(json.dumps(record) + "\n")

    def to_csv(self, path: str) -> None:
        names = list(self.columns)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for index in range(self.windows):
                writer.writerow(
                    [self.columns[name][index] for name in names]
                )


def load_timeseries(path: str):
    """Load a timeseries artifact written by :meth:`to_jsonl` or
    :meth:`to_csv`.

    Returns ``(meta, columns, histogram_dict_or_None)``; CSV artifacts
    come back with an empty meta dict and no histogram.
    """
    with open(path) as handle:
        first = handle.readline()
        try:
            head = json.loads(first)
        except json.JSONDecodeError:
            head = None
        if head is None:
            # CSV: the first line is the header row.
            names = next(csv.reader([first]))
            columns: Dict[str, List[float]] = {name: [] for name in names}
            for row in csv.reader(handle):
                for name, value in zip(names, row):
                    columns[name].append(float(value))
            return {}, columns, None
        if head.get("record") != "meta" or head.get("kind") != "timeseries":
            raise ValueError(f"{path} is not a timeseries artifact")
        names = list(head["columns"])
        columns = {name: [] for name in names}
        histogram = None
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("record") == "window":
                for name, value in zip(names, record["v"]):
                    columns[name].append(float(value))
            elif record.get("record") == "histogram":
                histogram = record
        return head, columns, histogram
