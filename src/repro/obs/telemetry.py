"""The telemetry bundle: one object that turns observability on and off.

``Telemetry`` owns an optional :class:`~repro.obs.timeseries.
TimeseriesRecorder`, an optional :class:`~repro.obs.events.EventTracer`
and the off-package latency :class:`~repro.common.stats.Histogram`, and
knows how to wire all three into a design and tear them back out:

- ``install(design)`` rebinds the design's (and the tagless engine's)
  prebound ``trace_event`` no-op to the tracer, shadows
  ``access_cycles`` with the recorder's sampling wrapper, hooks
  ``obs_attach_cores`` so ``run_interleaved`` hands over the core
  models, and arms the off-package device's latency histogram;
- ``uninstall()`` restores every attribute it touched, so a design is
  bit-for-bit back on its unobserved fast path afterwards.

``Simulator.run(..., telemetry=...)`` installs after the warmup
boundary (telemetry observes the measured window, like the stats) and
uninstalls before the invariant checker does, preserving the wrapper
chain.
"""

from __future__ import annotations

from typing import Optional

from repro.common.stats import Histogram
from repro.obs.events import EventTracer, null_event
from repro.obs.timeseries import TimeseriesRecorder


class Telemetry:
    """Bundles recorder + tracer + histogram behind one install switch."""

    def __init__(
        self,
        timeseries: Optional[TimeseriesRecorder] = None,
        tracer: Optional[EventTracer] = None,
        latency_histogram: bool = True,
    ):
        self.timeseries = timeseries
        self.tracer = tracer
        self.histogram: Optional[Histogram] = (
            Histogram("offpkg_demand_latency_ns") if latency_histogram
            else None
        )
        self._design = None
        self._installed = False

    # ------------------------------------------------------------------
    def install(self, design) -> None:
        if self._installed:
            return
        self._design = design
        tracer = self.tracer
        if tracer is not None:
            design.trace_event = tracer.event
            engine = getattr(design, "engine", None)
            if engine is not None:
                engine.trace_event = tracer.event
            tracer.begin("sim", "measured", 0.0)
        if self.histogram is not None:
            design.off_package.latency_histogram = self.histogram
        if self.timeseries is not None:
            if self.timeseries.tracer is None:
                self.timeseries.tracer = tracer
            self.timeseries.install(design)
            design.obs_attach_cores = self.timeseries.attach_cores
        self._installed = True

    def uninstall(self) -> None:
        """Flush the recorder and restore every instrumented attribute."""
        if not self._installed:
            return
        design = self._design
        if self.timeseries is not None:
            self.timeseries.finalize()
            self.timeseries.uninstall()
            if "obs_attach_cores" in design.__dict__:
                del design.obs_attach_cores
        if self.tracer is not None:
            self.tracer.end(
                "sim", "measured",
                self.timeseries._last_now_ns if self.timeseries else 0.0,
            )
            design.trace_event = null_event
            engine = getattr(design, "engine", None)
            if engine is not None:
                engine.trace_event = null_event
        if self.histogram is not None:
            design.off_package.latency_histogram = None
        self._installed = False

    # ------------------------------------------------------------------
    def write_artifacts(
        self,
        trace_path: Optional[str] = None,
        timeseries_path: Optional[str] = None,
        workload: Optional[str] = None,
    ) -> None:
        """Dump whatever was captured to the requested paths."""
        if trace_path is not None and self.tracer is not None:
            name = self._design.name if self._design is not None else "repro"
            self.tracer.to_perfetto(trace_path, process_name=name)
        if timeseries_path is not None and self.timeseries is not None:
            extra = {"workload": workload} if workload else {}
            if self.tracer is not None:
                # Capture-health ledger: lets `repro report` say whether
                # the ring buffer shed events during this run.
                extra["trace_events"] = {
                    "emitted": self.tracer.emitted,
                    "retained": len(self.tracer.events()),
                    "dropped": self.tracer.dropped,
                }
            if timeseries_path.endswith(".csv"):
                self.timeseries.to_csv(timeseries_path)
            else:
                self.timeseries.to_jsonl(
                    timeseries_path, histogram=self.histogram,
                    extra_meta=extra,
                )


def make_telemetry(
    interval: int = 1024,
    unit: str = "accesses",
    timeseries: bool = True,
    trace: bool = True,
    capacity: int = 65_536,
) -> Telemetry:
    """Convenience constructor used by the CLI commands."""
    tracer = EventTracer(capacity=capacity) if trace else None
    recorder = (
        TimeseriesRecorder(interval=interval, unit=unit, tracer=tracer)
        if timeseries else None
    )
    return Telemetry(timeseries=recorder, tracer=tracer)
