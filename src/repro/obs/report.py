"""ASCII sparkline rendering for timeseries artifacts (``repro report``).

Turns the columnar windows of a telemetry artifact into one line per
metric -- a Unicode sparkline plus min/mean/max/last -- so a run's
transient behaviour (cTLB warmup, free-queue pressure, bandwidth
bursts) is readable in a terminal without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Columns every artifact has but that read better as the x-axis than
#: as their own sparkline row.
_AXIS_COLUMNS = ("t_ns",)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a fixed-width sparkline string.

    Longer series are bucketed (bucket mean) down to ``width``; shorter
    ones render one glyph per point.  A constant series renders at the
    lowest level rather than dividing by zero.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    points = [float(v) for v in values]
    if not points:
        return ""
    if len(points) > width:
        bucketed = []
        for index in range(width):
            lo = index * len(points) // width
            hi = max(lo + 1, (index + 1) * len(points) // width)
            chunk = points[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        points = bucketed
    low = min(points)
    span = max(points) - low
    top = len(SPARK_CHARS) - 1
    if span <= 0.0:
        return SPARK_CHARS[0] * len(points)
    return "".join(
        SPARK_CHARS[int((value - low) / span * top)] for value in points
    )


def _format(value: float) -> str:
    if value == 0.0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6 or magnitude < 1e-3:
        return f"{value:.3g}"
    if magnitude >= 100:
        return f"{value:,.0f}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


def render_timeseries(
    meta: Dict[str, object],
    columns: Dict[str, List[float]],
    histogram: Optional[Dict[str, object]] = None,
    width: int = 60,
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """Build the full ``repro report`` text for one artifact."""
    lines: List[str] = []
    design = meta.get("design", "?")
    workload = meta.get("workload")
    windows = next((len(v) for v in columns.values()), 0)
    title = f"timeseries: {design}"
    if workload:
        title += f" on {workload}"
    title += (f", {windows} windows of {meta.get('interval', '?')} "
              f"{meta.get('unit', '?')}")
    lines.append(title)

    trace_events = meta.get("trace_events")
    if isinstance(trace_events, dict):
        dropped = int(trace_events.get("dropped", 0))
        health = ("ring buffer full -- raise EventTracer capacity"
                  if dropped else "no capture loss")
        lines.append(
            f"events: {trace_events.get('emitted', 0)} emitted, "
            f"{trace_events.get('retained', 0)} retained, "
            f"{dropped} dropped ({health})"
        )

    t_axis = columns.get("t_ns")
    if t_axis:
        lines.append(f"span: 0 .. {_format(t_axis[-1])} ns")
    lines.append("")

    wanted = set(metrics) if metrics else None
    name_width = max(
        (len(n) for n in columns if n not in _AXIS_COLUMNS), default=6
    )
    for name, values in columns.items():
        if name in _AXIS_COLUMNS or not values:
            continue
        if wanted is not None and name not in wanted:
            continue
        mean = sum(values) / len(values)
        lines.append(
            f"{name:<{name_width}s} {sparkline(values, width)} "
            f"min {_format(min(values))}  mean {_format(mean)}  "
            f"max {_format(max(values))}  last {_format(values[-1])}"
        )

    if histogram is not None and histogram.get("count"):
        lines.append("")
        lines.append(
            f"histogram {histogram.get('name', '?')}: "
            f"n={histogram['count']}  mean {_format(histogram['mean'])}  "
            f"min {_format(histogram['min'])}  "
            f"max {_format(histogram['max'])}"
        )
        buckets = [float(b) for b in histogram.get("buckets", [])]
        # Trim the empty tail so the sparkline spans the observed range.
        last = max((i for i, b in enumerate(buckets) if b), default=0)
        lines.append(
            f"{'log2 buckets':<{name_width}s} "
            f"{sparkline(buckets[:last + 1], width)} "
            f"(bucket i counts values in [2^(i-1), 2^i))"
        )
    return "\n".join(lines)
