"""Event tracing with ring-buffer retention and Perfetto export.

The :class:`EventTracer` collects discrete simulation events -- cTLB
miss-handler fills, free-queue evictions, NC transitions, validation
sweeps, harness job lifecycle -- into a bounded ring buffer and exports
them as Chrome trace-event JSON, the format ``ui.perfetto.dev`` (and
``chrome://tracing``) opens directly.

Emission sites follow the repository's zero-cost-when-off discipline:
components carry a prebound :func:`null_event` attribute that installed
telemetry rebinds to :meth:`EventTracer.event`, so the disabled path
pays one no-op call on *rare* paths only (misses, evictions) and nothing
at all per access.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Default ring-buffer capacity: enough for the event density of a
#: figure-sized run while bounding memory for arbitrarily long ones.
DEFAULT_CAPACITY = 65_536


def null_event(cat, name, ts_ns, dur_ns=None, tid=0, args=None) -> None:
    """The prebound no-op every traceable component starts with.

    Signature-compatible with :meth:`EventTracer.event`; rebinding the
    attribute is the entire enable/disable mechanism (the same trick
    ``validate=`` uses for ``access_cycles``).
    """
    return None


# One buffered event: (ts_ns, phase, cat, name, dur_ns, tid, args).
_Event = Tuple[float, str, str, str, float, int, Optional[dict]]


class EventTracer:
    """Bounded buffer of trace events with Chrome/Perfetto JSON export.

    Retention is ring-buffer style: once ``capacity`` events are held,
    each new event drops the oldest one.  ``emitted`` counts everything
    ever offered, so ``dropped`` quantifies what the ring shed -- the
    exporter records it in the trace metadata rather than pretending the
    run was fully covered.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[_Event] = deque(maxlen=capacity)
        self.emitted = 0

    # ------------------------------------------------------------------
    # Emission API (what the instrumented components call)
    # ------------------------------------------------------------------
    def event(self, cat, name, ts_ns, dur_ns=None, tid=0, args=None) -> None:
        """Record one event.

        ``dur_ns=None`` emits an instant event ("i"); a duration emits a
        complete event ("X") spanning ``[ts_ns, ts_ns + dur_ns]``.
        """
        self.emitted += 1
        if dur_ns is None:
            self._events.append((ts_ns, "i", cat, name, 0.0, tid, args))
        else:
            self._events.append((ts_ns, "X", cat, name, dur_ns, tid, args))

    def begin(self, cat: str, name: str, ts_ns: float, tid: int = 0,
              args: Optional[dict] = None) -> None:
        """Open a duration slice (must be closed by a matching end)."""
        self.emitted += 1
        self._events.append((ts_ns, "B", cat, name, 0.0, tid, args))

    def end(self, cat: str, name: str, ts_ns: float, tid: int = 0) -> None:
        """Close the innermost open slice of this name/tid."""
        self.emitted += 1
        self._events.append((ts_ns, "E", cat, name, 0.0, tid, None))

    def counter(self, name: str, ts_ns: float,
                values: Dict[str, float], tid: int = 0) -> None:
        """Record a counter-track sample (rendered as area charts)."""
        self.emitted += 1
        self._events.append((ts_ns, "C", "counter", name, 0.0, tid,
                             dict(values)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events shed by ring-buffer retention."""
        return self.emitted - len(self._events)

    def events(self) -> List[_Event]:
        """Snapshot of the retained events in emission order."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_perfetto_dict(self, process_name: str = "repro",
                         pid: int = 0,
                         thread_names: Optional[Dict[int, str]] = None,
                         ) -> Dict[str, object]:
        """Build the Chrome trace-event JSON object.

        Events are sorted by timestamp (stable, so properly nested B/E
        pairs emitted at identical timestamps keep their order) and
        timestamps are converted from simulation nanoseconds to the
        microseconds the format specifies.  ``thread_names`` labels tid
        tracks (``{0: "run", 1: "worker 0"}``) via ``thread_name``
        metadata events -- how per-worker tracks get their names in the
        Perfetto UI.
        """
        trace_events: List[Dict[str, object]] = [{
            "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": process_name},
        }]
        for tid, name in sorted((thread_names or {}).items()):
            trace_events.append({
                "ph": "M", "pid": pid, "tid": tid, "ts": 0,
                "name": "thread_name", "args": {"name": name},
            })
        for ts_ns, phase, cat, name, dur_ns, tid, args in sorted(
                self._events, key=lambda e: e[0]):
            record: Dict[str, object] = {
                "name": name, "cat": cat, "ph": phase,
                "ts": ts_ns / 1000.0, "pid": pid, "tid": tid,
            }
            if phase == "X":
                record["dur"] = dur_ns / 1000.0
            if args:
                record["args"] = args
            trace_events.append(record)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "emitted": self.emitted,
                "retained": len(self._events),
                "dropped": self.dropped,
            },
        }

    def to_perfetto(self, path: str, process_name: str = "repro",
                    pid: int = 0,
                    thread_names: Optional[Dict[int, str]] = None) -> None:
        """Write the trace as Perfetto-loadable JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_perfetto_dict(process_name, pid,
                                            thread_names), handle)
            handle.write("\n")


def merge_perfetto_files(paths, out_path: str) -> Dict[str, object]:
    """Merge trace files into one Perfetto-loadable JSON document.

    Each input keeps its own process track: events of input *i* are
    re-pidded to ``i``, so a harness-lifecycle trace (pid 0, one thread
    per worker) and a sim-level telemetry trace (pid 1) land side by
    side in one timeline instead of colliding on pid 0.  ``otherData``
    drop ledgers are summed -- a merged trace must not launder away
    what its inputs shed.  Returns the merged document.
    """
    events: List[Dict[str, object]] = []
    other = {"emitted": 0, "retained": 0, "dropped": 0}
    sources = []
    for new_pid, path in enumerate(paths):
        with open(path) as handle:
            doc = json.load(handle)
        sources.append(path)
        for event in doc.get("traceEvents", []):
            event = dict(event)
            event["pid"] = new_pid
            events.append(event)
        for key in other:
            value = doc.get("otherData", {}).get(key)
            if isinstance(value, (int, float)):
                other[key] += value
    merged = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": other | {"merged_from": sources},
    }
    with open(out_path, "w") as handle:
        json.dump(merged, handle)
        handle.write("\n")
    return merged
