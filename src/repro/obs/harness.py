"""Harness-level observability: job lifecycle over wall-clock time.

Sweep and experiment jobs may execute in worker processes, where
simulator-level telemetry cannot cross the pickling boundary.  What the
parent process *can* observe -- and what matters for harness tuning --
is the run's own lifecycle: when each job landed, how long it ran,
whether it came from the cache, how the error count grew.  The
:class:`HarnessObserver` records exactly that, on ``time.monotonic()``,
and exports the same two artifact kinds as simulator telemetry: a
Perfetto trace of job slices and a progress time-series.

The trace carries one thread track per pool worker (tid = worker id +
1; tid 0 is the run-level track): the runner's dispatch hook paints a
queue-wait slice, each attempt's completion paints an execution slice
tagged with its status (``ok``/``error``/``timeout``/
``worker-crashed``), and heartbeats land as instant ticks -- so a
stall, a retry storm, or one slow worker is visible as a shape, not a
number.  The export is mergeable with a sim-level telemetry trace via
:func:`repro.obs.events.merge_perfetto_files`.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.obs.events import EventTracer


class HarnessObserver:
    """Records job-completion events and progress curves for one run."""

    def __init__(self, label: str = "run", tracer: Optional[EventTracer] = None,
                 clock=time.monotonic):
        self.label = label
        self.tracer = tracer if tracer is not None else EventTracer()
        self._clock = clock
        self._t0 = clock()
        self.done = 0
        self.errors = 0
        self.cache_hits = 0
        self.resumed = 0
        self.timeouts = 0
        self.crashes = 0
        self.retries = 0
        #: Trace bytes shipped to workers by value vs attached from
        #: shared memory (see :mod:`repro.harness.shm`): the zero-copy
        #: dispatch ledger.  Shared bytes are counted per *consuming*
        #: job; the arena wrote each segment only once.
        self.trace_bytes_pickled = 0
        self.trace_bytes_shared = 0
        self.heartbeats = 0
        #: Worker ids seen via the lifecycle hooks (names their tracks).
        self.worker_ids: set = set()
        #: Progress samples, one per completed job (columnar).
        self.columns: Dict[str, List[float]] = {
            "t_ns": [], "jobs_done": [], "cache_hits": [], "errors": [],
            "job_wall_s": [], "retries": [], "trace_bytes_shared": [],
        }
        self._finished = False
        #: Artifact destinations the CLI wires up; written at finish().
        self.trace_path: Optional[str] = None
        self.timeseries_path: Optional[str] = None
        self.tracer.begin("harness", label, 0.0)

    def _now_ns(self) -> float:
        return (self._clock() - self._t0) * 1e9

    # ------------------------------------------------------------------
    def job_done(self, outcome) -> None:
        """Record one finished :class:`~repro.harness.jobs.JobResult`."""
        now_ns = self._now_ns()
        self.done += 1
        status = getattr(outcome, "status",
                         "ok" if outcome.ok else "error")
        if not outcome.ok:
            self.errors += 1
        if status == "timeout":
            self.timeouts += 1
        elif status == "worker-crashed":
            self.crashes += 1
        if outcome.cache_status == "hit":
            self.cache_hits += 1
        elif outcome.cache_status == "resume":
            self.resumed += 1
        self.trace_bytes_pickled += getattr(outcome,
                                            "trace_bytes_pickled", 0)
        self.trace_bytes_shared += getattr(outcome,
                                           "trace_bytes_shared", 0)
        wall_ns = outcome.wall_time_s * 1e9
        self.tracer.event(
            "job", outcome.spec.label, max(0.0, now_ns - wall_ns),
            dur_ns=wall_ns,
            args={"cache": outcome.cache_status, "ok": outcome.ok,
                  "status": status,
                  "retries": getattr(outcome, "retries", 0),
                  "trace_bytes_pickled": getattr(
                      outcome, "trace_bytes_pickled", 0),
                  "trace_bytes_shared": getattr(
                      outcome, "trace_bytes_shared", 0)},
        )
        self.columns["t_ns"].append(now_ns)
        self.columns["jobs_done"].append(float(self.done))
        self.columns["cache_hits"].append(float(self.cache_hits))
        self.columns["errors"].append(float(self.errors))
        self.columns["job_wall_s"].append(outcome.wall_time_s)
        self.columns["retries"].append(float(self.retries))
        self.columns["trace_bytes_shared"].append(
            float(self.trace_bytes_shared))

    # ------------------------------------------------------------------
    # Per-attempt lifecycle (invoked by the pooled runner when present)
    # ------------------------------------------------------------------
    def job_dispatched(self, index: int, spec, attempt: int,
                       worker_id: int, queue_wait_s: float) -> None:
        """One attempt left the queue for a worker.

        Painted as a queue-wait slice ending now on the worker's track:
        in the Perfetto timeline, dead air before a job's execution
        slice is literally the time it spent waiting.
        """
        now_ns = self._now_ns()
        tid = worker_id + 1
        self.worker_ids.add(worker_id)
        wait_ns = queue_wait_s * 1e9
        self.tracer.event(
            "queue", "wait", max(0.0, now_ns - wait_ns), dur_ns=wait_ns,
            tid=tid, args={"job": spec.label, "attempt": attempt},
        )

    def job_finished(self, index: int, spec, attempt: int, worker_id: int,
                     status: str, wall_s: float) -> None:
        """One attempt ended on a worker (terminal or about to retry).

        Unlike :meth:`job_done` -- one event per *job*, on the run track
        -- this fires once per *attempt*, on the worker's track, so
        timeouts and crashed attempts that later succeed still leave
        their slice behind.
        """
        now_ns = self._now_ns()
        tid = worker_id + 1
        self.worker_ids.add(worker_id)
        wall_ns = wall_s * 1e9
        self.tracer.event(
            "exec", spec.label, max(0.0, now_ns - wall_ns),
            dur_ns=wall_ns, tid=tid,
            args={"status": status, "attempt": attempt},
        )

    def worker_heartbeat(self, payload: dict) -> None:
        """Liveness beat from a busy worker (instant tick on its track)."""
        self.heartbeats += 1
        worker_id = int(payload.get("worker", 0))
        self.worker_ids.add(worker_id)
        self.tracer.event(
            "hb", "heartbeat", self._now_ns(), tid=worker_id + 1,
            args={"job": payload.get("label"),
                  "elapsed_s": payload.get("elapsed_s"),
                  "accesses_done": payload.get("accesses_done")},
        )

    def job_retry(self, spec, attempt: int, error: str) -> None:
        """Record one retry decision (job failed, another attempt granted).

        Instant events rather than slices: the failed attempt's wall
        time is folded into the job's terminal slice, while the retry
        marks *when* the harness decided to go again and why.
        """
        self.retries += 1
        self.tracer.event(
            "retry", spec.label, self._now_ns(),
            args={"attempt": attempt, "error": error},
        )

    def finish(self) -> None:
        """Close the run slice and write any configured artifacts."""
        if self._finished:
            return
        self._finished = True
        self.tracer.end("harness", self.label, self._now_ns())
        if self.trace_path is not None:
            self.tracer.to_perfetto(self.trace_path,
                                    process_name=self.label,
                                    thread_names=self.thread_names())
        if self.timeseries_path is not None:
            self.to_timeseries_jsonl(self.timeseries_path)

    def thread_names(self) -> Dict[int, str]:
        """Track labels for the export: the run plus each worker seen."""
        names = {0: "run"}
        for worker_id in sorted(self.worker_ids):
            names[worker_id + 1] = f"worker {worker_id}"
        return names

    # ------------------------------------------------------------------
    def to_timeseries_jsonl(self, path: str) -> None:
        """Progress series in the same artifact schema ``repro report``
        reads for simulator timeseries."""
        names = list(self.columns)
        meta = {
            "record": "meta", "kind": "timeseries", "design": "harness",
            "interval": 1, "unit": "jobs", "label": self.label,
            "columns": names, "windows": self.done,
        }
        with open(path, "w") as handle:
            handle.write(json.dumps(meta) + "\n")
            for index in range(self.done):
                record = {
                    "record": "window",
                    "v": [self.columns[name][index] for name in names],
                }
                handle.write(json.dumps(record) + "\n")
