"""Harness-level observability: job lifecycle over wall-clock time.

Sweep and experiment jobs may execute in worker processes, where
simulator-level telemetry cannot cross the pickling boundary.  What the
parent process *can* observe -- and what matters for harness tuning --
is the run's own lifecycle: when each job landed, how long it ran,
whether it came from the cache, how the error count grew.  The
:class:`HarnessObserver` records exactly that, on ``time.monotonic()``,
and exports the same two artifact kinds as simulator telemetry: a
Perfetto trace of job slices and a progress time-series.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.obs.events import EventTracer


class HarnessObserver:
    """Records job-completion events and progress curves for one run."""

    def __init__(self, label: str = "run", tracer: Optional[EventTracer] = None,
                 clock=time.monotonic):
        self.label = label
        self.tracer = tracer if tracer is not None else EventTracer()
        self._clock = clock
        self._t0 = clock()
        self.done = 0
        self.errors = 0
        self.cache_hits = 0
        self.resumed = 0
        self.timeouts = 0
        self.crashes = 0
        self.retries = 0
        #: Trace bytes shipped to workers by value vs attached from
        #: shared memory (see :mod:`repro.harness.shm`): the zero-copy
        #: dispatch ledger.  Shared bytes are counted per *consuming*
        #: job; the arena wrote each segment only once.
        self.trace_bytes_pickled = 0
        self.trace_bytes_shared = 0
        #: Progress samples, one per completed job (columnar).
        self.columns: Dict[str, List[float]] = {
            "t_ns": [], "jobs_done": [], "cache_hits": [], "errors": [],
            "job_wall_s": [], "retries": [], "trace_bytes_shared": [],
        }
        self._finished = False
        #: Artifact destinations the CLI wires up; written at finish().
        self.trace_path: Optional[str] = None
        self.timeseries_path: Optional[str] = None
        self.tracer.begin("harness", label, 0.0)

    def _now_ns(self) -> float:
        return (self._clock() - self._t0) * 1e9

    # ------------------------------------------------------------------
    def job_done(self, outcome) -> None:
        """Record one finished :class:`~repro.harness.jobs.JobResult`."""
        now_ns = self._now_ns()
        self.done += 1
        status = getattr(outcome, "status",
                         "ok" if outcome.ok else "error")
        if not outcome.ok:
            self.errors += 1
        if status == "timeout":
            self.timeouts += 1
        elif status == "worker-crashed":
            self.crashes += 1
        if outcome.cache_status == "hit":
            self.cache_hits += 1
        elif outcome.cache_status == "resume":
            self.resumed += 1
        self.trace_bytes_pickled += getattr(outcome,
                                            "trace_bytes_pickled", 0)
        self.trace_bytes_shared += getattr(outcome,
                                           "trace_bytes_shared", 0)
        wall_ns = outcome.wall_time_s * 1e9
        self.tracer.event(
            "job", outcome.spec.label, max(0.0, now_ns - wall_ns),
            dur_ns=wall_ns,
            args={"cache": outcome.cache_status, "ok": outcome.ok,
                  "status": status,
                  "retries": getattr(outcome, "retries", 0),
                  "trace_bytes_pickled": getattr(
                      outcome, "trace_bytes_pickled", 0),
                  "trace_bytes_shared": getattr(
                      outcome, "trace_bytes_shared", 0)},
        )
        self.columns["t_ns"].append(now_ns)
        self.columns["jobs_done"].append(float(self.done))
        self.columns["cache_hits"].append(float(self.cache_hits))
        self.columns["errors"].append(float(self.errors))
        self.columns["job_wall_s"].append(outcome.wall_time_s)
        self.columns["retries"].append(float(self.retries))
        self.columns["trace_bytes_shared"].append(
            float(self.trace_bytes_shared))

    def job_retry(self, spec, attempt: int, error: str) -> None:
        """Record one retry decision (job failed, another attempt granted).

        Instant events rather than slices: the failed attempt's wall
        time is folded into the job's terminal slice, while the retry
        marks *when* the harness decided to go again and why.
        """
        self.retries += 1
        self.tracer.event(
            "retry", spec.label, self._now_ns(),
            args={"attempt": attempt, "error": error},
        )

    def finish(self) -> None:
        """Close the run slice and write any configured artifacts."""
        if self._finished:
            return
        self._finished = True
        self.tracer.end("harness", self.label, self._now_ns())
        if self.trace_path is not None:
            self.tracer.to_perfetto(self.trace_path, process_name=self.label)
        if self.timeseries_path is not None:
            self.to_timeseries_jsonl(self.timeseries_path)

    # ------------------------------------------------------------------
    def to_timeseries_jsonl(self, path: str) -> None:
        """Progress series in the same artifact schema ``repro report``
        reads for simulator timeseries."""
        names = list(self.columns)
        meta = {
            "record": "meta", "kind": "timeseries", "design": "harness",
            "interval": 1, "unit": "jobs", "label": self.label,
            "columns": names, "windows": self.done,
        }
        with open(path, "w") as handle:
            handle.write(json.dumps(meta) + "\n")
            for index in range(self.done):
                record = {
                    "record": "window",
                    "v": [self.columns[name][index] for name in names],
                }
                handle.write(json.dumps(record) + "\n")
