"""Burst-based synthetic trace generation.

A trace is a sequence of *bursts*: a page is chosen (from the hot set,
the sequential stream, the cold/singleton region, or uniformly) and then
``burst_length``-ish accesses touch lines within that page.  This mirrors
how page-granularity locality actually arises -- programs work within a
page for a while before moving on -- and it is the property page-based
DRAM caches exploit.

All randomness flows through :func:`repro.common.rng.generator_for`, so a
given (profile, scale, thread) always yields the identical trace.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.addressing import LINES_PER_PAGE
from repro.common.errors import ConfigurationError
from repro.common.rng import generator_for
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import AccessTrace

#: Burst-category codes used internally.
_HOT, _STREAM, _COLD, _UNIFORM = 0, 1, 2, 3

#: Cold (singleton-ish) bursts touch only a line or two of their page.
COLD_BURST_LENGTH = 1.5


class TraceGenerator:
    """Generates deterministic traces for one workload profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        capacity_scale: int = 64,
        seed_tag: object = 0,
    ):
        if capacity_scale < 1:
            raise ConfigurationError(
                f"capacity_scale must be >= 1, got {capacity_scale}"
            )
        self.profile = profile
        self.capacity_scale = capacity_scale
        self.seed_tag = seed_tag
        self.footprint = profile.footprint_pages(capacity_scale)
        hot = max(1, int(self.footprint * profile.hot_page_fraction))
        # Hot set must leave room for the stream/cold regions.
        self.hot_pages = min(hot, max(1, self.footprint - 2))
        # The hot set is a random permutation of its region so that hot
        # pages scatter over banks the way real hot data does.
        rng = generator_for("hotperm", profile.name, capacity_scale)
        self._hot_ids = rng.permutation(self.hot_pages)
        weights = 1.0 / np.power(
            np.arange(1, self.hot_pages + 1), profile.zipf_alpha
        )
        self._hot_cdf = np.cumsum(weights / weights.sum())

    # ------------------------------------------------------------------
    def generate(
        self,
        accesses: Optional[int] = None,
        thread_id: int = 0,
        num_threads: int = 1,
    ) -> AccessTrace:
        """Produce a trace of roughly ``accesses`` references.

        For multi-threaded workloads, threads share the hot set (shared
        data) while partitioning the stream and cold regions (private
        work), which reproduces PARSEC's mix of shared and thread-local
        pages without aliasing.
        """
        profile = self.profile
        if accesses is None:
            accesses = profile.default_accesses
        if accesses < 0:
            raise ConfigurationError("trace length must be non-negative")
        if not (0 <= thread_id < num_threads):
            raise ConfigurationError(
                f"thread_id {thread_id} outside 0..{num_threads - 1}"
            )
        if accesses == 0:
            # Legal degenerate case (zero-length smoke runs): an empty
            # trace, produced before any RNG draw so the streams of
            # positive-length traces are untouched.
            return AccessTrace(
                name=profile.name,
                virtual_pages=np.empty(0, dtype=np.int64),
                lines=np.empty(0, dtype=np.int16),
                writes=np.empty(0, dtype=bool),
                instruction_gaps=np.empty(0, dtype=np.int64),
                base_cpi=profile.base_cpi,
                mlp=profile.mlp,
            )
        rng = generator_for(
            "trace", profile.name, self.capacity_scale, self.seed_tag,
            thread_id, num_threads,
        )

        lengths_by_cat = {
            _HOT: max(1.0, profile.burst_length * 0.75),
            _STREAM: max(1.0, profile.burst_length * 1.5),
            _COLD: COLD_BURST_LENGTH,
            _UNIFORM: max(1.0, profile.burst_length * 0.75),
        }
        shares = {
            _HOT: profile.hot_access_fraction,
            _STREAM: profile.stream_fraction,
            _COLD: profile.cold_fraction,
            _UNIFORM: profile.uniform_access_fraction,
        }
        # Category probability per *burst* so that the share of
        # *accesses* matches the profile despite unequal burst lengths.
        raw = np.array(
            [shares[c] / lengths_by_cat[c] for c in range(4)], dtype=float
        )
        if raw.sum() <= 0:
            raise ConfigurationError(
                f"{profile.name}: all access shares are zero"
            )
        burst_probs = raw / raw.sum()
        mean_burst = float(
            sum(burst_probs[c] * lengths_by_cat[c] for c in range(4))
        )
        # Clipping geometric draws at 64 lines lowers the realised mean
        # below the nominal one, so over-generate generously and trim;
        # the loop below tops up in the rare case this still fell short.
        num_bursts = max(1, int(np.ceil(accesses / mean_burst * 1.4)) + 8)

        categories = rng.choice(4, size=num_bursts, p=burst_probs)
        lengths = np.empty(num_bursts, dtype=np.int64)
        for cat in range(4):
            mask = categories == cat
            count = int(mask.sum())
            if count == 0:
                continue
            mean_len = lengths_by_cat[cat]
            drawn = rng.geometric(1.0 / mean_len, size=count)
            lengths[mask] = np.clip(drawn, 1, LINES_PER_PAGE)

        pages = self._burst_pages(
            rng, categories, thread_id, num_threads
        )

        # Expand bursts into per-access arrays.
        total = int(lengths.sum())
        page_arr = np.repeat(pages, lengths)
        starts = np.repeat(np.cumsum(lengths) - lengths, lengths)
        within = np.arange(total, dtype=np.int64) - starts
        if profile.sequential_lines:
            first_line = rng.integers(0, LINES_PER_PAGE, size=num_bursts)
            line_arr = (np.repeat(first_line, lengths) + within) % LINES_PER_PAGE
        else:
            line_arr = rng.integers(0, LINES_PER_PAGE, size=total)

        gap_mean = profile.mean_instruction_gap
        gaps = rng.geometric(1.0 / gap_mean, size=total).astype(np.int64)
        writes = rng.random(total) < profile.write_fraction

        if total < accesses:
            # Extremely long bursts plus unlucky draws: top up by tiling
            # the generated stream (statistically identical continuation).
            reps = int(np.ceil(accesses / total)) + 1
            page_arr = np.tile(page_arr, reps)
            line_arr = np.tile(line_arr, reps)
            gaps = np.tile(gaps, reps)
            writes = np.tile(writes, reps)
            total = len(page_arr)

        # Trim the over-generated tail to the requested length.
        n = min(accesses, total)
        return AccessTrace(
            name=profile.name,
            virtual_pages=page_arr[:n].astype(np.int64),
            lines=line_arr[:n].astype(np.int16),
            writes=writes[:n],
            instruction_gaps=gaps[:n],
            base_cpi=profile.base_cpi,
            mlp=profile.mlp,
        )

    # ------------------------------------------------------------------
    def _burst_pages(
        self,
        rng: np.random.Generator,
        categories: np.ndarray,
        thread_id: int,
        num_threads: int,
    ) -> np.ndarray:
        """Choose the page each burst works in."""
        num_bursts = len(categories)
        pages = np.zeros(num_bursts, dtype=np.int64)

        general_lo = self.hot_pages
        general_hi = max(general_lo + 1, self.footprint)
        general_span = general_hi - general_lo

        # Hot: zipf-weighted choice over the permuted hot set.
        mask = categories == _HOT
        count = int(mask.sum())
        if count:
            ranks = np.searchsorted(self._hot_cdf, rng.random(count))
            pages[mask] = self._hot_ids[ranks]

        # Stream: a sequential walk of (this thread's slice of) the
        # general region, wrapping around.
        mask = categories == _STREAM
        count = int(mask.sum())
        if count:
            slice_span = max(1, general_span // num_threads)
            slice_lo = general_lo + thread_id * slice_span
            offsets = np.arange(count, dtype=np.int64) % slice_span
            pages[mask] = slice_lo + offsets

        # Cold: near-singletons -- fresh pages *beyond* the resident
        # footprint, visited once (or with very distant reuse when the
        # trace is long enough to wrap the bounded region).  These are
        # the streamed-through, low-reuse pages behind GemsFDTD's gap to
        # the ideal cache and the Section 5.4 NC case study.  The region
        # is bounded at twice the resident footprint so that arbitrarily
        # long traces cannot exhaust simulated physical memory; threads
        # interleave so their cold pages never collide.
        mask = categories == _COLD
        count = int(mask.sum())
        if count:
            # The bound is per *program*, so multi-threaded runs do not
            # multiply the singleton page count by the thread count.
            bound = max(16, 2 * self.footprint // num_threads)
            offsets = np.arange(count, dtype=np.int64) % bound
            pages[mask] = (
                self.footprint + offsets * num_threads + thread_id
            )

        # Uniform: anywhere in the general region (shared across
        # threads: incidental sharing).
        mask = categories == _UNIFORM
        count = int(mask.sum())
        if count:
            pages[mask] = rng.integers(general_lo, general_hi, size=count)

        return pages
