"""Synthetic workload models standing in for SPEC CPU 2006 and PARSEC.

The paper drives McSimA+ with Simpoint slices of real binaries; this
reproduction substitutes parameterised trace generators whose knobs --
footprint, accesses-per-kilo-instruction, hot-set size and skew,
streaming share, singleton share, burst length, write ratio, base CPI and
MLP -- encode each program's published memory character.  The shapes of
Figures 7-13 are driven by exactly these properties (footprint versus
cache capacity, page reuse, spatial locality), which is what makes the
substitution behaviour-preserving.
"""

from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import MIXES, mix_programs
from repro.workloads.parsec import PARSEC_PROFILES, parsec_profile
from repro.workloads.profile import WorkloadProfile
from repro.workloads.spec import SPEC_PROFILES, spec_profile
from repro.workloads.trace import AccessTrace

__all__ = [
    "TraceGenerator",
    "MIXES",
    "mix_programs",
    "PARSEC_PROFILES",
    "parsec_profile",
    "WorkloadProfile",
    "SPEC_PROFILES",
    "spec_profile",
    "AccessTrace",
]
