"""Memory-access trace container.

A trace is four parallel numpy arrays -- virtual page, line-in-page,
write flag, and the instruction gap since the previous access -- plus the
metadata the core model needs (base CPI, MLP).  Traces are generated
once per (workload, seed) and are deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.common.addressing import LINES_PER_PAGE
from repro.common.errors import TraceError


@dataclasses.dataclass
class AccessTrace:
    """One core's memory reference stream."""

    name: str
    virtual_pages: np.ndarray
    lines: np.ndarray
    writes: np.ndarray
    instruction_gaps: np.ndarray
    base_cpi: float = 0.5
    mlp: float = 2.0

    def __post_init__(self) -> None:
        # Lazily built by as_lists(); seeded by slice() when the parent
        # trace has already paid for the numpy->Python conversion.
        self._lists = None
        n = len(self.virtual_pages)
        for field in ("lines", "writes", "instruction_gaps"):
            if len(getattr(self, field)) != n:
                raise TraceError(
                    f"trace {self.name!r}: {field} has "
                    f"{len(getattr(self, field))} entries, expected {n}"
                )
        if n and (self.lines.min() < 0 or self.lines.max() >= LINES_PER_PAGE):
            raise TraceError(
                f"trace {self.name!r}: line indices outside 0..63"
            )
        if n and self.virtual_pages.min() < 0:
            raise TraceError(f"trace {self.name!r}: negative virtual page")
        if n and self.instruction_gaps.min() < 0:
            raise TraceError(f"trace {self.name!r}: negative instruction gap")

    def __len__(self) -> int:
        return len(self.virtual_pages)

    @property
    def total_instructions(self) -> int:
        """Instructions represented, including the memory ops themselves."""
        return int(self.instruction_gaps.sum()) + len(self)

    @property
    def footprint_pages(self) -> int:
        """Distinct virtual pages touched."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.virtual_pages).size)

    @property
    def accesses_per_kilo_instruction(self) -> float:
        total = self.total_instructions
        if total == 0:
            return 0.0
        return 1000.0 * len(self) / total

    def write_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.writes.mean())

    def page_access_counts(self) -> dict:
        """Map virtual page -> access count (used to classify NC pages
        for the Section 5.4 case study)."""
        pages, counts = np.unique(self.virtual_pages, return_counts=True)
        return dict(zip(pages.tolist(), counts.tolist()))

    def as_lists(self):
        """Return (pages, lines, writes, gaps) as plain Python lists.

        The simulator's inner loop iterates millions of times; list
        indexing is several times faster than numpy scalar extraction.
        The conversion is cached on the trace (and inherited by
        :meth:`slice` children), so replaying the same trace against
        several designs -- or splitting it into warmup and measurement
        phases -- converts each array exactly once.
        """
        if self._lists is None:
            self._lists = (
                self.virtual_pages.tolist(),
                self.lines.tolist(),
                self.writes.tolist(),
                self.instruction_gaps.tolist(),
            )
        return self._lists

    def head(self, accesses: int) -> "AccessTrace":
        """A shortened copy (used by unit tests and quick examples)."""
        return self.slice(0, accesses)

    def slice(self, start: int, stop: int) -> "AccessTrace":
        """A sub-trace covering accesses [start, stop) -- used to split
        traces into warmup and measurement phases."""
        child = AccessTrace(
            name=self.name,
            virtual_pages=self.virtual_pages[start:stop],
            lines=self.lines[start:stop],
            writes=self.writes[start:stop],
            instruction_gaps=self.instruction_gaps[start:stop],
            base_cpi=self.base_cpi,
            mlp=self.mlp,
        )
        if self._lists is not None:
            # Slice the already-converted lists instead of reconverting
            # the numpy views (list slicing is a memcpy of references).
            child._lists = tuple(part[start:stop] for part in self._lists)
        return child


def save_trace(trace: AccessTrace, path: str) -> None:
    """Persist a trace as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        name=np.array(trace.name),
        virtual_pages=trace.virtual_pages,
        lines=trace.lines,
        writes=trace.writes,
        instruction_gaps=trace.instruction_gaps,
        base_cpi=np.array(trace.base_cpi),
        mlp=np.array(trace.mlp),
    )


def load_trace(path: str) -> AccessTrace:
    """Load a trace saved by :func:`save_trace`."""
    with np.load(path) as data:
        return AccessTrace(
            name=str(data["name"]),
            virtual_pages=data["virtual_pages"],
            lines=data["lines"],
            writes=data["writes"],
            instruction_gaps=data["instruction_gaps"],
            base_cpi=float(data["base_cpi"]),
            mlp=float(data["mlp"]),
        )


def concatenate_traces(name: str, traces: List[AccessTrace]) -> AccessTrace:
    """Stitch trace phases together (used to build phased workloads)."""
    if not traces:
        raise TraceError("cannot concatenate zero traces")
    return AccessTrace(
        name=name,
        virtual_pages=np.concatenate([t.virtual_pages for t in traces]),
        lines=np.concatenate([t.lines for t in traces]),
        writes=np.concatenate([t.writes for t in traces]),
        instruction_gaps=np.concatenate([t.instruction_gaps for t in traces]),
        base_cpi=traces[0].base_cpi,
        mlp=traces[0].mlp,
    )
