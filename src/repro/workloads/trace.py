"""Memory-access trace containers.

A trace is four parallel columns -- virtual page, line-in-page, write
flag, and the instruction gap since the previous access -- plus the
metadata the core model needs (base CPI, MLP).  Traces are generated
once per (workload, seed) and are deterministic.

Two representations exist:

- :class:`AccessTrace`: numpy-backed, produced by the generators and
  used everywhere traces are built or analysed.
- :class:`ColumnarTrace`: typed ``array``/``memoryview`` columns over a
  single flat buffer.  Same replay interface (``as_lists``, ``slice``,
  ``head``, ``page_access_counts``), but the backing buffer can live
  anywhere -- including a ``multiprocessing.shared_memory`` segment, the
  basis of the harness's zero-copy worker dispatch -- and slicing is an
  O(1) memoryview window, not a copy.
"""

from __future__ import annotations

import dataclasses
from array import array
from collections import Counter
from typing import List

import numpy as np

from repro.common.addressing import LINES_PER_PAGE
from repro.common.errors import TraceError


@dataclasses.dataclass
class AccessTrace:
    """One core's memory reference stream."""

    name: str
    virtual_pages: np.ndarray
    lines: np.ndarray
    writes: np.ndarray
    instruction_gaps: np.ndarray
    base_cpi: float = 0.5
    mlp: float = 2.0

    def __post_init__(self) -> None:
        # Lazily built by as_lists(); seeded by slice() when the parent
        # trace has already paid for the numpy->Python conversion.
        self._lists = None
        n = len(self.virtual_pages)
        for field in ("lines", "writes", "instruction_gaps"):
            if len(getattr(self, field)) != n:
                raise TraceError(
                    f"trace {self.name!r}: {field} has "
                    f"{len(getattr(self, field))} entries, expected {n}"
                )
        if n and (self.lines.min() < 0 or self.lines.max() >= LINES_PER_PAGE):
            raise TraceError(
                f"trace {self.name!r}: line indices outside 0..63"
            )
        if n and self.virtual_pages.min() < 0:
            raise TraceError(f"trace {self.name!r}: negative virtual page")
        if n and self.instruction_gaps.min() < 0:
            raise TraceError(f"trace {self.name!r}: negative instruction gap")

    def __len__(self) -> int:
        return len(self.virtual_pages)

    @property
    def total_instructions(self) -> int:
        """Instructions represented, including the memory ops themselves."""
        return int(self.instruction_gaps.sum()) + len(self)

    @property
    def footprint_pages(self) -> int:
        """Distinct virtual pages touched."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.virtual_pages).size)

    @property
    def accesses_per_kilo_instruction(self) -> float:
        total = self.total_instructions
        if total == 0:
            return 0.0
        return 1000.0 * len(self) / total

    def write_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.writes.mean())

    def page_access_counts(self) -> dict:
        """Map virtual page -> access count (used to classify NC pages
        for the Section 5.4 case study)."""
        pages, counts = np.unique(self.virtual_pages, return_counts=True)
        return dict(zip(pages.tolist(), counts.tolist()))

    def as_lists(self):
        """Return (pages, lines, writes, gaps) as plain Python lists.

        The simulator's inner loop iterates millions of times; list
        indexing is several times faster than numpy scalar extraction.
        The conversion is cached on the trace (and inherited by
        :meth:`slice` children), so replaying the same trace against
        several designs -- or splitting it into warmup and measurement
        phases -- converts each array exactly once.
        """
        if self._lists is None:
            self._lists = (
                self.virtual_pages.tolist(),
                self.lines.tolist(),
                self.writes.tolist(),
                self.instruction_gaps.tolist(),
            )
        return self._lists

    def head(self, accesses: int) -> "AccessTrace":
        """A shortened copy (used by unit tests and quick examples)."""
        return self.slice(0, accesses)

    def slice(self, start: int, stop: int) -> "AccessTrace":
        """A sub-trace covering accesses [start, stop) -- used to split
        traces into warmup and measurement phases."""
        child = AccessTrace(
            name=self.name,
            virtual_pages=self.virtual_pages[start:stop],
            lines=self.lines[start:stop],
            writes=self.writes[start:stop],
            instruction_gaps=self.instruction_gaps[start:stop],
            base_cpi=self.base_cpi,
            mlp=self.mlp,
        )
        if self._lists is not None:
            # Slice the already-converted lists instead of reconverting
            # the numpy views (list slicing is a memcpy of references).
            child._lists = tuple(part[start:stop] for part in self._lists)
        return child


class ColumnarTrace:
    """A trace as typed columns over one flat buffer.

    Layout (``n`` accesses): pages ``int64[n]`` | gaps ``int64[n]`` |
    lines ``uint8[n]`` | writes ``uint8[n]`` -- 18 bytes per access,
    8-byte-aligned fields first.  Columns are held as typed
    ``memoryview`` windows, so :meth:`slice` is O(1) and the buffer may
    be private (``from_trace``) or foreign (``from_buffer`` over a
    shared-memory segment, keeping ``owner`` alive for the view's
    lifetime).

    Replay-facing behaviour is identical to :class:`AccessTrace`:
    ``as_lists`` yields the same Python ints and bools (the engines'
    arithmetic never sees a difference), ``page_access_counts`` returns
    pages in the same sorted order (NC classification iterates it, so
    order is part of determinism), and slices share a materialized
    parent's list cache.
    """

    __slots__ = ("name", "base_cpi", "mlp",
                 "_pages", "_gaps", "_lines", "_writes",
                 "_lists", "_owner")

    def __init__(self, name: str, pages, gaps, lines, writes,
                 base_cpi: float = 0.5, mlp: float = 2.0, owner=None):
        self.name = name
        self.base_cpi = base_cpi
        self.mlp = mlp
        self._pages = pages
        self._gaps = gaps
        self._lines = lines
        self._writes = writes
        self._lists = None
        self._owner = owner
        n = len(pages)
        for label, column in (("gaps", gaps), ("lines", lines),
                              ("writes", writes)):
            if len(column) != n:
                raise TraceError(
                    f"trace {name!r}: {label} has {len(column)} entries, "
                    f"expected {n}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: AccessTrace) -> "ColumnarTrace":
        """Convert a numpy-backed trace (one copy, then zero-copy use)."""
        pages = array("q")
        pages.frombytes(np.ascontiguousarray(
            trace.virtual_pages, dtype=np.int64).tobytes())
        gaps = array("q")
        gaps.frombytes(np.ascontiguousarray(
            trace.instruction_gaps, dtype=np.int64).tobytes())
        lines = array("B")
        lines.frombytes(np.ascontiguousarray(
            trace.lines, dtype=np.uint8).tobytes())
        writes = array("B")
        writes.frombytes(np.ascontiguousarray(
            trace.writes, dtype=np.uint8).tobytes())
        return cls(trace.name, memoryview(pages), memoryview(gaps),
                   memoryview(lines), memoryview(writes),
                   base_cpi=trace.base_cpi, mlp=trace.mlp,
                   owner=(pages, gaps, lines, writes))

    @staticmethod
    def buffer_nbytes(accesses: int) -> int:
        """Size of the flat buffer holding ``accesses`` accesses."""
        return 18 * accesses

    @classmethod
    def from_buffer(cls, name: str, accesses: int, buffer,
                    base_cpi: float = 0.5, mlp: float = 2.0,
                    owner=None) -> "ColumnarTrace":
        """Wrap a flat buffer laid out by :meth:`pack_into` (zero-copy).

        ``owner`` is any object that must outlive the views -- typically
        the ``SharedMemory`` segment the buffer belongs to.
        """
        view = memoryview(buffer)
        n = accesses
        if len(view) < cls.buffer_nbytes(n):
            raise TraceError(
                f"trace {name!r}: buffer holds {len(view)} bytes, "
                f"need {cls.buffer_nbytes(n)} for {n} accesses"
            )
        pages = view[0:8 * n].cast("q")
        gaps = view[8 * n:16 * n].cast("q")
        lines = view[16 * n:17 * n].cast("B")
        writes = view[17 * n:18 * n].cast("B")
        return cls(name, pages, gaps, lines, writes,
                   base_cpi=base_cpi, mlp=mlp, owner=owner)

    def pack_into(self, buffer) -> int:
        """Write the columns into ``buffer`` in :meth:`from_buffer`'s
        layout; returns the bytes written."""
        view = memoryview(buffer)
        n = len(self)
        view[0:8 * n] = self._pages.tobytes()
        view[8 * n:16 * n] = self._gaps.tobytes()
        view[16 * n:17 * n] = self._lines.tobytes()
        view[17 * n:18 * n] = self._writes.tobytes()
        return 18 * n

    def to_trace(self) -> AccessTrace:
        """Convert back to a numpy-backed :class:`AccessTrace`."""
        return AccessTrace(
            name=self.name,
            virtual_pages=np.frombuffer(self._pages, dtype=np.int64).copy(),
            lines=np.frombuffer(self._lines, dtype=np.uint8).astype(np.int64),
            writes=np.frombuffer(self._writes, dtype=np.uint8).astype(bool),
            instruction_gaps=np.frombuffer(self._gaps,
                                           dtype=np.int64).copy(),
            base_cpi=self.base_cpi,
            mlp=self.mlp,
        )

    # ------------------------------------------------------------------
    # Replay interface (mirrors AccessTrace)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    @property
    def nbytes(self) -> int:
        """Total column payload in bytes."""
        return self.buffer_nbytes(len(self))

    @property
    def total_instructions(self) -> int:
        return sum(self._gaps) + len(self)

    @property
    def footprint_pages(self) -> int:
        return len(set(self._pages))

    @property
    def accesses_per_kilo_instruction(self) -> float:
        total = self.total_instructions
        if total == 0:
            return 0.0
        return 1000.0 * len(self) / total

    def write_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return sum(self._writes) / len(self)

    def page_access_counts(self) -> dict:
        """Page -> count, keys in ascending page order (matching the
        numpy path's ``np.unique``, whose order NC classification
        inherits)."""
        return dict(sorted(Counter(self._pages.tolist()).items()))

    def as_lists(self):
        """(pages, lines, writes, gaps) as plain Python lists -- the
        same objects :meth:`AccessTrace.as_lists` yields: ints for
        pages/lines/gaps, bools for writes.  Cached, and inherited by
        slices of an already-materialized trace."""
        if self._lists is None:
            self._lists = (
                self._pages.tolist(),
                self._lines.tolist(),
                list(map(bool, self._writes)),
                self._gaps.tolist(),
            )
        return self._lists

    def head(self, accesses: int) -> "ColumnarTrace":
        return self.slice(0, accesses)

    def slice(self, start: int, stop: int) -> "ColumnarTrace":
        """A sub-trace over [start, stop): an O(1) window, no copying."""
        child = ColumnarTrace(
            self.name,
            self._pages[start:stop],
            self._gaps[start:stop],
            self._lines[start:stop],
            self._writes[start:stop],
            base_cpi=self.base_cpi,
            mlp=self.mlp,
            owner=self._owner,
        )
        if self._lists is not None:
            child._lists = tuple(part[start:stop] for part in self._lists)
        return child


def save_trace(trace: AccessTrace, path: str) -> None:
    """Persist a trace as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        name=np.array(trace.name),
        virtual_pages=trace.virtual_pages,
        lines=trace.lines,
        writes=trace.writes,
        instruction_gaps=trace.instruction_gaps,
        base_cpi=np.array(trace.base_cpi),
        mlp=np.array(trace.mlp),
    )


def load_trace(path: str) -> AccessTrace:
    """Load a trace saved by :func:`save_trace`."""
    with np.load(path) as data:
        return AccessTrace(
            name=str(data["name"]),
            virtual_pages=data["virtual_pages"],
            lines=data["lines"],
            writes=data["writes"],
            instruction_gaps=data["instruction_gaps"],
            base_cpi=float(data["base_cpi"]),
            mlp=float(data["mlp"]),
        )


def concatenate_traces(name: str, traces: List[AccessTrace]) -> AccessTrace:
    """Stitch trace phases together (used to build phased workloads)."""
    if not traces:
        raise TraceError("cannot concatenate zero traces")
    return AccessTrace(
        name=name,
        virtual_pages=np.concatenate([t.virtual_pages for t in traces]),
        lines=np.concatenate([t.lines for t in traces]),
        writes=np.concatenate([t.writes for t in traces]),
        instruction_gaps=np.concatenate([t.instruction_gaps for t in traces]),
        base_cpi=traces[0].base_cpi,
        mlp=traces[0].mlp,
    )
