"""Multi-programmed workload mixes -- Table 5 of the paper, verbatim.

Each mix runs four SPEC programs on four cores with private address
spaces; the quadrupled footprint is what exposes cache contention and the
replacement policy (Section 5.2 uses these mixes for every sensitivity
study).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile
from repro.workloads.trace import AccessTrace

#: Table 5, exactly as printed.
MIXES: Dict[str, Tuple[str, str, str, str]] = {
    "MIX1": ("milc", "leslie3d", "omnetpp", "sphinx3"),
    "MIX2": ("milc", "leslie3d", "soplex", "omnetpp"),
    "MIX3": ("milc", "soplex", "GemsFDTD", "omnetpp"),
    "MIX4": ("soplex", "GemsFDTD", "lbm", "omnetpp"),
    "MIX5": ("mcf", "soplex", "GemsFDTD", "lbm"),
    "MIX6": ("mcf", "leslie3d", "lbm", "sphinx3"),
    "MIX7": ("milc", "soplex", "lbm", "sphinx3"),
    "MIX8": ("mcf", "leslie3d", "GemsFDTD", "omnetpp"),
}

MIX_ORDER = tuple(f"MIX{i}" for i in range(1, 9))


def mix_programs(mix_name: str) -> Tuple[str, str, str, str]:
    """Return the four program names of a mix."""
    try:
        return MIXES[mix_name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mix {mix_name!r}; known: {sorted(MIXES)}"
        ) from None


def mix_traces(
    mix_name: str,
    accesses_per_program: Optional[int] = None,
    capacity_scale: int = 64,
) -> List[AccessTrace]:
    """Generate the four traces of a mix (one per core/process)."""
    if capacity_scale < 1:
        raise ConfigurationError(
            f"capacity_scale must be >= 1, got {capacity_scale}"
        )
    traces = []
    for slot, program in enumerate(mix_programs(mix_name)):
        generator = TraceGenerator(
            spec_profile(program),
            capacity_scale=capacity_scale,
            seed_tag=f"{mix_name}:{slot}",
        )
        traces.append(generator.generate(accesses=accesses_per_program))
    return traces
