"""Trace characterisation: the statistics that calibrate the generators.

The synthetic-workload substitution (DESIGN.md section 2) is only valid
if the traces actually exhibit the memory characters the paper's results
depend on.  This module measures those characters from any
:class:`~repro.workloads.trace.AccessTrace` -- generated or loaded --
so calibration is checkable rather than asserted:

- page-level **reuse distribution** (accesses per touched page);
- **singleton fraction** (pages with fewer than a threshold of touches
  -- the paper's Section 5.4 criterion);
- **spatial locality** (distinct 64 B blocks touched per page, and the
  share of sequential line steps);
- **temporal concentration** (what share of accesses the hottest N% of
  pages absorb);
- **page-transition rate** (how often consecutive accesses change page
  -- the first-order driver of TLB miss rates).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.workloads.trace import AccessTrace


@dataclasses.dataclass(frozen=True)
class TraceCharacter:
    """Summary statistics of one trace."""

    name: str
    accesses: int
    footprint_pages: int
    apki: float
    write_fraction: float
    mean_accesses_per_page: float
    median_accesses_per_page: float
    singleton_page_fraction: float
    singleton_access_fraction: float
    hot1pct_access_share: float
    hot10pct_access_share: float
    mean_blocks_per_page: float
    sequential_step_fraction: float
    page_transition_rate: float

    def row(self) -> list:
        """Row for :func:`character_table`."""
        return [
            self.name,
            self.footprint_pages,
            round(self.apki, 1),
            f"{self.mean_accesses_per_page:.1f}",
            f"{self.singleton_page_fraction:.2f}",
            f"{self.hot10pct_access_share:.2f}",
            f"{self.mean_blocks_per_page:.1f}",
            f"{self.page_transition_rate:.2f}",
        ]


def characterize(
    trace: AccessTrace, singleton_threshold: int = 32
) -> TraceCharacter:
    """Measure a trace's memory character.

    ``singleton_threshold`` follows the paper's Section 5.4 criterion:
    a page with fewer accesses than this counts as a (near-)singleton.
    """
    if len(trace) == 0:
        raise ValueError("cannot characterise an empty trace")
    pages = trace.virtual_pages
    unique_pages, counts = np.unique(pages, return_counts=True)

    singleton_mask = counts < singleton_threshold
    singleton_pages = int(singleton_mask.sum())
    singleton_accesses = int(counts[singleton_mask].sum())

    sorted_counts = np.sort(counts)[::-1]
    def hot_share(fraction: float) -> float:
        n = max(1, int(len(sorted_counts) * fraction))
        return float(sorted_counts[:n].sum() / counts.sum())

    # Distinct blocks per page: useful-block density (over-fetch's
    # mirror image).
    combined = pages.astype(np.int64) * 64 + trace.lines.astype(np.int64)
    blocks_per_page = (
        np.unique(combined).size / unique_pages.size
    )

    line_steps = np.diff(trace.lines.astype(np.int64)) % 64
    same_page = np.diff(pages) == 0
    if same_page.any():
        sequential = float(
            ((line_steps == 1) & same_page).sum() / same_page.sum()
        )
    else:
        sequential = 0.0
    transitions = float((~same_page).mean()) if len(pages) > 1 else 0.0

    return TraceCharacter(
        name=trace.name,
        accesses=len(trace),
        footprint_pages=int(unique_pages.size),
        apki=trace.accesses_per_kilo_instruction,
        write_fraction=trace.write_fraction(),
        mean_accesses_per_page=float(counts.mean()),
        median_accesses_per_page=float(np.median(counts)),
        singleton_page_fraction=singleton_pages / unique_pages.size,
        singleton_access_fraction=singleton_accesses / len(trace),
        hot1pct_access_share=hot_share(0.01),
        hot10pct_access_share=hot_share(0.10),
        mean_blocks_per_page=float(blocks_per_page),
        sequential_step_fraction=sequential,
        page_transition_rate=transitions,
    )


def reuse_histogram(trace: AccessTrace, buckets=(1, 2, 4, 8, 16, 32, 64,
                                                 128)) -> Dict[str, int]:
    """Pages bucketed by access count (the Figure-13 intuition)."""
    __, counts = np.unique(trace.virtual_pages, return_counts=True)
    histogram: Dict[str, int] = {}
    previous = 0
    for bound in buckets:
        key = f"{previous + 1}-{bound}"
        histogram[key] = int(((counts > previous) & (counts <= bound)).sum())
        previous = bound
    histogram[f">{buckets[-1]}"] = int((counts > buckets[-1]).sum())
    return histogram


def working_set_curve(trace: AccessTrace, num_points: int = 10):
    """Distinct pages touched within growing prefixes of the trace.

    A compact stand-in for the classic working-set curve; the
    calibration examples print it to show footprints ramping the way
    real slices do (fast early growth from first touches, then a slow
    singleton tail).
    """
    if len(trace) == 0:
        return []
    points = []
    for i in range(1, num_points + 1):
        end = max(1, len(trace) * i // num_points)
        touched = int(np.unique(trace.virtual_pages[:end]).size)
        points.append((end, touched))
    return points


def character_table(characters) -> str:
    """Render a list of :class:`TraceCharacter` as an aligned table."""
    from repro.analysis.report import format_table

    return format_table(
        "Workload character (per generated trace)",
        ["workload", "pages", "apki", "acc/page", "singleton pg frac",
         "hot-10% share", "blocks/page", "page-transition"],
        [c.row() for c in characters],
    )
