"""Workload profile: the knobs that define a synthetic program's memory
behaviour.

Each knob maps to a measurable property the paper's results depend on:

- ``footprint_mb`` -- how much memory the program touches; against the
  (scaled) DRAM cache capacity this sets capacity pressure (Figure 10);
- ``apki`` -- memory accesses per kilo-instruction reaching the L2-bound
  stream; with the on-die filter this yields the MPKI that makes a
  program "memory-bound";
- ``hot_page_fraction`` / ``hot_access_fraction`` / ``zipf_alpha`` -- a
  skewed hot set, the source of page reuse and victim hits;
- ``stream_fraction`` -- bursts that walk the footprint sequentially
  (row-buffer friendly, moderate reuse: the stream wraps around);
- ``cold_fraction`` of *accesses* go to cold/singleton pages touched once
  or twice -- the low-reuse pages behind GemsFDTD's and milc's gap to the
  ideal cache (Section 5.1) and the Section 5.4 NC case study;
- ``burst_length`` -- mean accesses per page visit (spatial locality);
  page-based caching thrives when this is high;
- ``sequential_lines`` -- whether a burst walks 64 B lines in order
  (streaming codes) or scatters within the page (pointer chasing);
- ``write_fraction`` -- store share, which drives write-back traffic;
- ``base_cpi`` / ``mlp`` -- the core-model parameters.
"""

from __future__ import annotations

import dataclasses

from repro.common.addressing import BYTES_PER_MB, PAGE_BYTES
from repro.common.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Parameter set for one synthetic program."""

    name: str
    footprint_mb: float
    apki: float
    hot_page_fraction: float = 0.15
    hot_access_fraction: float = 0.5
    zipf_alpha: float = 0.8
    stream_fraction: float = 0.3
    cold_fraction: float = 0.1
    burst_length: float = 6.0
    sequential_lines: bool = True
    write_fraction: float = 0.25
    base_cpi: float = 0.5
    mlp: float = 2.0
    #: Suggested trace length when none is given explicitly.
    default_accesses: int = 200_000

    def __post_init__(self) -> None:
        shares = (
            self.hot_access_fraction + self.stream_fraction + self.cold_fraction
        )
        if shares > 1.0 + 1e-9:
            raise ConfigurationError(
                f"{self.name}: access shares sum to {shares:.3f} > 1 "
                "(hot + stream + cold must leave room for the uniform rest)"
            )
        if not (0 < self.hot_page_fraction <= 1):
            raise ConfigurationError(
                f"{self.name}: hot_page_fraction must be in (0, 1]"
            )
        if self.footprint_mb <= 0 or self.apki <= 0 or self.burst_length < 1:
            raise ConfigurationError(
                f"{self.name}: footprint, apki and burst_length must be "
                "positive"
            )

    def footprint_pages(self, capacity_scale: int = 1) -> int:
        """Touched pages after the simulation-wide capacity scaling."""
        pages = int(self.footprint_mb * BYTES_PER_MB / PAGE_BYTES) // capacity_scale
        return max(64, pages)

    @property
    def uniform_access_fraction(self) -> float:
        """Share of accesses drawn uniformly over the whole footprint."""
        return max(
            0.0,
            1.0
            - self.hot_access_fraction
            - self.stream_fraction
            - self.cold_fraction,
        )

    @property
    def mean_instruction_gap(self) -> float:
        """Mean non-memory instructions between two trace accesses."""
        return max(1.0, 1000.0 / self.apki - 1.0)

    def scaled(self, **overrides) -> "WorkloadProfile":
        """A copy with some knobs overridden (sensitivity studies)."""
        return dataclasses.replace(self, **overrides)
