"""Multi-tenant scenario generation: hundreds of processes, one machine.

The paper's Table 5 mixes co-schedule four SPEC programs on four cores;
this module models the opposite regime the ROADMAP's "millions of users"
axis asks about: **N tenants** (hundreds of simulated processes) with
Zipf-skewed footprints, Poisson-ish arrivals, and exponential service
demands, time-sliced onto the existing cores by a deterministic
round-robin scheduler.  The output is a :class:`TenantSchedule` -- per
core, an ordered list of :class:`TenantSegment` slices of per-tenant
:class:`~repro.workloads.trace.ColumnarTrace` streams -- replayed by
:func:`repro.cpu.scheduled.run_schedule`.

Determinism contract (mirrors the campaign seed policy): every draw
derives via :func:`repro.common.rng.derive_seed` from the scenario's
effective seed and the tenant index, so a schedule is bit-identical for
a fixed seed and re-rolls completely when the seed, the scenario name,
or any tenant-level component changes.  :meth:`TenantSchedule.digest`
is the test hook that locks this.

Address spaces: each tenant gets its own ``process_id`` *and* a private
virtual-page window (``vpn_base`` offsets).  The window matters because
the modelled TLBs are keyed by VPN without ASIDs -- two time-shared
tenants reusing VPN 0 would alias each other's translations between
context-switch flushes, which is a model correctness bug, not a
realistic hardware behaviour.
"""

from __future__ import annotations

import dataclasses
import json
import hashlib
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common import rng
from repro.common.errors import ConfigurationError
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import SPEC_PROFILES, spec_profile
from repro.workloads.trace import AccessTrace, ColumnarTrace

#: Guard pages between tenant VPN windows (cold-region margin).
VPN_WINDOW_MARGIN = 64

#: Default profile rotation when a scenario names none.
DEFAULT_PROFILES = ("mcf", "milc", "sphinx3", "omnetpp")


@dataclasses.dataclass(frozen=True)
class TenantScenarioSpec:
    """Everything that defines one multi-tenant scenario, declaratively.

    Loads from JSON (``from_file``) so a scenario is a config artifact,
    not code.  ``resize`` pairs ``(at_access, capacity)`` arm the
    resizable tagless design's capacity schedule: ``capacity`` is a
    fraction of the configured cache when <= 1.0, else absolute pages.
    """

    name: str
    tenants: int
    profiles: Tuple[str, ...] = DEFAULT_PROFILES
    #: Mean service demand (accesses) per tenant; actual demands are
    #: exponential around it, floored at one quantum.
    tenant_accesses: int = 4000
    #: Accesses per scheduling slice (context-switch granularity).
    quantum: int = 500
    #: Base footprint divisor; tenant rank r runs at
    #: ``capacity_scale * (r + 1) ** footprint_zipf`` (larger divisor =
    #: smaller footprint), giving the Zipf-skewed tenant sizes.
    capacity_scale: int = 512
    footprint_zipf: float = 0.8
    #: Expected tenant arrivals per scheduling round (Poisson-ish:
    #: exponential inter-arrival gaps, cumulated and floored).
    arrival_rate: float = 4.0
    #: Cycles charged to a core when it switches tenants.
    context_switch_cycles: float = 2000.0
    #: Full TLB shootdown on every tenant switch (no ASIDs modelled).
    flush_tlb_on_switch: bool = True
    #: Scenario seed; ``None`` defers to the library base seed in
    #: effect at build time (so campaign repetitions re-roll it).
    seed: Optional[int] = None
    #: Capacity schedule for the resizable design: (at_access, capacity).
    resize: Tuple[Tuple[int, float], ...] = ()
    #: Churn bound: pages a single resize event may remap (the rest of
    #: the displaced pages are evicted instead).
    max_remap_per_resize: int = 64

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("scenario needs a non-empty name")
        if self.tenants < 1:
            raise ConfigurationError("scenario needs at least one tenant")
        if not self.profiles:
            raise ConfigurationError("scenario needs at least one profile")
        for profile in self.profiles:
            if profile not in SPEC_PROFILES:
                raise ConfigurationError(
                    f"unknown profile {profile!r}; known: "
                    f"{', '.join(sorted(SPEC_PROFILES))}"
                )
        if self.tenant_accesses < 1:
            raise ConfigurationError("tenant_accesses must be >= 1")
        if self.quantum < 1:
            raise ConfigurationError("quantum must be >= 1")
        if self.capacity_scale < 1:
            raise ConfigurationError("capacity_scale must be >= 1")
        if self.footprint_zipf < 0.0:
            raise ConfigurationError("footprint_zipf must be >= 0")
        if self.arrival_rate <= 0.0:
            raise ConfigurationError("arrival_rate must be positive")
        if self.context_switch_cycles < 0.0:
            raise ConfigurationError("context_switch_cycles must be >= 0")
        if self.max_remap_per_resize < 0:
            raise ConfigurationError("max_remap_per_resize must be >= 0")
        normalised = []
        for event in self.resize:
            if len(event) != 2:
                raise ConfigurationError(
                    "resize events are (at_access, capacity) pairs"
                )
            at_access, capacity = int(event[0]), float(event[1])
            if at_access < 1:
                raise ConfigurationError("resize at_access must be >= 1")
            if capacity <= 0.0:
                raise ConfigurationError("resize capacity must be positive")
            normalised.append((at_access, capacity))
        object.__setattr__(
            self, "resize",
            tuple(sorted(normalised, key=lambda e: e[0])),
        )
        object.__setattr__(self, "profiles", tuple(self.profiles))

    # ------------------------------------------------------------------
    @property
    def effective_seed(self) -> int:
        return self.seed if self.seed is not None else rng.BASE_SEED

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["profiles"] = list(self.profiles)
        data["resize"] = [list(event) for event in self.resize]
        return data

    def spec_hash(self) -> str:
        """Stable 16-hex digest of the canonical scenario content."""
        text = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TenantScenarioSpec":
        if not isinstance(data, dict):
            raise ConfigurationError("tenant scenario must be a mapping")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys: {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if "profiles" in kwargs:
            kwargs["profiles"] = tuple(kwargs["profiles"])
        if "resize" in kwargs:
            kwargs["resize"] = tuple(
                tuple(event) for event in kwargs["resize"]
            )
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "TenantScenarioSpec":
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path} is not valid JSON: {exc}"
                ) from None
        return cls.from_dict(data)


@dataclasses.dataclass(frozen=True)
class TenantInfo:
    """Static description of one scheduled tenant."""

    tenant_id: int
    process_id: int
    profile: str
    capacity_scale: int
    footprint_pages: int
    vpn_base: int
    vpn_span: int
    arrival_round: int
    demand_accesses: int


@dataclasses.dataclass(frozen=True)
class TenantSegment:
    """One scheduling slice: a tenant's trace window bound to a core."""

    tenant_id: int
    process_id: int
    trace: ColumnarTrace


@dataclasses.dataclass
class TenantSchedule:
    """The compiled scenario: per-core segment streams plus metadata."""

    scenario: TenantScenarioSpec
    num_cores: int
    tenants: List[TenantInfo]
    per_core: List[List[TenantSegment]]
    total_span_pages: int

    @property
    def total_accesses(self) -> int:
        return sum(
            len(segment.trace)
            for segments in self.per_core for segment in segments
        )

    @property
    def context_switch_bound(self) -> int:
        """Upper bound on tenant switches (segments across all cores)."""
        return sum(len(segments) for segments in self.per_core)

    def digest(self) -> str:
        """Bit-level identity of the schedule (determinism test hook).

        Hashes the scheduling structure *and* every segment's packed
        access columns, so any change to arrivals, demands, footprints,
        interleaving, or the traces themselves changes the digest.
        """
        sha = hashlib.sha256()
        sha.update(str(self.num_cores).encode())
        for info in self.tenants:
            sha.update(json.dumps(dataclasses.asdict(info),
                                  sort_keys=True).encode())
        for core_id, segments in enumerate(self.per_core):
            sha.update(f"core:{core_id}".encode())
            for segment in segments:
                sha.update(
                    f"{segment.tenant_id}:{segment.process_id}:"
                    f"{len(segment.trace)}".encode()
                )
                pages, lines, writes, gaps = segment.trace.as_lists()
                sha.update(np.asarray(pages, dtype=np.int64).tobytes())
                sha.update(np.asarray(lines, dtype=np.int16).tobytes())
                sha.update(np.asarray(writes, dtype=bool).tobytes())
                sha.update(np.asarray(gaps, dtype=np.int64).tobytes())
        return sha.hexdigest()


def _tenant_scale(scenario: TenantScenarioSpec, tenant_id: int) -> int:
    """Zipf-skewed footprint divisor for tenant rank ``tenant_id``."""
    return max(1, int(round(
        scenario.capacity_scale
        * (tenant_id + 1) ** scenario.footprint_zipf
    )))


def build_schedule(
    scenario: TenantScenarioSpec,
    num_cores: int,
    base_seed: Optional[int] = None,
) -> TenantSchedule:
    """Compile a scenario into a deterministic per-core schedule.

    ``base_seed`` overrides the library base seed for scenarios without
    an explicit ``seed`` (the harness passes the job's derived seed so
    campaign repetitions re-roll arrivals and traces in lock-step with
    every other workload kind).
    """
    if num_cores < 1:
        raise ConfigurationError("schedule needs at least one core")
    effective = (
        scenario.seed if scenario.seed is not None
        else (base_seed if base_seed is not None else rng.BASE_SEED)
    )

    tenants: List[TenantInfo] = []
    streams: List[ColumnarTrace] = []
    vpn_base = 0
    arrival_round = 0
    for tenant_id in range(scenario.tenants):
        tenant_seed = rng.derive_seed(
            effective, "tenant", scenario.name, tenant_id
        )
        gen = np.random.default_rng(tenant_seed)
        profile_name = scenario.profiles[
            int(gen.integers(len(scenario.profiles)))
        ]
        demand = max(
            scenario.quantum, int(gen.exponential(scenario.tenant_accesses))
        )
        # Poisson-ish arrival process: exponential inter-arrival gaps in
        # units of scheduling rounds, cumulated across tenant ids.
        arrival_round += int(gen.exponential(1.0 / scenario.arrival_rate))

        scale = _tenant_scale(scenario, tenant_id)
        generator = TraceGenerator(
            spec_profile(profile_name),
            capacity_scale=scale,
            seed_tag=("tenants", scenario.name, tenant_id, tenant_seed),
        )
        trace = generator.generate(accesses=demand)
        # Private VPN window: the generator emits pages in
        # [0, ~3 * footprint); shift each tenant past its predecessors.
        span = 3 * generator.footprint + VPN_WINDOW_MARGIN
        shifted = AccessTrace(
            name=trace.name,
            virtual_pages=trace.virtual_pages + vpn_base,
            lines=trace.lines,
            writes=trace.writes,
            instruction_gaps=trace.instruction_gaps,
            base_cpi=trace.base_cpi,
            mlp=trace.mlp,
        )
        streams.append(ColumnarTrace.from_trace(shifted))
        tenants.append(TenantInfo(
            tenant_id=tenant_id,
            process_id=tenant_id,
            profile=profile_name,
            capacity_scale=scale,
            footprint_pages=generator.footprint,
            vpn_base=vpn_base,
            vpn_span=span,
            arrival_round=arrival_round,
            demand_accesses=len(trace),
        ))
        vpn_base += span

    # Quantized round-robin: each round admits newly arrived tenants,
    # then every core serves one quantum of the tenant at the head of
    # the ready queue.  ColumnarTrace slices are O(1) views, so the
    # schedule costs metadata, not copies.
    per_core: List[List[TenantSegment]] = [[] for _ in range(num_cores)]
    positions = [0] * scenario.tenants
    ready: deque = deque()
    pending = deque(sorted(tenants, key=lambda t: (t.arrival_round,
                                                   t.tenant_id)))
    round_index = 0
    remaining = scenario.tenants
    while remaining > 0:
        while pending and pending[0].arrival_round <= round_index:
            ready.append(pending.popleft())
        if not ready:
            # Idle gap: jump straight to the next arrival.
            round_index = pending[0].arrival_round
            continue
        for core_id in range(num_cores):
            if not ready:
                break
            info = ready.popleft()
            stream = streams[info.tenant_id]
            start = positions[info.tenant_id]
            stop = min(start + scenario.quantum, len(stream))
            per_core[core_id].append(TenantSegment(
                tenant_id=info.tenant_id,
                process_id=info.process_id,
                trace=stream.slice(start, stop),
            ))
            positions[info.tenant_id] = stop
            if stop < len(stream):
                ready.append(info)
            else:
                remaining -= 1
        round_index += 1

    return TenantSchedule(
        scenario=scenario,
        num_cores=num_cores,
        tenants=tenants,
        per_core=per_core,
        total_span_pages=vpn_base,
    )
