"""PARSEC multi-threaded program models (Section 5.3).

The paper runs the four PARSEC programs its framework supports:
``swaptions``, ``facesim``, ``fluidanimate`` and ``streamcluster``.  Its
analysis attributes the results to two properties reproduced here:

- ``streamcluster`` and ``facesim`` have **high page reuse and high
  MPKI**, so they benefit from the DRAM cache (streamcluster's speedup
  is the largest of the four);
- ``swaptions`` and ``fluidanimate`` have **many singleton pages and low
  MPKI**, so the overhead of page-granularity caching negates the fast
  in-package DRAM and they see little or no gain.

Threads share the hot set and partition stream/cold regions; all four
cores execute one process (a single shared page table -- no aliasing,
Section 3.5).
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.workloads.generator import TraceGenerator
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import AccessTrace

PARSEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="swaptions",
            footprint_mb=16.0,
            apki=2.0,
            hot_page_fraction=0.20,
            hot_access_fraction=0.30,
            zipf_alpha=0.8,
            stream_fraction=0.15,
            cold_fraction=0.30,
            burst_length=2.0,
            write_fraction=0.15,
            base_cpi=0.45,
            mlp=1.8,
        ),
        WorkloadProfile(
            name="facesim",
            footprint_mb=180.0,
            apki=13.0,
            hot_page_fraction=0.15,
            hot_access_fraction=0.55,
            zipf_alpha=0.9,
            stream_fraction=0.30,
            cold_fraction=0.05,
            burst_length=7.0,
            write_fraction=0.30,
            base_cpi=0.55,
            mlp=2.2,
        ),
        WorkloadProfile(
            name="fluidanimate",
            footprint_mb=80.0,
            apki=5.0,
            hot_page_fraction=0.15,
            hot_access_fraction=0.30,
            zipf_alpha=0.8,
            stream_fraction=0.20,
            cold_fraction=0.25,
            burst_length=3.0,
            write_fraction=0.30,
            base_cpi=0.5,
            mlp=2.0,
        ),
        WorkloadProfile(
            name="streamcluster",
            footprint_mb=70.0,
            apki=27.0,
            hot_page_fraction=0.30,
            hot_access_fraction=0.45,
            zipf_alpha=0.7,
            stream_fraction=0.45,
            cold_fraction=0.02,
            burst_length=10.0,
            write_fraction=0.10,
            base_cpi=0.5,
            mlp=2.5,
        ),
    )
}

PARSEC_ORDER = ("swaptions", "facesim", "fluidanimate", "streamcluster")


def parsec_profile(name: str) -> WorkloadProfile:
    """Look up a PARSEC program model by name."""
    try:
        return PARSEC_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown PARSEC program {name!r}; known: {sorted(PARSEC_PROFILES)}"
        ) from None


def parsec_thread_traces(
    name: str,
    num_threads: int = 4,
    accesses_per_thread: int = None,
    capacity_scale: int = 64,
) -> List[AccessTrace]:
    """Per-thread traces of one PARSEC program (shared address space)."""
    profile = parsec_profile(name)
    generator = TraceGenerator(profile, capacity_scale=capacity_scale)
    return [
        generator.generate(
            accesses=accesses_per_thread,
            thread_id=thread_id,
            num_threads=num_threads,
        )
        for thread_id in range(num_threads)
    ]
