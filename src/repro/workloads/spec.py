"""SPEC CPU 2006 memory-bound program models (Section 4).

The paper selects the 11 most memory-bound SPEC 2006 programs by MPKI.
Footprints follow the published SPEC 2006 memory-footprint data
(Henning, CAN 2007); access characters (streaming vs pointer-chasing,
reuse, write share) follow each program's well-documented behaviour:

- ``mcf`` -- huge pointer-chasing footprint, poor spatial locality;
- ``milc`` -- large lattice-QCD arrays, streaming with little reuse;
- ``leslie3d``/``bwaves``/``zeusmp``/``lbm`` -- stencil/CFD streaming
  codes with strong spatial locality, lbm with a heavy store share;
- ``soplex`` -- sparse LP solver, mixed pointer/stream behaviour;
- ``GemsFDTD`` -- FDTD solver with a large, low-reuse working set (the
  paper singles it out in Figure 7 and the Section 5.4 case study);
- ``omnetpp`` -- discrete-event simulation, pointer-heavy, medium set;
- ``sphinx3`` -- speech recognition, small hot working set, high reuse;
- ``libquantum`` -- one big vector swept sequentially over and over.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.profile import WorkloadProfile

SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="mcf",
            footprint_mb=130.0,
            apki=42.0,
            hot_page_fraction=0.12,
            hot_access_fraction=0.55,
            zipf_alpha=0.9,
            stream_fraction=0.08,
            cold_fraction=0.008,
            burst_length=2.5,
            sequential_lines=False,
            write_fraction=0.18,
            base_cpi=0.9,
            mlp=1.6,
        ),
        WorkloadProfile(
            name="milc",
            footprint_mb=155.0,
            apki=30.0,
            hot_page_fraction=0.08,
            hot_access_fraction=0.30,
            zipf_alpha=0.7,
            stream_fraction=0.45,
            cold_fraction=0.009,
            burst_length=8.0,
            write_fraction=0.30,
            base_cpi=0.6,
            mlp=2.0,
        ),
        WorkloadProfile(
            name="leslie3d",
            footprint_mb=30.0,
            apki=24.0,
            hot_page_fraction=0.20,
            hot_access_fraction=0.45,
            zipf_alpha=0.8,
            stream_fraction=0.42,
            cold_fraction=0.006,
            burst_length=10.0,
            write_fraction=0.30,
            base_cpi=0.55,
            mlp=2.4,
        ),
        WorkloadProfile(
            name="soplex",
            footprint_mb=65.0,
            apki=28.0,
            hot_page_fraction=0.12,
            hot_access_fraction=0.50,
            zipf_alpha=0.9,
            stream_fraction=0.30,
            cold_fraction=0.008,
            burst_length=5.0,
            write_fraction=0.15,
            base_cpi=0.7,
            mlp=1.9,
        ),
        WorkloadProfile(
            name="GemsFDTD",
            footprint_mb=190.0,
            apki=34.0,
            hot_page_fraction=0.08,
            hot_access_fraction=0.30,
            zipf_alpha=0.6,
            stream_fraction=0.40,
            cold_fraction=0.009,
            burst_length=8.0,
            write_fraction=0.30,
            base_cpi=0.6,
            mlp=2.0,
        ),
        WorkloadProfile(
            name="lbm",
            footprint_mb=95.0,
            apki=30.0,
            hot_page_fraction=0.05,
            hot_access_fraction=0.12,
            zipf_alpha=0.6,
            stream_fraction=0.80,
            cold_fraction=0.006,
            burst_length=20.0,
            write_fraction=0.45,
            base_cpi=0.5,
            mlp=2.8,
        ),
        WorkloadProfile(
            name="omnetpp",
            footprint_mb=55.0,
            apki=26.0,
            hot_page_fraction=0.15,
            hot_access_fraction=0.60,
            zipf_alpha=1.0,
            stream_fraction=0.10,
            cold_fraction=0.008,
            burst_length=3.0,
            sequential_lines=False,
            write_fraction=0.22,
            base_cpi=0.8,
            mlp=1.7,
        ),
        WorkloadProfile(
            name="sphinx3",
            footprint_mb=20.0,
            apki=20.0,
            hot_page_fraction=0.25,
            hot_access_fraction=0.65,
            zipf_alpha=1.0,
            stream_fraction=0.22,
            cold_fraction=0.004,
            burst_length=6.0,
            write_fraction=0.08,
            base_cpi=0.6,
            mlp=2.2,
        ),
        WorkloadProfile(
            name="libquantum",
            footprint_mb=40.0,
            apki=32.0,
            hot_page_fraction=0.05,
            hot_access_fraction=0.05,
            zipf_alpha=0.5,
            stream_fraction=0.92,
            cold_fraction=0.004,
            burst_length=32.0,
            write_fraction=0.25,
            base_cpi=0.45,
            mlp=3.0,
        ),
        WorkloadProfile(
            name="bwaves",
            footprint_mb=145.0,
            apki=27.0,
            hot_page_fraction=0.08,
            hot_access_fraction=0.22,
            zipf_alpha=0.7,
            stream_fraction=0.65,
            cold_fraction=0.010,
            burst_length=14.0,
            write_fraction=0.28,
            base_cpi=0.5,
            mlp=2.6,
        ),
        WorkloadProfile(
            name="zeusmp",
            footprint_mb=95.0,
            apki=22.0,
            hot_page_fraction=0.12,
            hot_access_fraction=0.40,
            zipf_alpha=0.8,
            stream_fraction=0.42,
            cold_fraction=0.008,
            burst_length=10.0,
            write_fraction=0.30,
            base_cpi=0.55,
            mlp=2.3,
        ),
)
}

#: Display order used by Figure 7 style reports.
SPEC_ORDER: Tuple[str, ...] = tuple(sorted(SPEC_PROFILES))


def spec_profile(name: str) -> WorkloadProfile:
    """Look up a SPEC program model by name."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SPEC program {name!r}; known: {sorted(SPEC_PROFILES)}"
        ) from None
