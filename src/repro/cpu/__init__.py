"""CPU timing model and the trace-driven simulator.

The core model is an interval-style approximation of the paper's
out-of-order cores: non-memory work retires at a workload-specific base
CPI, and memory latency beyond the L1 is divided by a memory-level-
parallelism factor before it stalls the core.  The multicore engine
interleaves per-core traces in timestamp order so that shared structures
(the DRAM cache, the channels, the GIPT) observe a realistic global
ordering.
"""

from repro.cpu.core_model import (
    CoreTimingModel,
    WindowCoreTimingModel,
    make_core_model,
)
from repro.cpu.multicore import BoundTrace, run_interleaved
from repro.cpu.simulator import SimulationResult, Simulator

__all__ = [
    "CoreTimingModel",
    "WindowCoreTimingModel",
    "make_core_model",
    "BoundTrace",
    "run_interleaved",
    "SimulationResult",
    "Simulator",
]
