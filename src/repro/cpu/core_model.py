"""Interval-style timing model of one out-of-order core.

Cycle-accurate OoO simulation is far beyond what pure Python can sustain,
and the paper's results do not depend on pipeline minutiae -- they depend
on how much *memory latency* each design exposes.  The standard interval
approximation captures that: the core retires non-memory instructions at
a base CPI, and each memory access adds a stall equal to its latency
beyond the (pipelined) L1 hit time divided by the workload's
memory-level parallelism.  Base CPI and MLP are per-workload parameters
of the synthetic trace profiles.
"""

from __future__ import annotations

from repro.common.config import CoreConfig

#: L1 hit latency assumed when a model is built from a bare CoreConfig
#: (tests, standalone use).  The simulator always passes the system's
#: ``l1.hit_cycles``; this default merely mirrors the Table 3 value.
DEFAULT_L1_HIT_CYCLES = 2.0


class CoreTimingModel:
    """Accumulates cycles and instructions for one core."""

    __slots__ = (
        "config",
        "base_cpi",
        "mlp",
        "cycles",
        "instructions",
        "stall_cycles",
        "_l1_hit",
        "_cycle_ns",
    )

    def __init__(self, config: CoreConfig, base_cpi: float, mlp: float,
                 l1_hit_cycles: float = DEFAULT_L1_HIT_CYCLES):
        if base_cpi <= 0 or mlp < 1.0:
            raise ValueError(
                f"base_cpi must be positive and mlp >= 1, got "
                f"cpi={base_cpi} mlp={mlp}"
            )
        self.config = config
        self.base_cpi = base_cpi
        self.mlp = mlp
        self.cycles = 0.0
        self.instructions = 0
        self.stall_cycles = 0.0
        #: Pipelined L1 hit latency: accesses at or below it stall
        #: nothing.  Sourced from ``OnDieCacheConfig.hit_cycles`` (the
        #: caller passes ``config.l1.hit_cycles``); CoreConfig carries
        #: no duplicate.
        self._l1_hit = float(l1_hit_cycles)
        self._cycle_ns = 1.0 / config.frequency_ghz

    def advance_instructions(self, count: int) -> None:
        """Retire ``count`` non-memory instructions at the base CPI."""
        self.instructions += count
        self.cycles += count * self.base_cpi

    def account_memory(self, latency_cycles: float) -> float:
        """Apply one memory access's latency; returns the visible stall.

        L1 hits are fully pipelined (no stall); anything beyond overlaps
        with other outstanding misses, so only ``excess / mlp`` cycles
        stall the core.  The memory instruction itself retires here.
        """
        self.instructions += 1
        self.cycles += self.base_cpi
        excess = latency_cycles - self._l1_hit
        if excess <= 0:
            return 0.0
        stall = excess / self.mlp
        self.cycles += stall
        self.stall_cycles += stall
        return stall

    @property
    def time_ns(self) -> float:
        """Local wall-clock position of this core."""
        return self.cycles * self._cycle_ns

    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class WindowCoreTimingModel(CoreTimingModel):
    """Interval model with an explicit instruction window (ROB).

    The Karkhanis/Smith-style refinement of the MLP-divisor model: a
    long-latency access stalls the core only once the reorder buffer
    fills -- the window hides ``rob_entries * base_cpi`` cycles -- and
    misses issued while an earlier miss's *stall shadow* is still open
    overlap with it instead of serialising.  Selected with
    ``CoreConfig(model="window")``; the figures are calibrated with the
    default divisor model, and the two agree on every qualitative
    ordering (see tests/cpu/test_core_model.py).
    """

    __slots__ = ("rob_entries", "_hide_cycles", "_shadow_end")

    def __init__(self, config: CoreConfig, base_cpi: float, mlp: float,
                 l1_hit_cycles: float = DEFAULT_L1_HIT_CYCLES):
        super().__init__(config, base_cpi, mlp, l1_hit_cycles)
        self.rob_entries = config.rob_entries
        #: Latency one miss can hide while the window drains behind it.
        self._hide_cycles = self.rob_entries * base_cpi
        #: Cycle (absolute) until which memory latency is already paid.
        self._shadow_end = 0.0

    def account_memory(self, latency_cycles: float) -> float:
        self.instructions += 1
        self.cycles += self.base_cpi
        excess = latency_cycles - self._l1_hit
        if excess <= 0:
            return 0.0
        # Issue position in the *stall-free* (program-order) frame: an
        # OoO core issues the next load into the window while an earlier
        # miss is still outstanding, so overlap must be judged by
        # program position, not by the stalled clock.
        issue = self.instructions * self.base_cpi
        completion = issue + excess
        # The visible portion starts after whatever the window hides and
        # after the shadow of any overlapping earlier miss.
        visible_from = max(issue + self._hide_cycles, self._shadow_end)
        stall = max(0.0, completion - visible_from)
        if completion > self._shadow_end:
            self._shadow_end = completion
        self.cycles += stall
        self.stall_cycles += stall
        return stall


def make_core_model(
    config: CoreConfig, base_cpi: float, mlp: float,
    l1_hit_cycles: float = DEFAULT_L1_HIT_CYCLES,
) -> CoreTimingModel:
    """Instantiate the configured core timing model."""
    if config.model == "mlp":
        return CoreTimingModel(config, base_cpi, mlp, l1_hit_cycles)
    if config.model == "window":
        return WindowCoreTimingModel(config, base_cpi, mlp, l1_hit_cycles)
    raise ValueError(
        f"unknown core model {config.model!r}; expected 'mlp' or 'window'"
    )
