"""Timestamp-interleaved execution of per-core traces against one design.

Each core replays its own trace on its own clock; the engine always steps
the core whose local time is earliest, so shared state -- the DRAM cache,
the channel schedulers, the GIPT -- sees events in a globally consistent
order.  This is the standard way to get multi-programmed contention
behaviour out of a one-pass trace simulation.

This module is the hot path of every experiment in the repository: the
inner loops below run once per simulated memory reference.  They are
therefore written for throughput -- slotted per-core state objects,
hot values bound to locals, the default interval core model inlined --
while producing *bit-identical* results to the straightforward
formulation (the golden-stats suite enforces this).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.cpu.core_model import CoreTimingModel, make_core_model
from repro.designs.base import MemorySystemDesign
from repro.workloads.trace import AccessTrace


@dataclasses.dataclass
class BoundTrace:
    """A trace assigned to a core and an address space."""

    core_id: int
    process_id: int
    trace: AccessTrace


@dataclasses.dataclass
class CoreResult:
    """Per-core outcome of a run."""

    core_id: int
    workload: str
    instructions: int
    cycles: float
    stall_cycles: float

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class _CoreState:
    """Slotted per-core replay state (one dict lookup fewer per field
    than the dict-of-dicts this replaces)."""

    __slots__ = ("core_id", "process_id", "workload", "model",
                 "pages", "lines", "writes", "gaps", "pos", "length")

    def __init__(self, binding: BoundTrace, model,
                 pages, lines, writes, gaps):
        self.core_id = binding.core_id
        self.process_id = binding.process_id
        self.workload = binding.trace.name
        self.model = model
        self.pages = pages
        self.lines = lines
        self.writes = writes
        self.gaps = gaps
        self.pos = 0
        self.length = len(pages)


def _run_single(state: _CoreState, access_cycles,
                generic: bool = False) -> None:
    """Replay one core's remaining trace with no scheduling overhead.

    Used whenever only one core is (still) active -- the whole run for
    single-programmed workloads, the end-game for mixes.  The default
    MLP interval model's arithmetic is inlined (same operations in the
    same order as ``CoreTimingModel.advance_instructions`` /
    ``account_memory``, so the floats come out identical); other core
    models fall back to method calls.  ``generic=True`` forces the
    method-call branch: the inlined loop keeps the model's state in
    locals until it exits, so observers that read the model mid-run
    (repro.obs sampling per-core IPC from inside ``access_cycles``)
    need the generic path -- which, per the above, produces identical
    floats.
    """
    model = state.model
    pages = state.pages
    lines = state.lines
    writes = state.writes
    gaps = state.gaps
    pos = state.pos
    length = state.length
    core_id = state.core_id
    process_id = state.process_id

    if not generic and type(model) is CoreTimingModel:
        base_cpi = model.base_cpi
        mlp = model.mlp
        l1_hit = model._l1_hit
        cycle_ns = model._cycle_ns
        cycles = model.cycles
        instructions = model.instructions
        stall_cycles = model.stall_cycles
        while pos < length:
            # advance_instructions(gap)
            gap = gaps[pos]
            instructions += gap
            cycles += gap * base_cpi
            cost = access_cycles(
                core_id, process_id, pages[pos], lines[pos], writes[pos],
                cycles * cycle_ns,
            )
            # account_memory(cost)
            instructions += 1
            cycles += base_cpi
            excess = cost - l1_hit
            if excess > 0:
                stall = excess / mlp
                cycles += stall
                stall_cycles += stall
            pos += 1
        model.cycles = cycles
        model.instructions = instructions
        model.stall_cycles = stall_cycles
    else:
        advance = model.advance_instructions
        account = model.account_memory
        while pos < length:
            advance(gaps[pos])
            account(access_cycles(
                core_id, process_id, pages[pos], lines[pos], writes[pos],
                model.time_ns,
            ))
            pos += 1
    state.pos = pos


def run_interleaved(
    design: MemorySystemDesign,
    bindings: List[BoundTrace],
    max_accesses: Optional[int] = None,
    _kernel=None,
) -> List[CoreResult]:
    """Replay every bound trace to completion; returns per-core results.

    ``max_accesses`` optionally truncates each trace (handy for tests).
    ``_kernel`` is the batched engine's hook (see :mod:`repro.cpu.batched`):
    a fused ``kernel(design, state)`` replacement for :func:`_run_single`
    used in the single-active-core regime when the run is unobserved.
    """
    if not bindings:
        return []
    seen_cores = set()
    for binding in bindings:
        if binding.core_id in seen_cores:
            raise ValueError(f"core {binding.core_id} bound twice")
        seen_cores.add(binding.core_id)

    core_cfg = design.config.core
    states = []
    for binding in bindings:
        trace = binding.trace
        pages, lines, writes, gaps = trace.as_lists()
        if max_accesses is not None:
            pages = pages[:max_accesses]
            lines = lines[:max_accesses]
            writes = writes[:max_accesses]
            gaps = gaps[:max_accesses]
        model = make_core_model(core_cfg, trace.base_cpi, trace.mlp,
                                design.config.l1.hit_cycles)
        states.append(_CoreState(binding, model, pages, lines, writes, gaps))

    active = [s for s in states if s.length > 0]
    access_cycles = design.access_cycles  # bind once; called per access

    # Observability hook (repro.obs): installed telemetry sets
    # ``obs_attach_cores`` to receive the core models for per-window
    # IPC.  Attached cores force _run_single's generic branch so the
    # models stay readable mid-run; with nothing installed this is one
    # getattr per run.
    attach = getattr(design, "obs_attach_cores", None)
    if attach is not None:
        attach([(s.core_id, s.model) for s in states])

    # Multi-core regime: step the earliest core one access at a time.
    # (4 cores: a linear argmin scan beats a heap.)  Ties go to the
    # earliest-bound core, matching min()'s first-minimum semantics.
    while len(active) > 1:
        best = active[0]
        best_index = 0
        best_clock = best.model.cycles
        for index in range(1, len(active)):
            state = active[index]
            clock = state.model.cycles
            if clock < best_clock:
                best = state
                best_index = index
                best_clock = clock
        model = best.model
        pos = best.pos
        model.advance_instructions(best.gaps[pos])
        model.account_memory(access_cycles(
            best.core_id, best.process_id, best.pages[pos], best.lines[pos],
            best.writes[pos], model.time_ns,
        ))
        best.pos = pos + 1
        if best.pos >= best.length:
            del active[best_index]  # preserves scan order of the rest

    # Single-core regime (or tail of a multi-core run): tight loop.
    if active:
        state = active[0]
        if (_kernel is not None and attach is None
                and type(state.model) is CoreTimingModel):
            _kernel(design, state)
        else:
            _run_single(state, access_cycles, generic=attach is not None)

    return [
        CoreResult(
            core_id=s.core_id,
            workload=s.workload,
            instructions=s.model.instructions,
            cycles=s.model.cycles,
            stall_cycles=s.model.stall_cycles,
        )
        for s in states
    ]
