"""Timestamp-interleaved execution of per-core traces against one design.

Each core replays its own trace on its own clock; the engine always steps
the core whose local time is earliest, so shared state -- the DRAM cache,
the channel schedulers, the GIPT -- sees events in a globally consistent
order.  This is the standard way to get multi-programmed contention
behaviour out of a one-pass trace simulation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.cpu.core_model import make_core_model
from repro.designs.base import MemorySystemDesign
from repro.workloads.trace import AccessTrace


@dataclasses.dataclass
class BoundTrace:
    """A trace assigned to a core and an address space."""

    core_id: int
    process_id: int
    trace: AccessTrace


@dataclasses.dataclass
class CoreResult:
    """Per-core outcome of a run."""

    core_id: int
    workload: str
    instructions: int
    cycles: float
    stall_cycles: float

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


def run_interleaved(
    design: MemorySystemDesign,
    bindings: List[BoundTrace],
    max_accesses: Optional[int] = None,
) -> List[CoreResult]:
    """Replay every bound trace to completion; returns per-core results.

    ``max_accesses`` optionally truncates each trace (handy for tests).
    The inner loop is deliberately flat and allocation-free: it is the
    hot path of every experiment in the repository.
    """
    if not bindings:
        return []
    seen_cores = set()
    for binding in bindings:
        if binding.core_id in seen_cores:
            raise ValueError(f"core {binding.core_id} bound twice")
        seen_cores.add(binding.core_id)

    core_cfg = design.config.core
    states = []
    for binding in bindings:
        trace = binding.trace
        pages, lines, writes, gaps = trace.as_lists()
        if max_accesses is not None:
            pages = pages[:max_accesses]
            lines = lines[:max_accesses]
            writes = writes[:max_accesses]
            gaps = gaps[:max_accesses]
        model = make_core_model(core_cfg, trace.base_cpi, trace.mlp)
        states.append(
            {
                "binding": binding,
                "model": model,
                "pages": pages,
                "lines": lines,
                "writes": writes,
                "gaps": gaps,
                "pos": 0,
                "len": len(pages),
            }
        )

    active = [s for s in states if s["len"] > 0]
    access = design.access  # bind once; called len(trace) times

    while active:
        # Pick the core whose clock is earliest (4 cores: a linear scan
        # beats a heap).
        state = min(active, key=lambda s: s["model"].cycles)
        model = state["model"]
        pos = state["pos"]
        model.advance_instructions(state["gaps"][pos])
        binding = state["binding"]
        cost = access(
            binding.core_id,
            binding.process_id,
            state["pages"][pos],
            state["lines"][pos],
            state["writes"][pos],
            model.time_ns,
        )
        model.account_memory(cost.cycles)
        pos += 1
        state["pos"] = pos
        if pos >= state["len"]:
            active.remove(state)

    return [
        CoreResult(
            core_id=s["binding"].core_id,
            workload=s["binding"].trace.name,
            instructions=s["model"].instructions,
            cycles=s["model"].cycles,
            stall_cycles=s["model"].stall_cycles,
        )
        for s in states
    ]
