"""Context-switched replay of a multi-tenant schedule.

:func:`run_schedule` is the tenant-aware sibling of
:func:`repro.cpu.multicore.run_interleaved`: cores still advance in
global timestamp order (the earliest local clock steps next), but each
core works through an ordered list of :class:`TenantSegment` slices
instead of one trace.  At every segment boundary where the tenant
changes, the core pays the scenario's context-switch penalty and --
matching real OSes on ASID-less TLBs -- optionally flushes its TLB
hierarchy through the callback-firing
:meth:`repro.vm.tlb.TLBHierarchy.flush`, so GIPT residence bits stay
consistent across switches.

QoS attribution rides the design's ``_last_*`` side channels: after
every access the replay reads ``_last_l3_involved``/``_last_l3_cycles``
to build per-tenant demand-latency histograms, and core-model snapshots
at segment boundaries attribute instructions and cycles to tenants.
The per-core clock is continuous across tenants (one model per core,
retuned to each segment's workload parameters), so shared-resource
contention between tenants is preserved.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.common.stats import Histogram
from repro.cpu.core_model import WindowCoreTimingModel, make_core_model
from repro.cpu.multicore import CoreResult
from repro.designs.base import MemorySystemDesign
from repro.workloads.tenants import TenantSchedule


@dataclasses.dataclass
class TenantQoS:
    """Per-tenant quality-of-service accounting for one run."""

    tenant_id: int
    profile: str
    arrival_round: int
    footprint_pages: int
    instructions: int = 0
    cycles: float = 0.0
    l3_accesses: int = 0
    demand_latency: Histogram = None  # set in __post_init__

    def __post_init__(self) -> None:
        if self.demand_latency is None:
            self.demand_latency = Histogram(
                f"tenant{self.tenant_id}_demand_latency_ns"
            )

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        """Off-die demand misses (L3-bound accesses) per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l3_accesses / self.instructions

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant_id,
            "profile": self.profile,
            "arrival_round": self.arrival_round,
            "footprint_pages": self.footprint_pages,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "l3_accesses": self.l3_accesses,
            "mpki": self.mpki,
            "mean_demand_ns": self.demand_latency.mean(),
            "p50_demand_ns": self.demand_latency.percentile(0.50),
            "p99_demand_ns": self.demand_latency.percentile(0.99),
        }


class _ScheduledCore:
    """Replay cursor of one core through its segment list."""

    __slots__ = ("core_id", "segments", "seg_index", "pos", "length",
                 "pages", "lines", "writes", "gaps", "model",
                 "tenant_id", "process_id")

    def __init__(self, core_id: int, segments, model):
        self.core_id = core_id
        self.segments = segments
        self.seg_index = -1
        self.pos = 0
        self.length = 0
        self.pages = self.lines = self.writes = self.gaps = ()
        self.model = model
        self.tenant_id = -1
        self.process_id = -1


def _retune(model, base_cpi: float, mlp: float) -> None:
    """Point a core model at a new tenant's workload parameters.

    The clock, instruction count and stall totals continue -- it is the
    same physical core -- but retirement width and overlap now follow
    the incoming tenant.  Window models must refresh the derived
    ROB-hiding constant, which is a pure function of ``base_cpi``.
    """
    model.base_cpi = base_cpi
    model.mlp = mlp
    if isinstance(model, WindowCoreTimingModel):
        model._hide_cycles = model.rob_entries * base_cpi


def run_schedule(
    design: MemorySystemDesign,
    schedule: TenantSchedule,
):
    """Replay ``schedule`` against ``design``.

    Returns ``(core_results, tenant_qos, switch_stats)`` where
    ``tenant_qos`` maps tenant id -> :class:`TenantQoS` and
    ``switch_stats`` counts context switches and TLB shootdown volume.
    """
    scenario = schedule.scenario
    core_cfg = design.config.core
    cycle_ns = 1.0 / core_cfg.frequency_ghz
    flush_on_switch = scenario.flush_tlb_on_switch
    switch_cycles = scenario.context_switch_cycles

    qos: Dict[int, TenantQoS] = {
        info.tenant_id: TenantQoS(
            tenant_id=info.tenant_id,
            profile=info.profile,
            arrival_round=info.arrival_round,
            footprint_pages=info.footprint_pages,
        )
        for info in schedule.tenants
    }
    switch_stats = {"context_switches": 0, "tlb_flush_entries": 0}

    states: List[_ScheduledCore] = []
    for core_id, segments in enumerate(schedule.per_core):
        first = next((s for s in segments if len(s.trace)), None)
        if first is None:
            continue
        model = make_core_model(
            core_cfg, first.trace.base_cpi, first.trace.mlp,
            design.config.l1.hit_cycles,
        )
        states.append(_ScheduledCore(core_id, segments, model))

    access_cycles = design.access_cycles  # bind once (wrappers included)
    attach = getattr(design, "obs_attach_cores", None)
    if attach is not None:
        attach([(s.core_id, s.model) for s in states])

    def advance_segment(state: _ScheduledCore) -> bool:
        """Move ``state`` to its next non-empty segment; False = done."""
        while True:
            state.seg_index += 1
            if state.seg_index >= len(state.segments):
                return False
            segment = state.segments[state.seg_index]
            if not len(segment.trace):
                continue
            if segment.tenant_id != state.tenant_id:
                if state.tenant_id >= 0:
                    # A genuine context switch (not the core's first
                    # tenant): charge the switch and shoot the TLB down.
                    switch_stats["context_switches"] += 1
                    state.model.cycles += switch_cycles
                    if flush_on_switch:
                        switch_stats["tlb_flush_entries"] += \
                            design.tlbs[state.core_id].flush()
                _retune(state.model, segment.trace.base_cpi,
                        segment.trace.mlp)
            state.tenant_id = segment.tenant_id
            state.process_id = segment.process_id
            pages, lines, writes, gaps = segment.trace.as_lists()
            state.pages, state.lines = pages, lines
            state.writes, state.gaps = writes, gaps
            state.pos = 0
            state.length = len(pages)
            return True

    active = [s for s in states if advance_segment(s)]

    # Global-timestamp interleave: step the earliest core one access.
    while active:
        best = active[0]
        best_index = 0
        best_clock = best.model.cycles
        for index in range(1, len(active)):
            state = active[index]
            clock = state.model.cycles
            if clock < best_clock:
                best = state
                best_index = index
                best_clock = clock
        model = best.model
        pos = best.pos
        tq = qos[best.tenant_id]
        before_instructions = model.instructions
        before_cycles = model.cycles
        model.advance_instructions(best.gaps[pos])
        model.account_memory(access_cycles(
            best.core_id, best.process_id, best.pages[pos], best.lines[pos],
            best.writes[pos], model.time_ns,
        ))
        tq.instructions += model.instructions - before_instructions
        tq.cycles += model.cycles - before_cycles
        if design._last_l3_involved:
            tq.l3_accesses += 1
            tq.demand_latency.observe(design._last_l3_cycles * cycle_ns)
        best.pos = pos + 1
        if best.pos >= best.length and not advance_segment(best):
            del active[best_index]

    core_results = [
        CoreResult(
            core_id=s.core_id,
            workload=f"tenants:{scenario.name}",
            instructions=s.model.instructions,
            cycles=s.model.cycles,
            stall_cycles=s.model.stall_cycles,
        )
        for s in states
    ]
    return core_results, qos, switch_stats
