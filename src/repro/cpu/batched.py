"""Batched (v2) execution engine: fused per-design access kernels.

PR 2 made :meth:`MemorySystemDesign.access_cycles` a single hand-inlined
function; the remaining per-access overhead is the *call* into it (and,
inside, the per-access re-hoisting of every structure the path touches).
This module removes both: a **kernel** replays one core's whole trace in
a single loop with every hot structure -- TLB dicts, on-die sets, GIPT,
channel free-lists, timing constants -- bound to locals exactly once.

Bit-identity discipline (the golden-stats oracle compares floats with
``==``):

- Each access is first *classified with read-only probes*.  Only if the
  whole access is expressible inline does the kernel mutate anything;
  otherwise it falls back to the untouched scalar
  ``design.access_cycles`` call, which then performs every probe,
  counter update and side effect itself.  Rare events -- fills, page
  walks of unmapped pages, superpages, NC pages, PU waits, evictions --
  therefore run the exact scalar code.
- Integer counters are accumulated in locals and flushed once at kernel
  exit: integer addition is exact and commutative, and nothing reads
  the counters mid-run when trace hooks are off (a kernel
  precondition).
- Float accumulators (latency sums, queue times, energy) are
  order-sensitive, so they cannot be batch-flushed like the integers.
  Instead each lives in a *seeded local*: initialised from its
  attribute, advanced by the same additions in the same order as the
  scalar path (same rounding, same result), stored back at exit.  The
  scalar-fallback sites flush the locals first and reload after, so
  fallback accesses always see -- and update -- the true totals.

Kernels activate only when the run is unobserved: no event tracer, no
telemetry/validation wrapper around ``access_cycles``, no latency
histograms, no mid-run core attachments.  With any of those installed,
:func:`run_interleaved_batched` silently degrades to the scalar engine
-- which produces the same numbers, just slower.
"""

from __future__ import annotations

import gc
from typing import List, Optional

from repro.common.addressing import LINES_PER_PAGE, PAGE_BYTES
from repro.core.miss_handler import MissOutcome
from repro.core.policies import FIFOVictimTracker
from repro.cpu.multicore import BoundTrace, CoreResult, run_interleaved
from repro.designs.base import PA_NAMESPACE_OFFSET, MemorySystemDesign
from repro.designs.tagless_design import TaglessDesign
from repro.obs.events import null_event
from repro.vm.tlb import TLBEntry

#: Engine mode names accepted by Simulator.run / the CLI.
ENGINE_MODES = ("scalar", "batched")


def _observed(design: MemorySystemDesign) -> bool:
    """True when something is watching the per-access path.

    Installed telemetry/validation wraps ``access_cycles`` as an
    *instance* attribute; event tracers rebind ``trace_event``;
    histograms hang off the DRAM devices.  Any of these means the
    batched kernels (which bypass all three) must stand down.
    """
    return (
        design.trace_event is not null_event
        or "access_cycles" in design.__dict__
        or getattr(design, "obs_attach_cores", None) is not None
        or design.in_package.latency_histogram is not None
        or design.off_package.latency_histogram is not None
    )


def select_kernel(design: MemorySystemDesign):
    """Pick the fused kernel for ``design`` (None -> scalar only)."""
    if _observed(design):
        return None
    if not getattr(design, "batchable", True):
        # Designs that override the scalar access path (the resizable
        # tagless variant's capacity-schedule trigger) must not be fed
        # to kernels that bypass it.
        return None
    if isinstance(design, TaglessDesign):
        engine = design.engine
        ondie = design.ondie[0]
        pow2 = all(
            n & (n - 1) == 0
            for n in (
                ondie.l1.num_sets,
                ondie.l2.num_sets,
                design.in_package.channels.num_channels,
                design.off_package.channels.num_channels,
            )
        )
        if (
            pow2  # the kernel indexes sets/channels with bitmasks
            and engine.trace_event is null_event
            and engine.footprint is None
            and design.caching_policy is None
        ):
            return _run_tagless_kernel
    return _run_generic_kernel


def run_interleaved_batched(
    design: MemorySystemDesign,
    bindings: List[BoundTrace],
    max_accesses: Optional[int] = None,
) -> List[CoreResult]:
    """Drop-in replacement for :func:`run_interleaved`.

    Multi-core interleaving keeps the scalar argmin stepping (global
    event order is what makes contention results meaningful); the
    single-active-core regime -- the whole run for single-programmed
    workloads, the end-game for mixes -- runs the fused kernel.

    The cyclic collector is suspended for the duration of the replay:
    the kernels allocate steadily (TLB entries, zip tuples) but create
    no cycles, so generation-0 sweeps are pure overhead.  Collection
    state is restored even if the replay raises.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        return run_interleaved(
            design, bindings, max_accesses, _kernel=select_kernel(design)
        )
    finally:
        if was_enabled:
            gc.enable()


# ----------------------------------------------------------------------
# Generic kernel: every design's shared path (base.access_cycles).
# ----------------------------------------------------------------------
def _run_generic_kernel(design: MemorySystemDesign, state, *,
                        _next=next, _iter=iter, _len=len) -> None:
    """Replay ``state``'s remaining trace against any design.

    Inlines the design-independent part of the access path: TLB L1/L2
    hits and on-die L1/L2 hits.  TLB refills and on-die full misses are
    design-specific (``_refill_tlb`` / ``_service_l2_miss``), so those
    accesses fall back -- after read-only classification, before any
    mutation -- to the scalar ``access_cycles``.

    Shares the tagless kernel's loop shortcuts (see its docstring for
    the proofs): the *same-page run* skips the TLB dicts when an access
    repeats the previous page (the page is the MRU key of both levels,
    so fused-LRU's move-to-end is the identity), and the *zero-stall
    exit* skips the stall arithmetic when ``tlb_cycles == 0.0`` and the
    on-die L1 hits (``cost - l1_hit`` is exactly ``0.0``).  The
    same-page cache survives the on-die-miss fallback -- the scalar
    call re-runs the translation itself, leaving vp as the MRU entry of
    both levels -- but not the translation fallback, whose outcome
    (refill, NC) the kernel cannot see.
    """
    model = state.model
    base_cpi = model.base_cpi
    mlp = model.mlp
    l1_hit = model._l1_hit
    cycle_ns = model._cycle_ns
    cycles = model.cycles
    instructions = model.instructions
    stall_cycles = model.stall_cycles

    core_id = state.core_id
    process_id = state.process_id
    access_cycles = design.access_cycles

    tlb = design.tlbs[core_id]
    l1_tlb = tlb.l1
    l1_map = l1_tlb._map
    l1_cap = l1_tlb.capacity
    l2_map = tlb.l2._map
    tlb_l2_hit_cycles = design._tlb_l2_hit_cycles

    ondie = design.ondie[core_id]
    ol1 = ondie.l1
    ol1_nsets = ol1.num_sets
    ol1_ent = [s.entries for s in ol1._sets]
    ol1_ways = ol1._sets[0].ways
    ol2 = ondie.l2
    ol2_nsets = ol2.num_sets
    ol2_ent = [s.entries for s in ol2._sets]
    ol2_ways = ol2._sets[0].ways
    pending_wb = ondie.pending_writebacks
    route_writebacks = design._route_writebacks

    l1_hit_cycles = design._l1_hit_cycles
    l2_hit_cycles = design._l2_hit_cycles
    lines_per_page = LINES_PER_PAGE

    n_acc = 0
    n_t1 = n_t2 = 0
    n_o1 = n_o2 = 0
    n_owb = 0

    # Same-page run cache (see the tagless kernel): -1 never equals a
    # virtual page number.
    last_vp = -1
    last_base = 0
    last_entry = None

    pos = state.pos
    pages, lines, writes, gaps = (
        state.pages, state.lines, state.writes, state.gaps
    )
    if pos:
        pages, lines, writes, gaps = (
            pages[pos:], lines[pos:], writes[pos:], gaps[pos:]
        )
    for vp, line, w, gap in zip(pages, lines, writes, gaps):
        instructions += gap
        cycles += gap * base_cpi

        if vp == last_vp:
            entry = last_entry
            t_level = 0  # same-page: TLB dict traffic is the identity
            line_key = last_base + line
        else:
            entry = l1_map.get(vp)
            t_level = 1
            if entry is None:
                entry = l2_map.get(vp)
                t_level = 2
            if entry is None or entry.non_cacheable:
                # TLB refill (design-specific) or NC key space: scalar.
                cost = access_cycles(
                    core_id, process_id, vp, line, w, cycles * cycle_ns
                )
                last_vp = -1
                instructions += 1
                cycles += base_cpi
                excess = cost - l1_hit
                if excess > 0:
                    stall = excess / mlp
                    cycles += stall
                    stall_cycles += stall
                continue
            line_key = entry.target_page * lines_per_page + line
        entries = ol1_ent[line_key % ol1_nsets]
        in_ol1 = line_key in entries
        if not in_ol1:
            l2_entries = ol2_ent[line_key % ol2_nsets]
            if line_key not in l2_entries:
                # On-die full miss: service is design-specific; scalar.
                # Its own translation leaves vp MRU in both TLB levels,
                # so the same-page cache stays armed.
                cost = access_cycles(
                    core_id, process_id, vp, line, w, cycles * cycle_ns
                )
                last_vp = vp
                last_base = entry.target_page * lines_per_page
                last_entry = entry
                instructions += 1
                cycles += base_cpi
                excess = cost - l1_hit
                if excess > 0:
                    stall = excess / mlp
                    cycles += stall
                    stall_cycles += stall
                continue

        # --- Fully inlinable: replay mutations in scalar order.
        n_acc += 1
        if t_level == 0:
            n_t1 += 1
            tlb_cycles = 0.0
        elif t_level == 1:
            n_t1 += 1
            l1_map[vp] = l1_map.pop(vp)
            moved = l2_map.pop(vp, None)
            if moved is not None:
                l2_map[vp] = moved
            tlb_cycles = 0.0
            last_vp = vp
            last_base = line_key - line
            last_entry = entry
        else:
            n_t2 += 1
            l2_map[vp] = l2_map.pop(vp)
            if _len(l1_map) >= l1_cap:
                del l1_map[_next(_iter(l1_map))]
            l1_map[vp] = entry
            tlb_cycles = tlb_l2_hit_cycles
            last_vp = vp
            last_base = line_key - line
            last_entry = entry
        if in_ol1:
            n_o1 += 1
            entries[line_key] = entries.pop(line_key) or w
            instructions += 1
            cycles += base_cpi
            if tlb_cycles:
                excess = tlb_cycles + l1_hit_cycles - l1_hit
                if excess > 0:
                    stall = excess / mlp
                    cycles += stall
                    stall_cycles += stall
            continue
        n_o2 += 1
        now_ns = cycles * cycle_ns
        if pending_wb:
            pending_wb.clear()
        l2_entries[line_key] = l2_entries.pop(line_key) or w
        if _len(entries) >= ol1_ways:
            victim = _next(_iter(entries))
            if entries.pop(victim):
                spill_entries = ol2_ent[victim % ol2_nsets]
                if victim in spill_entries:
                    spill_entries[victim] = True
                else:
                    if _len(spill_entries) >= ol2_ways:
                        spilled = _next(_iter(spill_entries))
                        if spill_entries.pop(spilled):
                            pending_wb.append(spilled)
                            n_owb += 1
                    spill_entries[victim] = True
        entries[line_key] = w
        if pending_wb:
            route_writebacks(pending_wb, now_ns)
        instructions += 1
        cycles += base_cpi
        excess = tlb_cycles + l2_hit_cycles - l1_hit
        if excess > 0:
            stall = excess / mlp
            cycles += stall
            stall_cycles += stall

    model.cycles = cycles
    model.instructions = instructions
    model.stall_cycles = stall_cycles
    state.pos = state.length

    design.accesses += n_acc
    l1_tlb.hits += n_t1
    l1_tlb.misses += n_t2
    tlb.l1_hits += n_t1
    tlb.l2.hits += n_t2
    tlb.l2_hits += n_t2
    ol1.hits += n_o1
    ol1.misses += n_o2
    ol2.hits += n_o2
    ondie.l1_hits += n_o1
    ondie.l2_hits += n_o2
    ondie.writebacks += n_owb


# ----------------------------------------------------------------------
# Tagless kernel: the full Figure 2 access path, fused.
# ----------------------------------------------------------------------
def _run_tagless_kernel(design: TaglessDesign, state, *,
                        _next=next, _iter=iter, _len=len) -> None:
    """Replay ``state``'s remaining trace against the tagless design.

    Extends the generic kernel with the two paths that dominate the
    tagless profile: the cTLB full miss resolving as an in-package
    *victim hit* (walk + GIPT residence + cTLB install, Figure 4's
    unshaded path) and the on-die full miss serviced by the DRAM cache
    with zero tag check (``_service_l2_miss``'s cached branch, with the
    closed-page ``access_block`` arithmetic inlined).  Only genuinely
    rare events leave the loop: fills, NC pages, superpages, PU waits.

    Loop-level shortcuts, each a proof that some scalar work is the
    identity:

    - **Same-page run**: when an access repeats the previous access's
      virtual page, that page is by construction the most recently
      used entry of both cTLB levels (the previous iteration made it
      so), and fused-LRU's move-to-end of the newest key is the
      identity permutation.  The shortcut skips the TLB dicts entirely
      and reuses the cached translation.  Trace locality makes this
      the majority case (50-95% of accesses on the SPEC-like
      generators).
    - **Zero-stall exit**: with ``tlb_cycles == 0.0`` and an on-die L1
      hit, ``cost - l1_hit`` is exactly ``(0.0 + l1_hit_cycles) -
      float(l1_hit_cycles) == 0.0``, so the stall branch disappears;
      for the 0.0-TLB + on-die-L2-hit case the whole stall chain is a
      loop constant, computed once.
    - **Fused probes**: the scalar path's probe-then-move-to-end pair
      (``in``/``get`` + ``pop`` + reinsert) collapses to one
      ``pop(key, None)`` + reinsert -- same resulting dict order, one
      hash lookup fewer.  For NC entries the reinsert happens before
      the fallback; the scalar call then repeats a move-to-end of an
      already-MRU key, which is again the identity.
    - **Deferred instruction count**: ``instructions`` advances by
      ``gap + 1`` per access regardless of path, so the loop total is
      ``sum(gaps) + len(gaps)`` -- integer math, exact in any order --
      added once at exit.

    Order-sensitive float accumulators live in *seeded locals*: each is
    initialised from its attribute, accumulated sequentially (the same
    additions in the same order as the scalar path, hence the same
    rounding), and stored back at kernel exit.  The one scalar-fallback
    site flushes them before calling ``access_cycles`` and reloads
    after, so the scalar path always sees -- and updates -- the true
    running totals.
    """
    model = state.model
    base_cpi = model.base_cpi
    mlp = model.mlp
    l1_hit = model._l1_hit
    cycle_ns = model._cycle_ns
    cycles = model.cycles
    stall_cycles = model.stall_cycles

    core_id = state.core_id
    process_id = state.process_id
    access_cycles = design.access_cycles

    tlb = design.tlbs[core_id]
    l1_tlb = tlb.l1
    l1_map = l1_tlb._map
    l1_cap = l1_tlb.capacity
    l2_tlb = tlb.l2
    l2_map = l2_tlb._map
    l2_cap = l2_tlb.capacity
    tlb_l2_hit_cycles = design._tlb_l2_hit_cycles

    table = design.page_table(process_id)
    pte_map = table._entries
    engine = design.engine
    gipt = engine.gipt
    gipt_entries = gipt._entries
    core_bit = 1 << core_id
    clear_bit = ~core_bit
    # FIFO ignores touches (its whole point); LRU/CLOCK need the call.
    victims = engine.victims
    on_touch = (None if type(victims) is FIFOVictimTracker
                else victims.on_touch)
    handler = design.handlers[core_id]
    walker = design.walker
    walk_cycles = walker._walk_cycles
    pte_nj = walker._pte_nj
    table_entry = table.entry
    free_queue = engine.free_queue
    fq_free = free_queue._free
    fq_alpha = free_queue.alpha
    fq_allocate = free_queue.allocate
    gipt_insert = gipt.insert
    on_fill_v = victims.on_fill
    maintain_alpha = engine._maintain_alpha
    gipt_base = engine.gipt_base_page
    off_pkg = design.off_package
    off_energy = off_pkg.energy
    off_ch = off_pkg.channels
    off_free = off_ch._free_at_ns
    off_bg = off_ch._bg_until_ns
    off_mask = off_ch.num_channels - 1  # pow2, per select_kernel
    off_tr64 = off_pkg.timing.transfer_ns(64)
    off_wb_nj = off_energy.config.access_nj(64, 0)
    off_sv = off_pkg._block_service_ns
    off_page_tr = off_pkg._page_transfer_ns
    off_preempt = off_ch.preemption_ns
    off_fill_nj = off_energy.config.access_nj(PAGE_BYTES, 1)

    ondie = design.ondie[core_id]
    ol1 = ondie.l1
    ol1_mask = ol1.num_sets - 1  # pow2, per select_kernel
    ol1_ent = [s.entries for s in ol1._sets]
    ol1_ways = ol1._sets[0].ways
    ol2 = ondie.l2
    ol2_mask = ol2.num_sets - 1
    ol2_ent = [s.entries for s in ol2._sets]
    ol2_ways = ol2._sets[0].ways
    pending_wb = ondie.pending_writebacks

    in_pkg = design.in_package
    ip_energy = in_pkg.energy
    ip_ch = in_pkg.channels
    ip_free = ip_ch._free_at_ns
    ip_bg = ip_ch._bg_until_ns
    ip_mask = ip_ch.num_channels - 1
    ip_preempt = ip_ch.preemption_ns
    ip_tr = in_pkg._block_transfer_ns
    ip_sv = in_pkg._block_service_ns
    ip_nj = in_pkg._block_nj
    ip_tr64 = in_pkg.timing.transfer_ns(64)
    ip_wb_nj = ip_energy.config.access_nj(64, 0)
    ip_page_tr = in_pkg._page_transfer_ns
    ip_fill_nj = ip_energy.config.access_nj(PAGE_BYTES, 1)
    ip_next_refresh = in_pkg._next_refresh_ns

    # GIPT posted-write device (Section 3.2: the table may live in
    # either DRAM; off-package by default).
    gipt_off = not engine.cache_config.gipt_in_package
    gd = off_pkg if gipt_off else in_pkg
    gd_banks = gd.banks.access
    gd_free = gd.channels._free_at_ns
    gd_bg = gd.channels._bg_until_ns
    gd_mask = gd.channels.num_channels - 1
    gd_tr64 = gd._block_transfer_ns
    gd_nj0 = gd.energy.config.access_nj(64, 0)
    gd_act_nj = gd.energy.config.act_pre_nj

    core_cfg = design.core_cfg
    l1_hit_cycles = design._l1_hit_cycles
    l2_hit_cycles = design._l2_hit_cycles
    freq = core_cfg.frequency_ghz
    lines_per_page = LINES_PER_PAGE

    # Constant stall of the (tlb_cycles == 0.0, on-die L2 hit) case:
    # same expressions the general path would evaluate, evaluated once.
    exc0_l2 = 0.0 + l2_hit_cycles - l1_hit
    st0_l2 = exc0_l2 / mlp if exc0_l2 > 0 else 0.0
    # Constants of the idle-channel DRAM access (queue_ns == 0.0):
    # latency is the service constant, and with a 0.0-cycle TLB the
    # whole cost/stall chain is fixed too.
    l3_only0 = ip_sv * freq
    exc0_dram = 0.0 + l3_only0 - l1_hit
    st0_dram = exc0_dram / mlp if exc0_dram > 0 else 0.0

    # Order-sensitive float accumulators, seeded from their attributes
    # (see the docstring).  Flushed/reloaded around the fallback call
    # and stored back at exit.
    f_off_dyn = off_energy.dynamic_nj
    f_off_bg = off_ch.background_busy_ns
    f_walker = walker.cycles_total
    f_handler = handler.cycles_total
    f_ip_dyn = ip_energy.dynamic_nj
    f_ip_bg = ip_ch.background_busy_ns
    f_ip_queue = ip_ch.queue_ns_total
    f_ip_busy = ip_ch.demand_busy_ns
    f_ip_lat = in_pkg.demand_latency_ns
    f_l3 = design.l3_latency_cycles

    # Only the rarer outcomes are counted in-loop; the hot ones are
    # derived at flush by subtraction (every inline access is exactly
    # one of t1/t2/tm and exactly one of o1/o2/om).
    n_fb = 0
    n_t2 = n_tm = 0
    n_fill = n_gipt_acts = 0
    n_res_evict = 0
    n_o1 = n_o2 = 0
    n_owb = 0
    n_ip_write = 0
    n_wb_ip = n_wb_off = 0

    # Same-page run cache: the previous access's page, translation and
    # TLB entry.  Valid only when the previous access completed inline
    # (fallbacks reset it); -1 never equals a virtual page number.
    last_vp = -1
    last_target = 0
    last_base = 0
    last_entry = None

    pos = state.pos
    pages, lines, writes, gaps = (
        state.pages, state.lines, state.writes, state.gaps
    )
    if pos:
        pages, lines, writes, gaps = (
            pages[pos:], lines[pos:], writes[pos:], gaps[pos:]
        )
    for vp, line, w, gap in zip(pages, lines, writes, gaps):
        cycles += gap * base_cpi

        if vp == last_vp:
            # Same-page run: vp is the MRU key of both TLB levels, so
            # the scalar path's move-to-end is the identity and its
            # probes are pure counter traffic.
            line_key = last_base + line
            entries = ol1_ent[line_key & ol1_mask]
            v = entries.pop(line_key, None)
            if v is not None:
                # Zero-stall exit: cost == l1_hit exactly.
                n_o1 += 1
                entries[line_key] = v or w
                cycles += base_cpi
                continue
            tlb_cycles = 0.0
            target = last_target
            entry = last_entry
        else:
            # --- Translation: classify with fused probes, mutate in
            # scalar order.  ``target`` stays -1 on every outcome that
            # needs the scalar path (NC entries, fills, superpages, PU
            # waits), which reach the single fallback site below; the
            # only state an NC classification leaves behind is the
            # probe's own move-to-end, which the scalar re-probe
            # repeats as the identity.
            target = -1
            entry = l1_map.pop(vp, None)
            if entry is not None:
                l1_map[vp] = entry
                if not entry.non_cacheable:
                    moved = l2_map.pop(vp, None)
                    if moved is not None:
                        l2_map[vp] = moved
                    tlb_cycles = 0.0
                    target = entry.target_page
            else:
                entry = l2_map.pop(vp, None)
                if entry is not None:
                    l2_map[vp] = entry
                    if not entry.non_cacheable:
                        n_t2 += 1
                        if _len(l1_map) >= l1_cap:
                            del l1_map[_next(_iter(l1_map))]
                        l1_map[vp] = entry
                        tlb_cycles = tlb_l2_hit_cycles
                        target = entry.target_page
                else:
                    now_ns = cycles * cycle_ns
                    pte = pte_map.get(vp)
                    if pte is None:
                        # Materialise the PTE exactly where the scalar
                        # walk would.  table.entry is idempotent, so a
                        # superpage/NC outcome still falls back safely.
                        pte = table_entry(vp)
                    if not (
                        pte.superpage_order != 0
                        or pte.non_cacheable
                        or pte.pending_until_ns > now_ns
                    ):
                      if pte.valid_in_cache:
                        # Victim hit (Table 1 row 3): the page is
                        # cached; the walk is the whole penalty.
                        n_tm += 1
                        f_off_dyn += pte_nj
                        f_walker += walk_cycles
                        target = pte.cache_page
                        if on_touch is not None:
                            on_touch(target)
                        g = gipt_entries.get(target)
                        if g is None:
                            gipt.set_resident(target, core_id)  # raises
                        g.residence_mask |= core_bit
                        entry = TLBEntry(target, False)
                        # TLBHierarchy.install, inlined (the probes
                        # above guarantee vp is in neither level).
                        if _len(l2_map) >= l2_cap:
                            evicted_vpn = _next(_iter(l2_map))
                            evicted = l2_map.pop(evicted_vpn)
                            l2_map[vp] = entry
                            l1_map.pop(evicted_vpn, None)
                            # on_l2_evict: leaving TLB reach clears
                            # residence.
                            if not evicted.non_cacheable:
                                g2 = gipt_entries.get(evicted.target_page)
                                if g2 is not None:
                                    g2.residence_mask &= clear_bit
                                    n_res_evict += 1
                        else:
                            l2_map[vp] = entry
                        if _len(l1_map) >= l1_cap:
                            del l1_map[_next(_iter(l1_map))]
                        l1_map[vp] = entry
                        f_handler += walk_cycles
                        tlb_cycles = walk_cycles
                      else:
                        # Fill (Figure 4's shaded path): walk, allocate
                        # at the header pointer, stream the page in,
                        # post two GIPT writes, install.  Inlined from
                        # CTLBMissHandler.handle / allocate_and_fill /
                        # fill_page / stream_page / posted_write_block,
                        # in scalar order.
                        n_fill += 1
                        f_off_dyn += pte_nj
                        f_walker += walk_cycles
                        pte.pending_update = True
                        if not fq_free:
                            # Alpha invariant broken: evict
                            # synchronously (rare) -- run the real
                            # engine machinery over the true totals.
                            off_energy.dynamic_nj = f_off_dyn
                            off_ch.background_busy_ns = f_off_bg
                            ip_energy.dynamic_nj = f_ip_dyn
                            ip_ch.background_busy_ns = f_ip_bg
                            maintain_alpha(now_ns)
                            f_off_dyn = off_energy.dynamic_nj
                            f_off_bg = off_ch.background_busy_ns
                            f_ip_dyn = ip_energy.dynamic_nj
                            f_ip_bg = ip_ch.background_busy_ns
                            ip_next_refresh = in_pkg._next_refresh_ns
                        target = fq_allocate()
                        g = gipt_insert(target, pte.physical_page, pte)
                        # Protect the page for the filling core before
                        # any victim is chosen (allocate_and_fill's
                        # first set_resident).
                        g.residence_mask |= core_bit
                        on_fill_v(target)
                        # fill_page: demand-read the page from
                        # off-package DRAM, critical block first.
                        if now_ns >= off_pkg._next_refresh_ns:
                            off_pkg._catch_up_refresh(now_ns)
                        ch = pte.physical_page & off_mask
                        start = off_free[ch]
                        if start < now_ns:
                            start = now_ns
                        bg_until = off_bg[ch]
                        if bg_until > start:
                            start = start + off_preempt
                            if bg_until < start:
                                start = bg_until
                        queue_ns = start - now_ns
                        off_free[ch] = start + off_page_tr
                        off_ch.queue_ns_total += queue_ns
                        off_ch.demand_busy_ns += off_page_tr
                        f_off_dyn += off_fill_nj
                        fill_ns = queue_ns + off_sv
                        off_pkg.demand_latency_ns += fill_ns
                        # stream_page: lay the page into the cache
                        # behind the read (background traffic).
                        if now_ns >= ip_next_refresh:
                            in_pkg._catch_up_refresh(now_ns)
                            ip_next_refresh = in_pkg._next_refresh_ns
                        ch = target & ip_mask
                        start = now_ns
                        if ip_bg[ch] > start:
                            start = ip_bg[ch]
                        if ip_free[ch] > start:
                            start = ip_free[ch]
                        ip_bg[ch] = start + ip_page_tr
                        f_ip_bg += ip_page_tr
                        f_ip_dyn += ip_fill_nj
                        # Two posted GIPT writes (Section 3.4),
                        # open-page: the header pointer's sequential
                        # walk gives them high row locality.
                        gipt_page = gipt_base + (target >> 8)
                        gch = gipt_page & gd_mask
                        sv2, acts = gd_banks(gipt_page, 64)
                        start = now_ns + fill_ns
                        if gd_bg[gch] > start:
                            start = gd_bg[gch]
                        if gd_free[gch] > start:
                            start = gd_free[gch]
                        gd_bg[gch] = start + gd_tr64
                        if gipt_off:
                            f_off_bg += gd_tr64
                            f_off_dyn += gd_nj0 + acts * gd_act_nj
                        else:
                            f_ip_bg += gd_tr64
                            f_ip_dyn += gd_nj0 + acts * gd_act_nj
                        n_gipt_acts += acts
                        fill_ns += sv2
                        sv2, acts = gd_banks(gipt_page, 64)
                        start = now_ns + fill_ns
                        if gd_bg[gch] > start:
                            start = gd_bg[gch]
                        if gd_free[gch] > start:
                            start = gd_free[gch]
                        gd_bg[gch] = start + gd_tr64
                        if gipt_off:
                            f_off_bg += gd_tr64
                            f_off_dyn += gd_nj0 + acts * gd_act_nj
                        else:
                            f_ip_bg += gd_tr64
                            f_ip_dyn += gd_nj0 + acts * gd_act_nj
                        n_gipt_acts += acts
                        fill_ns += sv2
                        pte.install_in_cache(target)
                        engine.fill_latency_ns += fill_ns
                        if _len(fq_free) < fq_alpha:
                            # Asynchronous eviction (Figure 5): the
                            # engine helper reads the true totals.
                            off_energy.dynamic_nj = f_off_dyn
                            off_ch.background_busy_ns = f_off_bg
                            ip_energy.dynamic_nj = f_ip_dyn
                            ip_ch.background_busy_ns = f_ip_bg
                            maintain_alpha(now_ns)
                            f_off_dyn = off_energy.dynamic_nj
                            f_off_bg = off_ch.background_busy_ns
                            f_ip_dyn = ip_energy.dynamic_nj
                            f_ip_bg = ip_ch.background_busy_ns
                            ip_next_refresh = in_pkg._next_refresh_ns
                        pte.pending_until_ns = now_ns + fill_ns
                        pte.pending_update = False
                        # The handler's second set_resident (a no-op
                        # bitwise OR; counted at flush).
                        g.residence_mask |= core_bit
                        entry = TLBEntry(target, False)
                        # TLBHierarchy.install, inlined (the probes
                        # above guarantee vp is in neither level).
                        if _len(l2_map) >= l2_cap:
                            evicted_vpn = _next(_iter(l2_map))
                            evicted = l2_map.pop(evicted_vpn)
                            l2_map[vp] = entry
                            l1_map.pop(evicted_vpn, None)
                            if not evicted.non_cacheable:
                                g2 = gipt_entries.get(evicted.target_page)
                                if g2 is not None:
                                    g2.residence_mask &= clear_bit
                                    n_res_evict += 1
                        else:
                            l2_map[vp] = entry
                        if _len(l1_map) >= l1_cap:
                            del l1_map[_next(_iter(l1_map))]
                        l1_map[vp] = entry
                        h_cycles = walk_cycles + fill_ns * freq
                        f_handler += h_cycles
                        tlb_cycles = h_cycles
            if target < 0:
                # The one scalar-fallback site: flush the seeded float
                # locals so access_cycles sees true totals, reload
                # after (it advanced them), resync the refresh mirror,
                # and invalidate the same-page cache.
                off_energy.dynamic_nj = f_off_dyn
                off_ch.background_busy_ns = f_off_bg
                walker.cycles_total = f_walker
                handler.cycles_total = f_handler
                ip_energy.dynamic_nj = f_ip_dyn
                ip_ch.background_busy_ns = f_ip_bg
                ip_ch.queue_ns_total = f_ip_queue
                ip_ch.demand_busy_ns = f_ip_busy
                in_pkg.demand_latency_ns = f_ip_lat
                design.l3_latency_cycles = f_l3
                n_fb += 1
                cost = access_cycles(
                    core_id, process_id, vp, line, w, cycles * cycle_ns
                )
                f_off_dyn = off_energy.dynamic_nj
                f_off_bg = off_ch.background_busy_ns
                f_walker = walker.cycles_total
                f_handler = handler.cycles_total
                f_ip_dyn = ip_energy.dynamic_nj
                f_ip_bg = ip_ch.background_busy_ns
                f_ip_queue = ip_ch.queue_ns_total
                f_ip_busy = ip_ch.demand_busy_ns
                f_ip_lat = in_pkg.demand_latency_ns
                f_l3 = design.l3_latency_cycles
                ip_next_refresh = in_pkg._next_refresh_ns
                last_vp = -1
                cycles += base_cpi
                excess = cost - l1_hit
                if excess > 0:
                    stall = excess / mlp
                    cycles += stall
                    stall_cycles += stall
                continue
            last_vp = vp
            last_target = target
            last_base = target * lines_per_page
            last_entry = entry
            line_key = last_base + line
            entries = ol1_ent[line_key & ol1_mask]
            v = entries.pop(line_key, None)
            if v is not None:
                n_o1 += 1
                entries[line_key] = v or w
                cycles += base_cpi
                if tlb_cycles:
                    excess = tlb_cycles + l1_hit_cycles - l1_hit
                    if excess > 0:
                        stall = excess / mlp
                        cycles += stall
                        stall_cycles += stall
                continue

        # --- On-die L1 miss (CA key space; NC never reaches here).
        if pending_wb:
            pending_wb.clear()
        l2_entries = ol2_ent[line_key & ol2_mask]
        v = l2_entries.pop(line_key, None)
        if v is not None:
            n_o2 += 1
            l2_entries[line_key] = v or w
            hit_l2 = True
        else:
            if _len(l2_entries) >= ol2_ways:
                victim = _next(_iter(l2_entries))
                if l2_entries.pop(victim):
                    pending_wb.append(victim)
                    n_owb += 1
            l2_entries[line_key] = False
            hit_l2 = False
        if _len(entries) >= ol1_ways:
            victim = _next(_iter(entries))
            if entries.pop(victim):
                spill_entries = ol2_ent[victim & ol2_mask]
                if victim in spill_entries:
                    spill_entries[victim] = True
                else:
                    if _len(spill_entries) >= ol2_ways:
                        spilled = _next(_iter(spill_entries))
                        if spill_entries.pop(spilled):
                            pending_wb.append(spilled)
                            n_owb += 1
                    spill_entries[victim] = True
        entries[line_key] = w
        if pending_wb:
            # _route_writebacks/_writeback_line/_async_block_write,
            # inlined (both namespaces; // LINES_PER_PAGE is >> 6).
            now_ns = cycles * cycle_ns
            for wline in pending_wb:
                if wline >= PA_NAMESPACE_OFFSET:
                    f_off_dyn += off_wb_nj
                    n_wb_off += 1
                    ch = ((wline - PA_NAMESPACE_OFFSET) >> 6) & off_mask
                    start = now_ns
                    if off_bg[ch] > start:
                        start = off_bg[ch]
                    if off_free[ch] > start:
                        start = off_free[ch]
                    off_bg[ch] = start + off_tr64
                    f_off_bg += off_tr64
                else:
                    wpage = wline >> 6
                    f_ip_dyn += ip_wb_nj
                    n_wb_ip += 1
                    ch = wpage & ip_mask
                    start = now_ns
                    if ip_bg[ch] > start:
                        start = ip_bg[ch]
                    if ip_free[ch] > start:
                        start = ip_free[ch]
                    ip_bg[ch] = start + ip_tr64
                    f_ip_bg += ip_tr64
                    g2 = gipt_entries.get(wpage)
                    if g2 is not None:
                        g2.dirty = True
        if hit_l2:
            cycles += base_cpi
            if tlb_cycles:
                excess = tlb_cycles + l2_hit_cycles - l1_hit
                if excess > 0:
                    stall = excess / mlp
                    cycles += stall
                    stall_cycles += stall
            elif st0_l2:
                cycles += st0_l2
                stall_cycles += st0_l2
            continue

        # --- DRAM-cache service: guaranteed hit, no tag check.
        g = gipt_entries.get(target)
        if g is None:
            design._service_l2_miss(  # canonical raise
                core_id, entry, vp, line, w, cycles * cycle_ns
            )
        if on_touch is not None:
            on_touch(target)
        g.touched_mask |= 1 << line
        if w:
            g.dirty = True
        # DRAMDevice.access_block, closed-page path, inlined.
        now_ns = cycles * cycle_ns
        if now_ns >= ip_next_refresh:
            in_pkg._catch_up_refresh(now_ns)
            ip_next_refresh = in_pkg._next_refresh_ns
        ch = target & ip_mask
        if ip_free[ch] <= now_ns and ip_bg[ch] <= now_ns:
            # Idle channel: queue_ns is exactly 0.0, so the queue add
            # is the identity (the accumulator is never -0.0) and the
            # latency is the precomputed service constant.
            ip_free[ch] = now_ns + ip_tr
            f_ip_busy += ip_tr
            f_ip_dyn += ip_nj
            n_ip_write += w
            f_ip_lat += ip_sv
            cycles += base_cpi
            if tlb_cycles:
                cost = tlb_cycles + l3_only0
                f_l3 += cost
                excess = cost - l1_hit
                if excess > 0:
                    stall = excess / mlp
                    cycles += stall
                    stall_cycles += stall
            else:
                f_l3 += l3_only0
                if st0_dram:
                    cycles += st0_dram
                    stall_cycles += st0_dram
            continue
        start = ip_free[ch]
        if start < now_ns:
            start = now_ns
        bg_until = ip_bg[ch]
        if bg_until > start:
            start = start + ip_preempt
            if bg_until < start:
                start = bg_until
        queue_ns = start - now_ns
        ip_free[ch] = start + ip_tr
        f_ip_queue += queue_ns
        f_ip_busy += ip_tr
        f_ip_dyn += ip_nj
        n_ip_write += w
        latency = queue_ns + ip_sv
        f_ip_lat += latency
        l3_only = latency * freq
        cost = tlb_cycles + l3_only
        f_l3 += cost
        cycles += base_cpi
        excess = cost - l1_hit
        if excess > 0:
            stall = excess / mlp
            cycles += stall
            stall_cycles += stall

    model.cycles = cycles
    # Every access advances instructions by gap + 1, inline and
    # fallback alike; integer addition is exact in any order.
    model.instructions += sum(gaps) + _len(gaps)
    model.stall_cycles = stall_cycles
    state.pos = state.length

    # Float store-back (each was accumulated in scalar order).
    off_energy.dynamic_nj = f_off_dyn
    off_ch.background_busy_ns = f_off_bg
    walker.cycles_total = f_walker
    handler.cycles_total = f_handler
    ip_energy.dynamic_nj = f_ip_dyn
    ip_ch.background_busy_ns = f_ip_bg
    ip_ch.queue_ns_total = f_ip_queue
    ip_ch.demand_busy_ns = f_ip_busy
    in_pkg.demand_latency_ns = f_ip_lat
    design.l3_latency_cycles = f_l3

    # Integer-counter flush (exact + commutative, hence batchable).
    n_acc = _len(gaps) - n_fb
    n_t1 = n_acc - n_t2 - n_tm - n_fill
    n_tw = n_tm + n_fill  # TLB full misses resolved inline (walks)
    n_om = n_acc - n_o1 - n_o2
    n_res = n_tm + n_res_evict + 2 * n_fill
    design.accesses += n_acc
    l1_tlb.hits += n_t1
    l1_tlb.misses += n_t2 + n_tw
    l2_tlb.hits += n_t2
    l2_tlb.misses += n_tw
    tlb.l1_hits += n_t1
    tlb.l2_hits += n_t2
    tlb.misses += n_tw
    table.walks += n_tw
    walker.walks += n_tw
    off_energy.read_bytes += 8 * n_tw + PAGE_BYTES * n_fill
    off_energy.activations += n_fill
    engine.victim_hits += n_tm
    engine.fills += n_fill
    handler.outcomes[MissOutcome.VICTIM_HIT] += n_tm
    handler.outcomes[MissOutcome.FILL] += n_fill
    gipt.residence_updates += n_res
    ol1.hits += n_o1
    ol1.misses += n_o2 + n_om
    ol2.hits += n_o2
    ol2.misses += n_om
    ondie.l1_hits += n_o1
    ondie.l2_hits += n_o2
    ondie.misses += n_om
    ondie.writebacks += n_owb
    design.l3_accesses += n_om
    design.cache_accesses += n_om
    ip_ch.requests += n_om
    ip_energy.activations += n_om + n_fill
    ip_energy.read_bytes += 64 * (n_om - n_ip_write)
    ip_energy.write_bytes += 64 * (n_ip_write + n_wb_ip) + PAGE_BYTES * n_fill
    off_energy.write_bytes += 64 * n_wb_off
    off_ch.requests += n_fill
    off_pkg.demand_accesses += n_fill
    in_pkg.demand_accesses += n_om
    # Posted GIPT writes: two 64 B stores per fill on whichever device
    # hosts the table, with data-dependent activations (row buffer).
    gd_energy = off_energy if gipt_off else ip_energy
    gd_energy.activations += n_gipt_acts
    gd_energy.write_bytes += 128 * n_fill
