"""High-level simulation façade: one call per (design, workload) point.

``Simulator(config).run("tagless", bindings)`` builds a fresh design,
replays the bound traces through it, and returns a
:class:`SimulationResult` carrying IPC, the Figure 8 latency metric, the
full energy breakdown and every component's statistics.  Experiment
runners and benchmarks are thin loops over this call.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.energy import EnergyBreakdown, compute_energy
from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.cpu.batched import ENGINE_MODES, run_interleaved_batched
from repro.cpu.multicore import BoundTrace, CoreResult, run_interleaved
from repro.designs.base import MemorySystemDesign
from repro.designs.registry import create_design
from repro.designs.tagless_design import TaglessDesign
from repro.validate.invariants import (
    InvariantChecker,
    check_interval,
    validation_enabled,
)


@dataclasses.dataclass
class SimulationResult:
    """Everything one simulation point produces."""

    design_name: str
    cores: List[CoreResult]
    elapsed_ns: float
    mean_l3_latency_cycles: float
    energy: EnergyBreakdown
    stats: Dict[str, float]
    #: Per-tenant QoS breakdown (multi-tenant runs only; see
    #: :mod:`repro.cpu.scheduled`): one dict per tenant with IPC, MPKI
    #: and demand-latency percentiles.
    tenants: Optional[List[Dict[str, object]]] = None
    #: Per-event resize churn ledger (resizable designs with an armed
    #: capacity schedule only).
    resize_events: Optional[List[Dict[str, object]]] = None

    @property
    def ipc_sum(self) -> float:
        """System throughput: the sum of per-core IPCs (the aggregate the
        multi-programmed figures normalise)."""
        return sum(core.ipc for core in self.cores)

    @property
    def instructions(self) -> int:
        return sum(core.instructions for core in self.cores)

    @property
    def total_energy_j(self) -> float:
        return self.energy.total_j

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds (lower is better)."""
        return self.energy.total_j * self.elapsed_ns * 1e-9

    def ipc_of(self, core_id: int) -> float:
        for core in self.cores:
            if core.core_id == core_id:
                return core.ipc
        raise KeyError(f"no core {core_id} in result")


class Simulator:
    """Runs design/workload combinations under one machine configuration."""

    def __init__(self, config: SystemConfig):
        self.config = config

    def build_design(self, design_name: str) -> MemorySystemDesign:
        return create_design(design_name, self.config)

    def run(
        self,
        design_name: str,
        bindings: Sequence[BoundTrace],
        non_cacheable: Optional[Dict[int, Sequence[int]]] = None,
        max_accesses: Optional[int] = None,
        warmup_fraction: float = 0.25,
        caching_policy=None,
        superpages: Optional[Dict[int, Sequence]] = None,
        validate: Optional[bool] = None,
        validate_every: Optional[int] = None,
        telemetry=None,
        engine: Optional[str] = None,
        resize_schedule: Optional[Sequence] = None,
        max_remap_per_resize: int = 64,
    ) -> SimulationResult:
        """Simulate ``bindings`` on a fresh instance of ``design_name``.

        The first ``warmup_fraction`` of every trace warms caches, TLBs
        and the DRAM cache without being measured -- the trace-driven
        analogue of the paper's Simpoint methodology, where statistics
        come from a representative slice executed against warmed state.
        Cold-start fill storms would otherwise dominate every cache
        design's numbers.

        ``non_cacheable`` maps process id -> virtual pages to flag NC
        before the run (the Section 5.4 case study); it only affects the
        tagless design, which is the only one with an NC mechanism.

        ``validate=True`` installs an
        :class:`~repro.validate.invariants.InvariantChecker` that sweeps
        the design's registered structural invariants every
        ``validate_every`` accesses (default from ``REPRO_VALIDATE_EVERY``
        or 1024) and once more at the end of the run, raising
        :class:`~repro.validate.invariants.InvariantViolation` on any
        breakage.  ``validate=None`` defers to the ``REPRO_VALIDATE``
        environment variable.  Checks are read-only: results are
        bit-identical with and without validation.

        ``telemetry`` optionally attaches a
        :class:`~repro.obs.telemetry.Telemetry` bundle for the measured
        window: it installs after the warmup boundary (so, like the
        statistics, it observes only measured behaviour) and uninstalls
        before the invariant checker does, keeping the access_cycles
        wrapper chain consistent.  Telemetry is strictly observational
        -- results are bit-identical with and without it.

        ``engine`` selects the execution engine: ``"scalar"`` (the
        per-access loop) or ``"batched"`` (the fused kernels of
        :mod:`repro.cpu.batched`).  ``None`` defers to the
        ``REPRO_ENGINE`` environment variable, defaulting to scalar.
        The engines are bit-identical (the golden-stats oracle runs
        under both); batched runs that turn out to be observed --
        telemetry, validation, event tracing -- quietly execute the
        scalar loop, since the fused kernels bypass every hook.
        """
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE", "scalar")
        if engine not in ENGINE_MODES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINE_MODES}"
            )
        replay = run_interleaved_batched if engine == "batched" \
            else run_interleaved
        if not (0.0 <= warmup_fraction < 1.0):
            raise ValueError("warmup_fraction must be in [0, 1)")
        if validate is None:
            validate = validation_enabled()
        design = self.build_design(design_name)
        if resize_schedule:
            # ``(at_access, capacity)`` events for runtime-resizable
            # designs; other designs ignore the schedule so design
            # sweeps can share one spec.
            arm = getattr(design, "set_resize_schedule", None)
            if arm is not None:
                arm(resize_schedule,
                    max_remap_per_resize=max_remap_per_resize)
        checker = None
        if validate:
            every = (check_interval() if validate_every is None
                     else validate_every)
            checker = InvariantChecker(design, every=every)
            checker.install()  # before run_interleaved binds access_cycles
        if non_cacheable and isinstance(design, TaglessDesign):
            for process_id, pages in non_cacheable.items():
                for virtual_page in pages:
                    design.set_non_cacheable(process_id, virtual_page)
        if caching_policy is not None and isinstance(design, TaglessDesign):
            design.set_caching_policy(caching_policy)
        if superpages:
            # process id -> [(base_vpn, order), ...]: map the regions
            # before any access touches them (all designs support this).
            for process_id, regions in superpages.items():
                table = design.page_table(process_id)
                for base_vpn, order in regions:
                    table.map_superpage(base_vpn, order)

        bindings = list(bindings)
        if max_accesses is not None:
            bindings = [
                BoundTrace(b.core_id, b.process_id,
                           b.trace.head(max_accesses))
                for b in bindings
            ]
        if warmup_fraction > 0.0:
            warm, measured = [], []
            for binding in bindings:
                # Materialize the parent's list cache before slicing:
                # both halves then inherit shared slices of it
                # (AccessTrace.slice's seeded path), so repeated runs
                # of the same trace never re-convert the numpy columns.
                binding.trace.as_lists()
                split = int(len(binding.trace) * warmup_fraction)
                warm.append(
                    BoundTrace(binding.core_id, binding.process_id,
                               binding.trace.slice(0, split))
                )
                measured.append(
                    BoundTrace(binding.core_id, binding.process_id,
                               binding.trace.slice(split, len(binding.trace)))
                )
            replay(design, warm)
            design.reset_stats()
            bindings = measured
        if telemetry is not None:
            # After warmup (observe the measured window only), before
            # run_interleaved binds access_cycles.  The sampling wrapper
            # goes on top of the checker's, so it is removed first.
            telemetry.install(design)
            if checker is not None:
                checker.tracer = telemetry.tracer
        cores = replay(design, bindings)
        if telemetry is not None:
            telemetry.uninstall()
        if checker is not None:
            checker.run_checks()  # final sweep over the end-of-run state
            checker.uninstall()
        elapsed_ns = max((c.cycles for c in cores), default=0.0)
        elapsed_ns /= self.config.core.frequency_ghz
        energy = compute_energy(design, cores, elapsed_ns)
        return SimulationResult(
            design_name=design_name,
            cores=cores,
            elapsed_ns=elapsed_ns,
            mean_l3_latency_cycles=design.mean_l3_latency_cycles(),
            energy=energy,
            stats=design.stats(),
            resize_events=self._resize_ledger(design),
        )

    def run_batched(self, design_name: str, bindings: Sequence[BoundTrace],
                    **kwargs) -> SimulationResult:
        """:meth:`run` under the batched engine (same results, faster)."""
        return self.run(design_name, bindings, engine="batched", **kwargs)

    @staticmethod
    def _resize_ledger(design) -> Optional[List[Dict[str, object]]]:
        log = getattr(design, "resize_log", None)
        if not log:
            return None
        return [dict(event) for event in log]

    def run_tenants(
        self,
        design_name: str,
        schedule,
        validate: Optional[bool] = None,
        validate_every: Optional[int] = None,
        telemetry=None,
    ) -> SimulationResult:
        """Replay a multi-tenant :class:`~repro.workloads.tenants.TenantSchedule`.

        The scenario's own resize schedule (if any) is armed on designs
        that support one.  There is no warmup split: tenant arrival and
        departure *are* the phenomenon under study, so the measured
        window is the whole schedule.  Returns a
        :class:`SimulationResult` whose ``tenants`` field carries the
        per-tenant QoS breakdown (IPC, MPKI, demand-latency tail).
        """
        from repro.cpu.scheduled import run_schedule

        scenario = schedule.scenario
        if schedule.num_cores != self.config.num_cores:
            raise ConfigurationError(
                f"schedule was built for {schedule.num_cores} cores but "
                f"the machine has {self.config.num_cores}"
            )
        if schedule.total_span_pages > self.config.off_package_pages:
            raise ConfigurationError(
                f"scenario {scenario.name!r} spans "
                f"{schedule.total_span_pages} pages of off-package DRAM "
                f"but the machine only has "
                f"{self.config.off_package_pages}; shrink the tenant "
                "count/footprints or grow the machine"
            )
        if validate is None:
            validate = validation_enabled()
        design = self.build_design(design_name)
        if scenario.resize:
            arm = getattr(design, "set_resize_schedule", None)
            if arm is not None:
                arm(scenario.resize,
                    max_remap_per_resize=scenario.max_remap_per_resize)
        checker = None
        if validate:
            every = (check_interval() if validate_every is None
                     else validate_every)
            checker = InvariantChecker(design, every=every)
            checker.install()  # before run_schedule binds access_cycles
        if telemetry is not None:
            telemetry.install(design)
            if checker is not None:
                checker.tracer = telemetry.tracer
        cores, qos, switch_stats = run_schedule(design, schedule)
        if telemetry is not None:
            telemetry.uninstall()
        if checker is not None:
            checker.run_checks()
            checker.uninstall()
        elapsed_ns = max((c.cycles for c in cores), default=0.0)
        elapsed_ns /= self.config.core.frequency_ghz
        energy = compute_energy(design, cores, elapsed_ns)
        stats = design.stats()
        stats["context_switches"] = float(switch_stats["context_switches"])
        stats["context_switch_tlb_entries"] = float(
            switch_stats["tlb_flush_entries"]
        )
        return SimulationResult(
            design_name=design_name,
            cores=cores,
            elapsed_ns=elapsed_ns,
            mean_l3_latency_cycles=design.mean_l3_latency_cycles(),
            energy=energy,
            stats=stats,
            tenants=[qos[tid].to_dict() for tid in sorted(qos)],
            resize_events=self._resize_ledger(design),
        )
