"""Argument parsing and dispatch for the ``repro`` command-line tools."""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

from repro.analysis import experiments
from repro.common.errors import ConfigurationError
from repro.common.machine import MachineSpec, build_system
from repro.cpu.batched import ENGINE_MODES
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.designs.registry import ALL_DESIGN_NAMES, DESIGN_NAMES
from repro.harness import (
    Harness,
    JobSpec,
    ProgressReporter,
    ResultCache,
    RunArtifact,
    default_artifact_path,
    infer_workload_kind,
    load_resume_map,
    resolve_cache_dir,
    run_jobs,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import MIX_ORDER, MIXES, mix_traces
from repro.workloads.parsec import PARSEC_ORDER, PARSEC_PROFILES
from repro.workloads.spec import SPEC_ORDER, SPEC_PROFILES
from repro.workloads.trace import save_trace


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    """Machine-spec flags shared by run/experiment/sweep/campaign run."""
    parser.add_argument("--machine", dest="machine_file", default=None,
                        metavar="FILE",
                        help="machine spec file (.json or .toml): a named "
                             "preset plus dotted-path SystemConfig "
                             "overrides (see EXPERIMENTS.md)")
    parser.add_argument("--set", dest="machine_sets", action="append",
                        default=[], metavar="PATH=VALUE",
                        help="override one SystemConfig field by dotted "
                             "path, e.g. dram_cache.gipt_in_package=true "
                             "or core.model=window; repeatable, applied "
                             "after --machine")


def _machine_from_args(args: argparse.Namespace) -> MachineSpec:
    """Resolve ``--machine``/``--set`` into a validated MachineSpec."""
    machine_file = getattr(args, "machine_file", None)
    try:
        if machine_file is not None:
            machine = MachineSpec.from_file(machine_file)
        else:
            machine = MachineSpec()
        assignments = getattr(args, "machine_sets", None) or []
        if assignments:
            machine = machine.with_assignments(assignments)
        return machine
    except OSError as exc:
        raise SystemExit(
            f"cannot read machine spec {machine_file}: {exc}"
        ) from None
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def _add_harness_arguments(parser: argparse.ArgumentParser) -> None:
    """Execution-engine flags shared by ``experiment`` and ``sweep``."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, the default)")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache root (default ~/.cache/repro, "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="compute every point fresh; do not read or "
                             "write the result cache")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget; a job past it is "
                             "killed and reported status=timeout (default: "
                             "$REPRO_JOB_TIMEOUT, else unbounded)")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts granted to each failed job "
                             "(default 0: fail on first error)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="delay before the first retry, doubling each "
                             "further attempt (default 0.5)")
    parser.add_argument("--resume", default=None, metavar="ARTIFACT",
                        help="seed completed points from a prior run's "
                             "JSONL artifact; only missing/failed points "
                             "are recomputed")
    parser.add_argument("--resume-strict", action="store_true",
                        help="with --resume: skip artifact rows recorded "
                             "by a different code fingerprint (default: "
                             "accept them with a warning)")
    parser.add_argument("--trace", dest="trace_out", default=None,
                        metavar="PATH",
                        help="write a Perfetto JSON trace of the harness "
                             "job lifecycle to PATH")
    parser.add_argument("--timeseries", dest="timeseries_out", default=None,
                        metavar="PATH",
                        help="write a JSONL progress time-series "
                             "(jobs/errors/cache hits over wall time) to "
                             "PATH")
    parser.add_argument("--engine", choices=ENGINE_MODES, default=None,
                        help="execution engine: scalar (per-access loop) "
                             "or batched (fused kernels; bit-identical, "
                             "faster).  Default: $REPRO_ENGINE, else "
                             "scalar")
    _add_fleet_arguments(parser)


def _add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    """Fleet-observability flags shared by sweep/experiment/campaign."""
    parser.add_argument("--live", action="store_true",
                        help="replace the progress lines with a live "
                             "per-worker dashboard fed by worker "
                             "heartbeats (best with --jobs > 1)")
    parser.add_argument("--metrics", dest="metrics_out", default=None,
                        metavar="PATH",
                        help="write a fleet-metrics snapshot (pool, "
                             "cache, shared-memory, campaign counters) "
                             "to PATH on exit; a .prom suffix selects "
                             "Prometheus text exposition, anything else "
                             "JSONL")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tagless DRAM cache reproduction toolkit (ISCA 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list workload models and mixes")

    trace = sub.add_parser(
        "trace",
        help="generate a synthetic trace, or capture telemetry "
             "(Perfetto trace + time-series) from a simulation",
    )
    trace.add_argument(
        "target", nargs="?", default=None,
        help="a design name captures telemetry from a simulated run "
             f"({', '.join(ALL_DESIGN_NAMES)}); any other name is a "
             "workload and generates a synthetic trace (legacy mode)",
    )
    trace.add_argument("workload", nargs="?", default=None,
                       help="workload for capture mode "
                            "(SPEC/PARSEC program or MIX1..MIX8)")
    trace.add_argument("--accesses", type=int, default=None,
                       help="trace length (default: 100k generate, "
                            "20k capture, 2k smoke)")
    trace.add_argument("--scale", type=int, default=64,
                       help="capacity scale factor (default 64)")
    trace.add_argument("--out", help="save as .npz to this path "
                                     "(generate mode)")
    trace.add_argument("--cache-mb", type=int, default=1024)
    trace.add_argument("--replacement", default="fifo",
                       choices=("fifo", "lru", "clock"))
    trace.add_argument("--warmup", type=float, default=0.25)
    trace.add_argument("--interval", type=int, default=1024,
                       help="time-series window size (default 1024)")
    trace.add_argument("--interval-unit", default="accesses",
                       choices=("accesses", "cycles"),
                       help="window unit (default accesses)")
    trace.add_argument("--trace-out", default=None, metavar="PATH",
                       help="Perfetto JSON path (default "
                            "<design>-<workload>.perfetto.json)")
    trace.add_argument("--timeseries-out", default=None, metavar="PATH",
                       help="time-series artifact path; a .csv suffix "
                            "switches format (default "
                            "<design>-<workload>.timeseries.jsonl)")
    trace.add_argument("--smoke", action="store_true",
                       help="CI gate: capture every design on a short "
                            "trace into a temp dir and validate the "
                            "artifacts (exit non-zero on any failure)")

    run = sub.add_parser("run", help="simulate a workload on a design")
    run.add_argument("design", choices=ALL_DESIGN_NAMES)
    run.add_argument("workload",
                     help="SPEC/PARSEC program or MIX1..MIX8")
    run.add_argument("--accesses", type=int, default=100_000)
    run.add_argument("--cache-mb", type=int, default=1024)
    run.add_argument("--scale", type=int, default=64)
    run.add_argument("--replacement", default="fifo",
                     choices=("fifo", "lru", "clock"))
    run.add_argument("--warmup", type=float, default=0.25,
                     help="fraction of each trace that warms state "
                          "unmeasured (default 0.25)")
    run.add_argument("--json", action="store_true",
                     help="emit metrics as JSON")
    run.add_argument("--trace", dest="trace_out", default=None,
                     metavar="PATH",
                     help="capture a Perfetto JSON event trace of the "
                          "measured window to PATH")
    run.add_argument("--timeseries", dest="timeseries_out", default=None,
                     metavar="PATH",
                     help="capture a windowed time-series artifact to "
                          "PATH (.csv suffix switches format)")
    run.add_argument("--interval", type=int, default=1024,
                     help="time-series window size in accesses "
                          "(default 1024)")
    run.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget; the run executes in a "
                          "supervised worker and is killed past it "
                          "(incompatible with --trace/--timeseries)")
    run.add_argument("--retries", type=int, default=0,
                     help="extra attempts if the run fails (supervised "
                          "mode, like --timeout)")
    run.add_argument("--engine", choices=ENGINE_MODES, default=None,
                     help="execution engine: scalar (per-access loop) or "
                          "batched (fused kernels; bit-identical, "
                          "faster).  Default: $REPRO_ENGINE, else scalar")
    _add_machine_arguments(run)

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument(
        "figure",
        choices=("fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"),
    )
    experiment.add_argument("--accesses", type=int, default=None,
                            help="per-core trace length override")
    experiment.add_argument("--json", action="store_true",
                            help="emit the figure's data as JSON instead "
                                 "of text tables")
    experiment.add_argument("--artifact", default=None,
                            help="JSONL run-record path (default: a "
                                 "timestamped file under <cache-dir>/runs)")
    _add_machine_arguments(experiment)
    _add_harness_arguments(experiment)

    sweep = sub.add_parser(
        "sweep",
        help="run a cartesian design x workload x cache-size sweep "
             "and record every point to JSONL",
    )
    sweep.add_argument("--designs", nargs="+", default=list(DESIGN_NAMES),
                       choices=ALL_DESIGN_NAMES, metavar="DESIGN",
                       help=f"designs to sweep (default: paper order; "
                            f"choices: {', '.join(ALL_DESIGN_NAMES)})")
    sweep.add_argument("--workloads", nargs="+", required=True,
                       metavar="WORKLOAD",
                       help="SPEC/PARSEC programs or MIX1..MIX8")
    sweep.add_argument("--cache-sizes", nargs="+", type=int, default=[1024],
                       metavar="MB", help="nominal cache sizes in MB")
    sweep.add_argument("--accesses", type=int, default=50_000,
                       help="per-core trace length (default 50k)")
    sweep.add_argument("--scale", type=int, default=64)
    sweep.add_argument("--replacement", default="fifo",
                       choices=("fifo", "lru", "clock"))
    sweep.add_argument("--warmup", type=float, default=0.25)
    sweep.add_argument("--out", default="sweep.jsonl",
                       help="JSONL artifact path (default sweep.jsonl)")
    sweep.add_argument("--json", action="store_true",
                       help="print the run summary as JSON")
    sweep.add_argument("--validate", action="store_true",
                       help="run every job with the repro.validate "
                            "invariant checker installed")
    _add_machine_arguments(sweep)
    _add_harness_arguments(sweep)

    campaign = sub.add_parser(
        "campaign",
        help="run, resume, and report declarative factor x level x "
             "repetition studies with statistical reduction",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _campaign_exec_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes (1 = serial)")
        parser.add_argument("--cache-dir", default=None,
                            help="result-cache root (default ~/.cache/"
                                 "repro, or $REPRO_CACHE_DIR)")
        parser.add_argument("--no-cache", action="store_true",
                            help="compute every point fresh")
        parser.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-job wall-clock budget")
        parser.add_argument("--retries", type=int, default=0,
                            help="extra attempts per failed job")
        parser.add_argument("--retry-backoff", type=float, default=0.5,
                            metavar="SECONDS",
                            help="first retry delay, doubling per attempt")
        parser.add_argument("--resume-strict", action="store_true",
                            help="when resuming, skip artifact rows "
                                 "recorded by a different code "
                                 "fingerprint instead of warning")
        parser.add_argument("--json", action="store_true",
                            help="print the run summary as JSON")
        _add_fleet_arguments(parser)

    campaign_run = campaign_sub.add_parser(
        "run", help="execute a study spec end to end and write reports"
    )
    campaign_run.add_argument(
        "study", nargs="?", default=None,
        help="path to a .json/.toml campaign spec (optional with --smoke)"
    )
    campaign_run.add_argument(
        "--out", default=None, metavar="DIR",
        help="campaign directory for the spec copy, the resumable "
             "jobs.jsonl artifact and the reports "
             "(default campaigns/<study name>)"
    )
    campaign_run.add_argument(
        "--resume", action="store_true",
        help="seed completed points from DIR/jobs.jsonl of an "
             "interrupted run; only missing/failed points are recomputed"
    )
    campaign_run.add_argument(
        "--smoke", action="store_true",
        help="CI gate: run a tiny built-in study (or the given one) and "
             "schema-validate the JSON report (exit non-zero on any "
             "problem)"
    )
    _add_machine_arguments(campaign_run)
    _campaign_exec_arguments(campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="continue an interrupted campaign directory"
    )
    campaign_resume.add_argument(
        "dir", help="campaign directory holding spec.json + jobs.jsonl"
    )
    _campaign_exec_arguments(campaign_resume)

    campaign_report = campaign_sub.add_parser(
        "report",
        help="recompute the statistical reports of a campaign directory "
             "from its artifact, without re-running anything",
    )
    campaign_report.add_argument(
        "dir", help="campaign directory holding spec.json + jobs.jsonl"
    )
    campaign_report.add_argument("--json", action="store_true",
                                 help="print the JSON report to stdout "
                                      "instead of the Markdown table")

    profile = sub.add_parser(
        "profile",
        help="profile the simulation engine with cProfile",
    )
    profile.add_argument("--design", default="tagless",
                         choices=ALL_DESIGN_NAMES)
    profile.add_argument("--workload", default="mcf",
                         help="SPEC/PARSEC program or MIX1..MIX8")
    profile.add_argument("--accesses", type=int, default=100_000)
    profile.add_argument("--cache-mb", type=int, default=1024)
    profile.add_argument("--scale", type=int, default=64)
    profile.add_argument("--replacement", default="fifo",
                         choices=("fifo", "lru", "clock"))
    profile.add_argument("--warmup", type=float, default=0.25)
    profile.add_argument("--top", type=int, default=25,
                         help="rows to report (default 25)")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "ncalls"),
                         help="ranking key (default cumulative)")
    profile.add_argument("--json", action="store_true",
                         help="emit the report as JSON")

    report = sub.add_parser(
        "report",
        help="render a time-series artifact as ASCII sparklines",
    )
    report.add_argument("artifact",
                        help="path to a .timeseries.jsonl/.csv artifact "
                             "(from `repro trace` or --timeseries)")
    report.add_argument("--width", type=int, default=60,
                        help="sparkline width in characters (default 60)")
    report.add_argument("--metrics", nargs="+", default=None,
                        metavar="COLUMN",
                        help="only render these columns (default: all)")

    status = sub.add_parser(
        "status",
        help="reconstruct campaign health (counters, failures, missing "
             "points) from a campaign directory's artifacts",
    )
    status.add_argument(
        "dir", nargs="?", default=None,
        help="campaign directory holding spec.json + jobs.jsonl "
             "(optional with --smoke)"
    )
    status.add_argument("--json", action="store_true",
                        help="emit the status as JSON")
    status.add_argument("--smoke", action="store_true",
                        help="CI gate: run the built-in smoke study and "
                             "verify status reconstructs the run's exact "
                             "counters from its artifacts")

    merge_trace = sub.add_parser(
        "merge-trace",
        help="merge Perfetto JSON traces (e.g. a harness job-lifecycle "
             "trace and a sim-level telemetry trace) into one timeline",
    )
    merge_trace.add_argument("traces", nargs="+",
                             help="input Perfetto JSON trace files")
    merge_trace.add_argument("--out", required=True, metavar="PATH",
                             help="merged Perfetto JSON output path")

    tenants = sub.add_parser(
        "tenants",
        help="replay a multi-tenant scenario (context-switched schedule, "
             "optional runtime cache resizing) and report per-tenant QoS",
    )
    tenants.add_argument("scenario", metavar="SCENARIO",
                         help="scenario JSON file "
                              "(see examples/studies/multitenant_scenario"
                              ".json)")
    tenants.add_argument("--design", default="tagless-resizable",
                         choices=ALL_DESIGN_NAMES,
                         help="design to replay the schedule on "
                              "(default tagless-resizable; the scenario's "
                              "resize events only apply to designs that "
                              "support a capacity schedule)")
    tenants.add_argument("--cache-mb", type=int, default=512,
                         help="DRAM cache size in MB (default 512: with "
                              "--scale 512 and --tlb-scale 32 the cache "
                              "stays comfortably above total TLB reach)")
    tenants.add_argument("--cores", type=int, default=4,
                         help="cores the tenants are scheduled onto")
    tenants.add_argument("--scale", type=int, default=512,
                         help="capacity scale-down factor (default 512)")
    tenants.add_argument("--replacement", default="fifo",
                         choices=("fifo", "lru", "clock"),
                         help="victim selection policy")
    tenants.add_argument("--tlb-scale", type=int, default=32,
                         help="TLB reach scale-down matching --scale "
                              "(default 32)")
    tenants.add_argument("--validate", action="store_true",
                         help="run with the invariant checker installed "
                              "(sweeps hold mid-resize)")
    tenants.add_argument("--every", type=int, default=None,
                         help="accesses between invariant sweeps")
    tenants.add_argument("--json", action="store_true",
                         help="machine-readable output")

    validate = sub.add_parser(
        "validate",
        help="grade the paper's headline claims against this build",
    )
    validate.add_argument("--accesses", type=int, default=40_000,
                          help="single-programmed trace length")

    check = sub.add_parser(
        "check",
        help="run structural invariants, reference differentials and "
             "cross-design bounds (the repro.validate subsystem)",
    )
    check.add_argument("--design", nargs="+", default=list(ALL_DESIGN_NAMES),
                       choices=ALL_DESIGN_NAMES, metavar="DESIGN",
                       help="designs to sweep with the invariant checker "
                            "(default: all registered)")
    check.add_argument("--accesses", type=int, default=20_000,
                       help="trace length per invariant-checked run "
                            "(default 20k)")
    check.add_argument("--every", type=int, default=None,
                       help="accesses between invariant sweeps (default "
                            "$REPRO_VALIDATE_EVERY or 1024)")
    check.add_argument("--workload", default="mcf",
                       help="SPEC program driving the checked runs")
    check.add_argument("--smoke", action="store_true",
                       help="CI-sized pass: short traces, frequent sweeps")
    return parser


def cmd_workloads(_args: argparse.Namespace) -> int:
    print("SPEC CPU 2006 models (single/multi-programmed):")
    for name in SPEC_ORDER:
        profile = SPEC_PROFILES[name]
        print(f"  {name:12s} footprint {profile.footprint_mb:6.0f} MB  "
              f"apki {profile.apki:4.1f}  "
              f"stream {profile.stream_fraction:.2f}  "
              f"cold {profile.cold_fraction:.3f}")
    print("\nPARSEC models (multi-threaded):")
    for name in PARSEC_ORDER:
        profile = PARSEC_PROFILES[name]
        print(f"  {name:12s} footprint {profile.footprint_mb:6.0f} MB  "
              f"apki {profile.apki:4.1f}")
    print("\nMixes (Table 5):")
    for name in MIX_ORDER:
        print(f"  {name}: {'-'.join(MIXES[name])}")
    return 0


def _profile_for(workload: str):
    if workload in SPEC_PROFILES:
        return SPEC_PROFILES[workload]
    if workload in PARSEC_PROFILES:
        return PARSEC_PROFILES[workload]
    raise SystemExit(
        f"unknown workload {workload!r}; see `repro workloads`"
    )


def cmd_trace(args: argparse.Namespace) -> int:
    """Dispatch the dual-mode ``trace`` subcommand.

    ``repro trace <design> <workload>`` captures telemetry from a
    simulated run; ``repro trace <workload>`` keeps the original
    synthetic-trace generator (design names and workload names do not
    collide, so the first positional disambiguates); ``--smoke`` runs
    the CI artifact gate over every design.
    """
    if args.smoke:
        return _trace_smoke(args)
    if args.target is None:
        raise SystemExit(
            "trace needs a design (capture) or workload (generate); "
            "see `repro trace --help`"
        )
    if args.target in ALL_DESIGN_NAMES:
        return _trace_capture(args)
    if args.workload is not None:
        raise SystemExit(
            f"unknown design {args.target!r}; capture mode is "
            f"`repro trace <design> <workload>` with design one of: "
            f"{', '.join(ALL_DESIGN_NAMES)}"
        )
    return _trace_generate(args)


def _trace_generate(args: argparse.Namespace) -> int:
    profile = _profile_for(args.target)
    generator = TraceGenerator(profile, capacity_scale=args.scale)
    accesses = args.accesses if args.accesses is not None else 100_000
    trace = generator.generate(accesses)
    print(f"{trace.name}: {len(trace)} accesses, "
          f"{trace.footprint_pages} pages, "
          f"apki {trace.accesses_per_kilo_instruction:.1f}, "
          f"writes {trace.write_fraction():.2f}, "
          f"{trace.total_instructions} instructions")
    if args.out:
        save_trace(trace, args.out)
        print(f"saved to {args.out}")
    return 0


def _trace_capture(args: argparse.Namespace) -> int:
    """Run one design/workload point with telemetry and write artifacts."""
    from repro.obs import make_telemetry

    if args.workload is None:
        raise SystemExit(
            "capture mode needs a workload: repro trace <design> <workload>"
        )
    if not (0.0 <= args.warmup < 1.0):
        raise SystemExit("--warmup must be in [0, 1)")
    if args.interval < 1:
        raise SystemExit("--interval must be >= 1")
    accesses = args.accesses if args.accesses is not None else 20_000
    config = build_system(
        cache_megabytes=args.cache_mb,
        num_cores=4 if args.workload in MIXES else 1,
        replacement=args.replacement,
        capacity_scale=args.scale,
    )
    bindings = _bindings_for(args.workload, accesses, args.scale)
    telemetry = make_telemetry(interval=args.interval,
                               unit=args.interval_unit)
    result = Simulator(config).run(
        args.target, bindings, warmup_fraction=args.warmup,
        telemetry=telemetry,
    )
    stem = f"{args.target}-{args.workload}"
    trace_path = args.trace_out or f"{stem}.perfetto.json"
    timeseries_path = args.timeseries_out or f"{stem}.timeseries.jsonl"
    telemetry.write_artifacts(trace_path, timeseries_path,
                              workload=args.workload)
    tracer = telemetry.tracer
    print(f"{args.target} on {args.workload}: {accesses} accesses, "
          f"IPC {result.ipc_sum:.3f}, "
          f"{telemetry.timeseries.windows} windows, "
          f"{len(tracer)} events retained ({tracer.dropped} dropped)")
    print(f"trace:      {trace_path} (open at ui.perfetto.dev)")
    print(f"timeseries: {timeseries_path} (render with `repro report`)")
    return 0


#: Time-series columns the smoke gate (and the paper's figures) require.
_SMOKE_REQUIRED_COLUMNS = ("free_queue_depth", "ctlb_hit_rate",
                           "offpkg_gbps")


def _validate_trace_artifacts(trace_path: str,
                              timeseries_path: str) -> List[str]:
    """Schema checks for one captured artifact pair; returns problems."""
    from repro.obs import load_timeseries

    problems: List[str] = []
    try:
        with open(trace_path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"perfetto: unreadable ({exc})"]
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        problems.append("perfetto: traceEvents missing or empty")
        events = []
    last_ts = None
    open_slices: dict = {}
    for index, event in enumerate(events):
        missing = [k for k in ("name", "ph", "ts", "pid", "tid")
                   if k not in event]
        if missing:
            problems.append(
                f"perfetto: event {index} missing {','.join(missing)}"
            )
            continue
        phase = event["ph"]
        if phase == "M":
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"perfetto: event {index} bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append("perfetto: timestamps not monotonic")
        last_ts = ts
        key = (event["tid"], event["name"])
        if phase == "B":
            open_slices[key] = open_slices.get(key, 0) + 1
        elif phase == "E":
            if open_slices.get(key, 0) <= 0:
                problems.append(f"perfetto: unmatched E for {event['name']}")
            else:
                open_slices[key] -= 1
    unclosed = [name for (_tid, name), depth in open_slices.items()
                if depth > 0]
    if unclosed:
        problems.append(f"perfetto: unclosed B slices: {unclosed}")

    try:
        _meta, columns, _histogram = load_timeseries(timeseries_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        problems.append(f"timeseries: unreadable ({exc})")
        return problems
    for column in _SMOKE_REQUIRED_COLUMNS:
        if not columns.get(column):
            problems.append(f"timeseries: missing {column} series")
    return problems


def _trace_smoke(args: argparse.Namespace) -> int:
    """CI gate: every design must produce schema-valid artifacts."""
    import os
    import tempfile

    from repro.obs import make_telemetry

    designs = ALL_DESIGN_NAMES
    if args.target is not None:
        if args.target not in ALL_DESIGN_NAMES:
            raise SystemExit(f"unknown design {args.target!r}")
        designs = (args.target,)
    workload = args.workload or "mcf"
    accesses = args.accesses if args.accesses is not None else 2000
    config = build_system(
        cache_megabytes=args.cache_mb,
        num_cores=4 if workload in MIXES else 1,
        replacement=args.replacement,
        capacity_scale=args.scale,
    )
    bindings = _bindings_for(workload, accesses, args.scale)
    simulator = Simulator(config)
    failures = 0
    print(f"trace smoke: {len(designs)} designs x {accesses} accesses "
          f"({workload})")
    with tempfile.TemporaryDirectory(prefix="repro-trace-") as tmp:
        for design in designs:
            # Windows sized so even the short smoke trace produces a
            # multi-window series for the column checks.
            telemetry = make_telemetry(
                interval=max(1, accesses // 8), unit=args.interval_unit,
            )
            simulator.run(design, bindings, warmup_fraction=args.warmup,
                          telemetry=telemetry)
            trace_path = os.path.join(tmp, f"{design}.perfetto.json")
            timeseries_path = os.path.join(
                tmp, f"{design}.timeseries.jsonl"
            )
            telemetry.write_artifacts(trace_path, timeseries_path,
                                      workload=workload)
            problems = _validate_trace_artifacts(trace_path,
                                                 timeseries_path)
            if problems:
                failures += 1
                print(f"  [FAIL] {design}: {'; '.join(problems)}")
            else:
                print(f"  [ok]   {design}: "
                      f"{telemetry.timeseries.windows} windows, "
                      f"{len(telemetry.tracer)} events")
    print("trace smoke:", "PASS" if failures == 0 else f"FAIL ({failures})")
    return 0 if failures == 0 else 1


def _bindings_for(workload: str, accesses: int, scale: int) -> List[BoundTrace]:
    """Trace bindings for a single program or a MIX (shared by run/profile)."""
    if workload in MIXES:
        traces = mix_traces(workload, accesses_per_program=accesses,
                            capacity_scale=scale)
        return [BoundTrace(i, i, t) for i, t in enumerate(traces)]
    profile = _profile_for(workload)
    trace = TraceGenerator(profile, capacity_scale=scale).generate(accesses)
    return [BoundTrace(0, 0, trace)]


def _run_supervised(args: argparse.Namespace):
    """Execute ``repro run`` through the fault-tolerant harness.

    Used when ``--timeout``/``--retries`` are given: the simulation runs
    in a killable worker process, so a hang ends after the budget
    instead of wedging the terminal.  Simulator-level telemetry cannot
    cross the process boundary, hence the ``--trace``/``--timeseries``
    incompatibility.
    """
    if args.trace_out or args.timeseries_out:
        raise SystemExit(
            "--timeout/--retries run in a worker process and cannot "
            "capture --trace/--timeseries telemetry; drop one or the "
            "other"
        )
    try:
        spec = JobSpec(
            design=args.design,
            workload=args.workload,
            accesses=args.accesses,
            cache_megabytes=args.cache_mb,
            num_cores=4 if args.workload in MIXES else 1,
            replacement=args.replacement,
            capacity_scale=args.scale,
            warmup_fraction=args.warmup,
            timeout_s=args.timeout,
            engine=args.engine,
            machine=_machine_from_args(args),
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    outcome = run_jobs([spec], jobs=1, retries=args.retries)[0]
    if not outcome.ok:
        print(f"{spec.label} {outcome.status}: {outcome.error}",
              file=sys.stderr)
        if outcome.error_detail:
            print(outcome.error_detail, file=sys.stderr)
        raise SystemExit(1)
    return outcome.result


def cmd_run(args: argparse.Namespace) -> int:
    if not (0.0 <= args.warmup < 1.0):
        raise SystemExit("--warmup must be in [0, 1)")
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive")
    telemetry = None
    if args.timeout is not None or args.retries > 0:
        result = _run_supervised(args)
    else:
        machine = _machine_from_args(args)
        try:
            config = build_system(
                machine=machine,
                cache_megabytes=args.cache_mb,
                num_cores=4 if args.workload in MIXES else 1,
                replacement=args.replacement,
                capacity_scale=args.scale,
            )
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        bindings = _bindings_for(args.workload, args.accesses, args.scale)

        if args.trace_out or args.timeseries_out:
            from repro.obs import make_telemetry

            if args.interval < 1:
                raise SystemExit("--interval must be >= 1")
            telemetry = make_telemetry(interval=args.interval)
        result = Simulator(config).run(
            args.design, bindings, warmup_fraction=args.warmup,
            telemetry=telemetry, engine=args.engine,
        )
    metrics = {
        "design": args.design,
        "workload": args.workload,
        "cache_mb": args.cache_mb,
        "warmup_fraction": args.warmup,
        "ipc": result.ipc_sum,
        "per_core_ipc": [core.ipc for core in result.cores],
        "elapsed_ms": result.elapsed_ns / 1e6,
        "mean_l3_latency_cycles": result.mean_l3_latency_cycles,
        "energy_j": result.total_energy_j,
        "edp_js": result.edp,
    }
    machine_spec = _machine_from_args(args)
    if not machine_spec.is_default:
        # Key appears only when the machine was customised, so default
        # invocations keep byte-identical output.
        metrics["machine"] = machine_spec.to_dict()
    if telemetry is not None:
        # Keys appear only when capture was requested, so the default
        # output stays byte-identical.
        telemetry.write_artifacts(args.trace_out, args.timeseries_out,
                                  workload=args.workload)
        if args.trace_out:
            metrics["trace"] = args.trace_out
        if args.timeseries_out:
            metrics["timeseries"] = args.timeseries_out
    if args.json:
        print(json.dumps(metrics, indent=2))
    else:
        for key, value in metrics.items():
            print(f"{key:24s}: {value}")
    return 0


def _load_resume(path: str, strict: bool):
    """Load a resume map, reporting provenance of the seeded rows.

    Rows recorded under a different code fingerprint are either skipped
    (``strict``) or accepted with a warning -- results computed by a
    different build of the simulator may not match what the current
    code would produce.
    """
    try:
        resume = load_resume_map(path, strict=strict)
    except OSError as exc:
        raise SystemExit(
            f"cannot read resume artifact {path}: {exc}"
        ) from None
    print(f"resume: {len(resume)} completed points from {path}",
          file=sys.stderr)
    if resume.skipped:
        print(f"resume: skipped {resume.skipped} rows from a different "
              f"code fingerprint (--resume-strict)", file=sys.stderr)
    elif resume.code_mismatches or resume.unknown_code:
        suspect = resume.code_mismatches + resume.unknown_code
        print(f"resume: warning: {suspect} rows were recorded by a "
              f"different or unknown code fingerprint; pass "
              f"--resume-strict to recompute them instead",
              file=sys.stderr)
    return resume


#: Worker heartbeat period behind ``--live`` (seconds).
LIVE_HEARTBEAT_S = 0.5


def _install_metrics(args: argparse.Namespace) -> None:
    """Arm the global metrics registry when ``--metrics`` asks for it.

    Must run before any instrumented object (cache, pool, arena) is
    constructed: instruments are fetched at construction time.  Without
    the flag the registry keeps its ``$REPRO_METRICS`` default.
    """
    if getattr(args, "metrics_out", None):
        from repro.obs import MetricsRegistry, set_registry

        set_registry(MetricsRegistry(enabled=True))


def _write_metrics(path: Optional[str]) -> None:
    """Snapshot the global registry to ``path`` (no-op without one)."""
    if not path:
        return
    from repro.obs import get_registry

    get_registry().write(path)
    print(f"metrics: {path}", file=sys.stderr)


def _fleet_observer(args: argparse.Namespace, name: str,
                    total: Optional[int]):
    """Observer stack for the shared flags: tracing and/or ``--live``.

    Returns ``(observer, heartbeat_s)``; both ``None`` when no
    observability was requested.
    """
    observers = []
    if getattr(args, "trace_out", None) or getattr(args, "timeseries_out",
                                                   None):
        from repro.obs import HarnessObserver

        harness_obs = HarnessObserver(label=name)
        harness_obs.trace_path = args.trace_out
        harness_obs.timeseries_path = args.timeseries_out
        observers.append(harness_obs)
    live = bool(getattr(args, "live", False))
    if live:
        from repro.obs import LiveMonitor

        observers.append(LiveMonitor(total=total or 0, label=name))
    if not observers:
        return None, None
    if len(observers) == 1:
        return observers[0], LIVE_HEARTBEAT_S if live else None
    from repro.obs import CompositeObserver

    return (CompositeObserver(*observers),
            LIVE_HEARTBEAT_S if live else None)


def _observer_parts(observer) -> list:
    """The leaf observers behind a possibly-composite observer."""
    if observer is None:
        return []
    return list(getattr(observer, "observers", [observer]))


def _build_harness(args: argparse.Namespace, name: str,
                   artifact_path: Optional[str],
                   total: Optional[int] = None) -> Harness:
    """Assemble the execution engine from the shared CLI flags.

    Progress and the artifact location go to stderr so stdout carries
    only the figure tables / JSON -- byte-identical to a serial,
    uncached invocation.
    """
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive")
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    if args.retry_backoff < 0:
        raise SystemExit("--retry-backoff must be >= 0")
    _install_metrics(args)
    resume = None
    if args.resume is not None:
        resume = _load_resume(args.resume, args.resume_strict)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if artifact_path is None:
        artifact_path = default_artifact_path(
            resolve_cache_dir(args.cache_dir), name
        )
    artifact = RunArtifact(
        artifact_path, name=name,
        meta={"jobs": args.jobs, "cache": not args.no_cache,
              "argv": sys.argv[1:]},
    )
    # --live owns the terminal; the line-per-job reporter keeps counting
    # silently so its end-of-run summary still prints.
    progress = ProgressReporter(total=total, label=name,
                                enabled=not getattr(args, "live", False))
    observer, heartbeat_s = _fleet_observer(args, name, total)
    print(f"artifact: {artifact_path}", file=sys.stderr)
    harness = Harness(jobs=args.jobs, cache=cache, progress=progress,
                      artifact=artifact, observer=observer,
                      timeout_s=args.timeout, retries=args.retries,
                      retry_backoff_s=args.retry_backoff, resume=resume,
                      heartbeat_s=heartbeat_s)
    harness.metrics_out = getattr(args, "metrics_out", None)
    return harness


def _finish_harness(harness: Harness) -> None:
    cache_stats = harness.cache.stats if harness.cache else None
    harness.artifact.close(cache_stats)
    if harness.observer is not None:
        harness.observer.finish()
        for part in _observer_parts(harness.observer):
            for path in (getattr(part, "trace_path", None),
                         getattr(part, "timeseries_path", None)):
                if path:
                    print(f"telemetry: {path}", file=sys.stderr)
    harness.progress.summary(cache_stats)
    _write_metrics(getattr(harness, "metrics_out", None))


def cmd_experiment(args: argparse.Namespace) -> int:
    accesses = args.accesses
    machine = _machine_from_args(args)
    if args.engine is not None:
        # The figure runners build their JobSpecs internally; the
        # environment default reaches them (and forked workers) without
        # threading a parameter through every runner signature.
        os.environ["REPRO_ENGINE"] = args.engine
    harness = _build_harness(args, args.figure, args.artifact)
    try:
        if args.figure == "fig7":
            result = experiments.run_single_programmed(
                accesses=accesses or experiments.DEFAULT_ACCESSES,
                machine=machine,
                harness=harness,
            )
            tables = [result.ipc_table(), result.edp_table()]
        elif args.figure == "fig8":
            result = experiments.run_single_programmed(
                accesses=accesses or experiments.DEFAULT_ACCESSES,
                designs=("no-l3", "sram", "tagless"),
                machine=machine,
                harness=harness,
            )
            tables = [result.l3_latency_table()]
        elif args.figure == "fig9":
            result = experiments.run_multi_programmed(
                accesses=accesses or experiments.DEFAULT_MIX_ACCESSES,
                machine=machine,
                harness=harness,
            )
            tables = [result.ipc_table(), result.edp_table()]
        elif args.figure == "fig10":
            result = experiments.run_cache_size_sweep(
                accesses=accesses or experiments.DEFAULT_MIX_ACCESSES,
                machine=machine,
                harness=harness,
            )
            tables = [result.table()]
        elif args.figure == "fig11":
            result = experiments.run_replacement_study(
                accesses=accesses or 140_000,
                machine=machine,
                harness=harness,
            )
            tables = [result.table()]
        elif args.figure == "fig12":
            result = experiments.run_parsec(
                accesses=accesses or experiments.DEFAULT_MIX_ACCESSES,
                machine=machine,
                harness=harness,
            )
            tables = [result.ipc_table(), result.edp_table()]
        elif args.figure == "fig13":
            result = experiments.run_noncacheable_study(
                accesses=accesses or experiments.DEFAULT_ACCESSES,
                machine=machine,
                harness=harness,
            )
            tables = [result.table()]
    finally:
        _finish_harness(harness)

    if args.json:
        data = result.to_dict()
        # Execution health rides along so campaign-style aggregation
        # can tell a clean figure from one that limped through retries.
        data["harness"] = harness.artifact.counters
        print(json.dumps(data, indent=2))
    else:
        for index, table in enumerate(tables):
            if index:
                print()
            print(table)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    specs: List[JobSpec] = []
    machine = _machine_from_args(args)
    try:
        for design in args.designs:
            for workload in args.workloads:
                kind = infer_workload_kind(workload)
                for size in args.cache_sizes:
                    specs.append(JobSpec(
                        design=design,
                        workload=workload,
                        workload_kind=kind,
                        accesses=args.accesses,
                        cache_megabytes=size,
                        num_cores=1 if kind == "spec" else 4,
                        replacement=args.replacement,
                        capacity_scale=args.scale,
                        warmup_fraction=args.warmup,
                        validate=args.validate,
                        engine=args.engine,
                        machine=machine,
                    ))
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None

    harness = _build_harness(args, "sweep", args.out, total=len(specs))
    try:
        outcomes = harness.run(specs)
    finally:
        _finish_harness(harness)

    errors = sum(1 for outcome in outcomes if not outcome.ok)
    hits = sum(1 for o in outcomes if o.cache_status == "hit")
    summary = {
        "jobs": len(outcomes),
        "errors": errors,
        "timeouts": sum(1 for o in outcomes if o.status == "timeout"),
        "worker_crashes": sum(1 for o in outcomes
                              if o.status == "worker-crashed"),
        "retries": sum(o.retries for o in outcomes),
        "resumed": sum(1 for o in outcomes if o.cache_status == "resume"),
        "cache_hits": hits,
        "artifact": args.out,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"{len(outcomes)} jobs ({errors} errors, {hits} cache hits) "
              f"-> {args.out}")
    return 1 if errors else 0


#: Built-in study behind ``repro campaign run --smoke``: a 2-design x
#: 2-workload grid, two repetitions, small traces -- big enough to
#: exercise expansion, seed pairing, reduction and report writing, small
#: enough for a CI gate.
_SMOKE_STUDY = {
    "name": "smoke",
    "repetitions": 2,
    "factors": {
        "design": ["tagless", "no-l3"],
        "workload": ["mcf", "lbm"],
    },
    "fixed": {"accesses": 2000, "cache_mb": 256, "scale": 512},
    "metrics": ["ipc"],
    "baseline": "no-l3",
    "bootstrap_resamples": 200,
}


def _campaign_spec(args: argparse.Namespace):
    """Load the study for ``campaign run`` (file, or the smoke built-in)."""
    from repro.campaign import CampaignSpec

    if args.study is not None:
        try:
            return CampaignSpec.from_file(args.study)
        except OSError as exc:
            raise SystemExit(
                f"cannot read study {args.study}: {exc}"
            ) from None
        except ConfigurationError as exc:
            raise SystemExit(f"bad study {args.study}: {exc}") from None
    if args.smoke:
        return CampaignSpec.from_dict(_SMOKE_STUDY)
    raise SystemExit("campaign run needs a study file (or --smoke); "
                     "see `repro campaign run --help`")


def _campaign_execute(spec, out_dir: str, args: argparse.Namespace,
                      resume: bool) -> int:
    """Shared body of ``campaign run`` and ``campaign resume``."""
    import os

    from repro.campaign import (
        CampaignRun,
        expand,
        reduce_campaign,
        validate_report,
        write_reports,
    )
    from repro.harness.jobs import code_fingerprint

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive")
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    if args.retry_backoff < 0:
        raise SystemExit("--retry-backoff must be >= 0")
    _install_metrics(args)
    try:
        jobs = expand(spec)
    except ConfigurationError as exc:
        raise SystemExit(f"bad study: {exc}") from None

    os.makedirs(out_dir, exist_ok=True)
    spec_path = os.path.join(out_dir, "spec.json")
    artifact_path = os.path.join(out_dir, "jobs.jsonl")

    resume_map = None
    if resume:
        if os.path.exists(spec_path):
            from repro.campaign import CampaignSpec

            try:
                recorded = CampaignSpec.from_file(spec_path)
            except (OSError, ConfigurationError) as exc:
                raise SystemExit(
                    f"cannot read recorded spec {spec_path}: {exc}"
                ) from None
            if recorded.spec_hash() != spec.spec_hash():
                raise SystemExit(
                    f"study changed since this campaign directory was "
                    f"created (spec hash {recorded.spec_hash()} -> "
                    f"{spec.spec_hash()}); use a fresh --out instead of "
                    f"resuming"
                )
        if os.path.exists(artifact_path):
            # Fully loaded before the artifact reopens for writing, so
            # resuming over the same jobs.jsonl is safe.
            resume_map = _load_resume(artifact_path, args.resume_strict)
        else:
            print(f"resume: no prior artifact at {artifact_path}; "
                  f"running the full study", file=sys.stderr)

    with open(spec_path, "w") as handle:
        json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    artifact = RunArtifact(
        artifact_path, name=f"campaign-{spec.name}",
        meta={"campaign": spec.name, "spec_hash": spec.spec_hash(),
              "argv": sys.argv[1:]},
    )
    label = f"campaign:{spec.name}"
    progress = ProgressReporter(total=len(jobs), label=label,
                                enabled=not getattr(args, "live", False))
    observer, heartbeat_s = _fleet_observer(args, label, len(jobs))
    harness = Harness(jobs=args.jobs, cache=cache, progress=progress,
                      artifact=artifact, observer=observer,
                      timeout_s=args.timeout,
                      retries=args.retries,
                      retry_backoff_s=args.retry_backoff,
                      resume=resume_map, heartbeat_s=heartbeat_s)
    print(f"campaign {spec.name}: {len(jobs)} points "
          f"({len(spec.cells())} cells x {spec.repetitions} repetitions) "
          f"-> {out_dir}", file=sys.stderr)
    try:
        outcomes = harness.run([job.spec for job in jobs])
    except KeyboardInterrupt:
        artifact.close(cache.stats if cache else None)
        print(f"\ninterrupted; completed points are in {artifact_path} -- "
              f"finish with `repro campaign resume {out_dir}`",
              file=sys.stderr)
        return 130
    finally:
        artifact.close(cache.stats if cache else None)
        if observer is not None:
            observer.finish()
        progress.summary(cache.stats if cache else None)
        _write_metrics(getattr(args, "metrics_out", None))

    run = CampaignRun(campaign=spec, jobs=jobs, outcomes=outcomes)
    report = reduce_campaign(spec, run.cell_results())
    paths = write_reports(report, out_dir)
    counters = run.counters()
    summary = {
        "campaign": spec.name,
        "spec_hash": spec.spec_hash(),
        "code": code_fingerprint(),
        "out_dir": out_dir,
        "cells": len(spec.cells()),
        "repetitions": spec.repetitions,
        "missing_points": report.missing_points,
        **counters,
        "reports": paths,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"campaign {spec.name}: {counters['jobs']} points -- "
              f"{counters['computed']} computed, "
              f"{counters['cache_hits']} cache hits, "
              f"{counters['resumed']} resumed, "
              f"{counters['errors']} errors "
              f"({counters['timeouts']} timeouts, "
              f"{counters['worker_crashes']} crashes, "
              f"{counters['retries']} retries)")
        for kind, path in paths.items():
            print(f"{kind:10s} {path}")

    if getattr(args, "smoke", False):
        with open(paths["json"]) as handle:
            data = json.load(handle)
        problems = validate_report(data)
        if report.missing_points:
            problems.append(
                f"{report.missing_points} points missing from the study"
            )
        for cell in data.get("cells", []):
            if cell.get("n") != spec.repetitions:
                problems.append(f"cell {cell.get('label')}: n={cell.get('n')}"
                                f" != repetitions={spec.repetitions}")
        if not data.get("pairs"):
            problems.append("no paired comparisons in the smoke report")
        if problems:
            print("campaign smoke: FAIL")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("campaign smoke: PASS")
        return 0
    return 1 if counters["errors"] else 0


def _merge_machine_into_campaign(spec, machine: MachineSpec):
    """Fold ``--machine``/``--set`` into a campaign spec's fixed settings.

    The merged names join the spec's namespace, so they change its
    ``spec_hash`` (a customised machine is a different study) and are
    validated by the :class:`CampaignSpec` constructor like any other
    fixed setting.  Conflicts with the study's own factors or fixed
    settings are refused rather than silently resolved.
    """
    if machine.is_default:
        return spec
    additions = []
    if machine.preset != MachineSpec().preset:
        additions.append(("preset", machine.preset))
    # Explicit overrides only: the preset name above already carries
    # its bundle, so expanding effective_overrides() here would
    # double-apply it.
    additions.extend(machine.overrides)
    taken = ({name for name, _levels in spec.factors}
             | {name for name, _value in spec.fixed})
    conflicts = sorted(name for name, _value in additions if name in taken)
    if conflicts:
        raise SystemExit(
            f"--machine/--set would override study settings already "
            f"declared by {spec.name!r}: {', '.join(conflicts)}; edit "
            f"the study file instead"
        )
    try:
        return dataclasses.replace(
            spec, fixed=spec.fixed + tuple(additions)
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def cmd_campaign(args: argparse.Namespace) -> int:
    import os
    import tempfile

    from repro.campaign import CampaignSpec

    if args.campaign_command == "run":
        spec = _campaign_spec(args)
        spec = _merge_machine_into_campaign(spec, _machine_from_args(args))
        if args.out is not None:
            out_dir = args.out
        elif args.smoke:
            # The smoke gate is a pass/fail check; don't litter the
            # working tree with its campaign directory.
            with tempfile.TemporaryDirectory(prefix="repro-campaign-") \
                    as tmp:
                return _campaign_execute(spec, tmp, args,
                                         resume=args.resume)
        else:
            out_dir = os.path.join("campaigns", spec.name)
        return _campaign_execute(spec, out_dir, args, resume=args.resume)

    spec_path = os.path.join(args.dir, "spec.json")
    try:
        spec = CampaignSpec.from_file(spec_path)
    except OSError as exc:
        raise SystemExit(
            f"{args.dir} is not a campaign directory "
            f"(cannot read {spec_path}: {exc})"
        ) from None
    except ConfigurationError as exc:
        raise SystemExit(f"bad recorded spec {spec_path}: {exc}") from None

    if args.campaign_command == "resume":
        return _campaign_execute(spec, args.dir, args, resume=True)

    # campaign report: reduce the artifact without re-running anything.
    from repro.campaign import (
        reduce_campaign,
        render_markdown,
        results_from_artifact,
        write_reports,
    )

    artifact_path = os.path.join(args.dir, "jobs.jsonl")
    try:
        _jobs, results, dropped = results_from_artifact(spec, artifact_path)
    except OSError as exc:
        raise SystemExit(
            f"cannot read artifact {artifact_path}: {exc}"
        ) from None
    if dropped:
        print(f"warning: skipped {dropped} artifact rows whose specs "
              f"carry keys unknown to this build (written by a newer "
              f"schema?); they cannot be re-associated safely",
              file=sys.stderr)
    report = reduce_campaign(spec, results)
    paths = write_reports(report, args.dir)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_markdown(report), end="")
    if report.missing_points:
        print(f"warning: {report.missing_points} points missing; "
              f"`repro campaign resume {args.dir}` completes them",
              file=sys.stderr)
    for kind, path in paths.items():
        print(f"{kind}: {path}", file=sys.stderr)
    return 0


def _short_location(filename: str, line: int) -> str:
    """Trim profiler file paths to the repository-relative interesting part."""
    if filename.startswith("~") or filename.startswith("<"):
        return filename  # C builtins / exec'd code have no real path
    marker = "src/repro/"
    index = filename.find(marker)
    if index >= 0:
        filename = filename[index:]
    return f"{filename}:{line}"


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one simulation run under cProfile and rank the hot spots."""
    import cProfile
    import pstats
    import time

    if not (0.0 <= args.warmup < 1.0):
        raise SystemExit("--warmup must be in [0, 1)")
    if args.top < 1:
        raise SystemExit("--top must be >= 1")
    config = build_system(
        cache_megabytes=args.cache_mb,
        num_cores=4 if args.workload in MIXES else 1,
        replacement=args.replacement,
        capacity_scale=args.scale,
    )
    bindings = _bindings_for(args.workload, args.accesses, args.scale)
    for binding in bindings:
        # Pay the one-time numpy->list conversion outside the profile so
        # the report shows the steady-state engine, not trace prep.
        binding.trace.as_lists()
    simulator = Simulator(config)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = simulator.run(args.design, bindings,
                           warmup_fraction=args.warmup)
    profiler.disable()
    elapsed = time.perf_counter() - start

    rows = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in \
            pstats.Stats(profiler).stats.items():
        rows.append({
            "function": func,
            "location": _short_location(filename, line),
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": tt,
            "cumtime_s": ct,
        })
    sort_key = {"cumulative": "cumtime_s", "tottime": "tottime_s",
                "ncalls": "ncalls"}[args.sort]
    rows.sort(key=lambda row: row[sort_key], reverse=True)
    rows = rows[:args.top]

    from repro.common import rng

    total_accesses = sum(len(binding.trace) for binding in bindings)
    report = {
        "design": args.design,
        "workload": args.workload,
        "accesses": total_accesses,
        "seed": rng.BASE_SEED,
        "cache_mb": args.cache_mb,
        "scale": args.scale,
        "replacement": args.replacement,
        "warmup_fraction": args.warmup,
        "seconds": elapsed,
        "accesses_per_second": (
            total_accesses / elapsed if elapsed > 0 else 0.0
        ),
        "ipc": result.ipc_sum,
        "sort": args.sort,
        "top": rows,
    }
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(f"{args.design} on {args.workload}: {total_accesses} accesses "
          f"in {elapsed:.3f} s "
          f"({report['accesses_per_second']:,.0f} accesses/s), "
          f"IPC {result.ipc_sum:.3f}")
    print(f"top {len(rows)} by {args.sort}:")
    print(f"{'ncalls':>10s} {'tottime':>9s} {'cumtime':>9s}  function")
    for row in rows:
        print(f"{row['ncalls']:>10d} {row['tottime_s']:>9.3f} "
              f"{row['cumtime_s']:>9.3f}  {row['function']} "
              f"({row['location']})")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a time-series artifact (JSONL or CSV) as sparklines."""
    from repro.obs import load_timeseries, render_timeseries

    if args.width < 1:
        raise SystemExit("--width must be >= 1")
    try:
        meta, columns, histogram = load_timeseries(args.artifact)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read {args.artifact}: {exc}") from None
    print(render_timeseries(meta, columns, histogram=histogram,
                            width=args.width, metrics=args.metrics))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Reconstruct campaign health from spec.json + jobs.jsonl."""
    from repro.campaign import campaign_status, render_status

    if args.smoke:
        return _status_smoke()
    if not args.dir:
        raise SystemExit("status needs a campaign directory (or --smoke); "
                         "see `repro status --help`")
    try:
        status = campaign_status(args.dir)
    except OSError as exc:
        raise SystemExit(
            f"{args.dir} is not a campaign directory ({exc})"
        ) from None
    except ConfigurationError as exc:
        raise SystemExit(
            f"bad recorded spec in {args.dir}: {exc}"
        ) from None
    if args.json:
        print(json.dumps(status.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_status(status))
    return 0


def _status_smoke() -> int:
    """CI gate: artifact-reconstructed counters must equal the run's.

    Runs the built-in smoke study into a temp directory through the
    pooled harness, then rebuilds its health purely from the artifacts
    and diffs against :meth:`CampaignRun.counters` -- the acceptance
    check that `repro status` on a finished campaign tells the same
    story its run summary did.
    """
    import tempfile

    from repro.campaign import CampaignSpec, campaign_status, run_campaign

    spec = CampaignSpec.from_dict(_SMOKE_STUDY)
    problems = []
    with tempfile.TemporaryDirectory(prefix="repro-status-") as tmp:
        with open(os.path.join(tmp, "spec.json"), "w") as handle:
            json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        artifact = RunArtifact(os.path.join(tmp, "jobs.jsonl"),
                               name=f"campaign-{spec.name}")
        harness = Harness(jobs=2, artifact=artifact,
                          progress=ProgressReporter(enabled=False))
        run = run_campaign(spec, harness)
        artifact.close()
        status = campaign_status(tmp)
        expected = run.counters()
        if status.counters != expected:
            problems.append(f"reconstructed counters {status.counters} "
                            f"!= run counters {expected}")
        if status.missing:
            problems.append(f"{status.missing} points missing from the "
                            f"artifact")
        if not status.complete:
            problems.append("finished campaign not reported complete")
    if problems:
        print("status smoke: FAIL")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"status smoke: PASS ({status.expected} points reconstructed "
          f"bit-identically from artifacts)")
    return 0


def cmd_merge_trace(args: argparse.Namespace) -> int:
    """Merge Perfetto traces into one timeline (one process per input)."""
    from repro.obs import merge_perfetto_files

    try:
        merged = merge_perfetto_files(args.traces, args.out)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot merge traces: {exc}") from None
    other = merged["otherData"]
    print(f"merged {len(args.traces)} traces -> {args.out} "
          f"({len(merged['traceEvents'])} events, "
          f"{other['dropped']} dropped at capture)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validate import run_validation

    report = run_validation(
        single_accesses=args.accesses,
        mix_accesses=max(10_000, args.accesses * 3 // 4),
    )
    print(report.table())
    print()
    print("overall:", "PASS" if report.passed else "FAIL")
    return 0 if report.passed else 1


def cmd_tenants(args: argparse.Namespace) -> int:
    """Replay a multi-tenant scenario and print the QoS breakdown."""
    from repro.workloads.tenants import TenantScenarioSpec, build_schedule

    try:
        scenario = TenantScenarioSpec.from_file(args.scenario)
        config = dataclasses.replace(
            build_system(
                cache_megabytes=args.cache_mb,
                num_cores=args.cores,
                replacement=args.replacement,
                capacity_scale=args.scale,
            ),
            tlb_scale=args.tlb_scale,
        )
        schedule = build_schedule(scenario, num_cores=args.cores)
        result = Simulator(config).run_tenants(
            args.design, schedule,
            validate=args.validate or None,
            validate_every=args.every,
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None

    if args.json:
        print(json.dumps({
            "design": args.design,
            "scenario": scenario.to_dict(),
            "schedule_digest": schedule.digest(),
            "ipc": result.ipc_sum,
            "elapsed_ms": result.elapsed_ns / 1e6,
            "energy_j": result.total_energy_j,
            "context_switches": result.stats["context_switches"],
            "tenants": result.tenants,
            "resize_events": result.resize_events,
        }, indent=2))
        return 0

    print(f"scenario {scenario.name}: {len(schedule.tenants)} tenants on "
          f"{args.cores} cores, {schedule.total_accesses} accesses, "
          f"design {args.design}")
    print(f"  ipc {result.ipc_sum:.3f}  elapsed "
          f"{result.elapsed_ns / 1e6:.3f} ms  "
          f"context switches {int(result.stats['context_switches'])}  "
          f"tlb entries flushed "
          f"{int(result.stats['context_switch_tlb_entries'])}")
    print(f"  {'tenant':>6s} {'profile':>10s} {'arrive':>6s} "
          f"{'footprint':>9s} {'instrs':>9s} {'ipc':>7s} {'mpki':>7s} "
          f"{'p50 ns':>8s} {'p99 ns':>8s}")
    for t in result.tenants:
        print(f"  {t['tenant']:>6d} {t['profile']:>10s} "
              f"{t['arrival_round']:>6d} {t['footprint_pages']:>9d} "
              f"{t['instructions']:>9d} {t['ipc']:>7.3f} {t['mpki']:>7.2f} "
              f"{t['p50_demand_ns']:>8.0f} {t['p99_demand_ns']:>8.0f}")
    worst = max(result.tenants, key=lambda t: t["p99_demand_ns"],
                default=None)
    if worst is not None:
        print(f"  worst p99 demand: tenant {worst['tenant']} "
              f"({worst['profile']}) at {worst['p99_demand_ns']:.0f} ns")
    if result.resize_events:
        print(f"  resize events ({len(result.resize_events)}):")
        print(f"    {'at':>8s} {'from':>6s} {'to':>6s} {'remap':>6s} "
              f"{'evict':>6s} {'shoot':>6s} {'budget':>6s}")
        for e in result.resize_events:
            print(f"    {e['at_access']:>8d} {e['from_pages']:>6d} "
                  f"{e['to_pages']:>6d} {e['remapped']:>6d} "
                  f"{e['evicted']:>6d} {e['shootdowns']:>6d} "
                  f"{e['max_remap']:>6d}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Structural and differential validation (the `repro check` gate).

    Three phases, any failure exits non-zero:

    1. every selected design runs an invariant-checked simulation on a
       deliberately small cache (evictions early and often);
    2. the optimized set-associative structures are replayed against the
       slow reference model on randomized traces (LRU/FIFO/CLOCK);
    3. one trace is replayed through the design chain and the
       cross-design bounds (ideal >= tagless >= bi >= no-l3, no-l3's
       off-package demand as the ceiling) are asserted.
    """
    import dataclasses as _dc

    from repro.validate import differential, reference
    from repro.validate.invariants import InvariantViolation

    accesses = 4000 if args.smoke else args.accesses
    every = args.every if args.every is not None else (500 if args.smoke
                                                      else None)
    ref_ops = 4000 if args.smoke else 20_000
    if accesses < 0:
        raise SystemExit("--accesses must be >= 0")

    # A small cache over a scaled-down footprint keeps fill/evict churn
    # high -- the same shape the golden-stats fixtures pin -- so the
    # invariants see the interesting transitions, not a half-empty cache.
    config = _dc.replace(
        build_system(cache_megabytes=128, num_cores=1, capacity_scale=512),
        tlb_scale=32,
    )
    profile = _profile_for(args.workload)
    trace = TraceGenerator(profile, capacity_scale=512).generate(accesses)
    bindings = [BoundTrace(0, 0, trace)]
    simulator = Simulator(config)
    failures = 0

    # Designs with a runtime capacity schedule get one armed mid-run --
    # shrink at a third of the trace, grow back at two thirds -- so the
    # invariant sweeps exercise the resize state machine, not just the
    # steady state.  Designs without one ignore the schedule.
    resize_schedule = [
        (max(1, accesses // 3), 0.75),
        (max(2, 2 * accesses // 3), 1.0),
    ]

    print(f"invariant sweep: {len(args.design)} designs x {accesses} "
          f"accesses ({args.workload})")
    for design in args.design:
        try:
            simulator.run(design, bindings, validate=True,
                          validate_every=every,
                          resize_schedule=resize_schedule,
                          max_remap_per_resize=8)
            print(f"  [ok]   {design}")
        except InvariantViolation as exc:
            failures += 1
            print(f"  [FAIL] {design}: {exc}")

    print(f"reference differential: {ref_ops} randomized ops per policy")
    for policy in reference.REFERENCE_POLICIES:
        try:
            reference.run_reference_differential(
                policy, num_sets=4, ways=8, operations=ref_ops
            )
            print(f"  [ok]   {policy}")
        except InvariantViolation as exc:
            failures += 1
            print(f"  [FAIL] {policy}: {exc}")

    chain = [d for d in differential.BOUND_CHAIN if d in args.design]
    extras = [d for d in ("sram", "alloy") if d in args.design]
    if len(chain) >= 2 or extras:
        try:
            report = differential.run_cross_design_bounds(
                config, bindings, designs=chain + extras,
                workload=args.workload, validate=False,
            )
            print(report.table())
            failures += sum(1 for c in report.checks if not c.passed)
        except InvariantViolation as exc:
            failures += 1
            print(f"  [FAIL] cross-design bounds: {exc}")
    print("check:", "PASS" if failures == 0 else f"FAIL ({failures})")
    return 0 if failures == 0 else 1


_COMMANDS = {
    "workloads": cmd_workloads,
    "trace": cmd_trace,
    "run": cmd_run,
    "experiment": cmd_experiment,
    "sweep": cmd_sweep,
    "campaign": cmd_campaign,
    "profile": cmd_profile,
    "report": cmd_report,
    "status": cmd_status,
    "merge-trace": cmd_merge_trace,
    "tenants": cmd_tenants,
    "validate": cmd_validate,
    "check": cmd_check,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
