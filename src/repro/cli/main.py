"""Argument parsing and dispatch for the ``repro`` command-line tools."""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.analysis import experiments
from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.designs.registry import DESIGN_NAMES
from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import MIX_ORDER, MIXES, mix_traces
from repro.workloads.parsec import PARSEC_ORDER, PARSEC_PROFILES
from repro.workloads.spec import SPEC_ORDER, SPEC_PROFILES
from repro.workloads.trace import save_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tagless DRAM cache reproduction toolkit (ISCA 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list workload models and mixes")

    trace = sub.add_parser("trace", help="generate a synthetic trace")
    trace.add_argument("workload", help="SPEC or PARSEC program name")
    trace.add_argument("--accesses", type=int, default=100_000)
    trace.add_argument("--scale", type=int, default=64,
                       help="capacity scale factor (default 64)")
    trace.add_argument("--out", help="save as .npz to this path")

    run = sub.add_parser("run", help="simulate a workload on a design")
    run.add_argument("design", choices=list(DESIGN_NAMES) + ["alloy"])
    run.add_argument("workload",
                     help="SPEC/PARSEC program or MIX1..MIX8")
    run.add_argument("--accesses", type=int, default=100_000)
    run.add_argument("--cache-mb", type=int, default=1024)
    run.add_argument("--scale", type=int, default=64)
    run.add_argument("--replacement", default="fifo",
                     choices=("fifo", "lru", "clock"))
    run.add_argument("--json", action="store_true",
                     help="emit metrics as JSON")

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument(
        "figure",
        choices=("fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"),
    )
    experiment.add_argument("--accesses", type=int, default=None,
                            help="per-core trace length override")

    validate = sub.add_parser(
        "validate",
        help="grade the paper's headline claims against this build",
    )
    validate.add_argument("--accesses", type=int, default=40_000,
                          help="single-programmed trace length")
    return parser


def cmd_workloads(_args: argparse.Namespace) -> int:
    print("SPEC CPU 2006 models (single/multi-programmed):")
    for name in SPEC_ORDER:
        profile = SPEC_PROFILES[name]
        print(f"  {name:12s} footprint {profile.footprint_mb:6.0f} MB  "
              f"apki {profile.apki:4.1f}  "
              f"stream {profile.stream_fraction:.2f}  "
              f"cold {profile.cold_fraction:.3f}")
    print("\nPARSEC models (multi-threaded):")
    for name in PARSEC_ORDER:
        profile = PARSEC_PROFILES[name]
        print(f"  {name:12s} footprint {profile.footprint_mb:6.0f} MB  "
              f"apki {profile.apki:4.1f}")
    print("\nMixes (Table 5):")
    for name in MIX_ORDER:
        print(f"  {name}: {'-'.join(MIXES[name])}")
    return 0


def _profile_for(workload: str):
    if workload in SPEC_PROFILES:
        return SPEC_PROFILES[workload]
    if workload in PARSEC_PROFILES:
        return PARSEC_PROFILES[workload]
    raise SystemExit(
        f"unknown workload {workload!r}; see `repro workloads`"
    )


def cmd_trace(args: argparse.Namespace) -> int:
    profile = _profile_for(args.workload)
    generator = TraceGenerator(profile, capacity_scale=args.scale)
    trace = generator.generate(args.accesses)
    print(f"{trace.name}: {len(trace)} accesses, "
          f"{trace.footprint_pages} pages, "
          f"apki {trace.accesses_per_kilo_instruction:.1f}, "
          f"writes {trace.write_fraction():.2f}, "
          f"{trace.total_instructions} instructions")
    if args.out:
        save_trace(trace, args.out)
        print(f"saved to {args.out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    config = default_system(
        cache_megabytes=args.cache_mb,
        num_cores=4 if args.workload in MIXES else 1,
        replacement=args.replacement,
        capacity_scale=args.scale,
    )
    if args.workload in MIXES:
        traces = mix_traces(args.workload, accesses_per_program=args.accesses,
                            capacity_scale=args.scale)
        bindings = [BoundTrace(i, i, t) for i, t in enumerate(traces)]
    else:
        profile = _profile_for(args.workload)
        trace = TraceGenerator(
            profile, capacity_scale=args.scale
        ).generate(args.accesses)
        bindings = [BoundTrace(0, 0, trace)]

    result = Simulator(config).run(args.design, bindings)
    metrics = {
        "design": args.design,
        "workload": args.workload,
        "cache_mb": args.cache_mb,
        "ipc": result.ipc_sum,
        "per_core_ipc": [core.ipc for core in result.cores],
        "elapsed_ms": result.elapsed_ns / 1e6,
        "mean_l3_latency_cycles": result.mean_l3_latency_cycles,
        "energy_j": result.total_energy_j,
        "edp_js": result.edp,
    }
    if args.json:
        print(json.dumps(metrics, indent=2))
    else:
        for key, value in metrics.items():
            print(f"{key:24s}: {value}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    accesses = args.accesses
    if args.figure == "fig7":
        result = experiments.run_single_programmed(
            accesses=accesses or experiments.DEFAULT_ACCESSES
        )
        print(result.ipc_table())
        print()
        print(result.edp_table())
    elif args.figure == "fig8":
        result = experiments.run_single_programmed(
            accesses=accesses or experiments.DEFAULT_ACCESSES,
            designs=("no-l3", "sram", "tagless"),
        )
        print(result.l3_latency_table())
    elif args.figure == "fig9":
        result = experiments.run_multi_programmed(
            accesses=accesses or experiments.DEFAULT_MIX_ACCESSES
        )
        print(result.ipc_table())
        print()
        print(result.edp_table())
    elif args.figure == "fig10":
        result = experiments.run_cache_size_sweep(
            accesses=accesses or experiments.DEFAULT_MIX_ACCESSES
        )
        print(result.table())
    elif args.figure == "fig11":
        result = experiments.run_replacement_study(
            accesses=accesses or 140_000
        )
        print(result.table())
    elif args.figure == "fig12":
        result = experiments.run_parsec(
            accesses=accesses or experiments.DEFAULT_MIX_ACCESSES
        )
        print(result.ipc_table())
        print()
        print(result.edp_table())
    elif args.figure == "fig13":
        result = experiments.run_noncacheable_study(
            accesses=accesses or experiments.DEFAULT_ACCESSES
        )
        print(result.table())
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validate import run_validation

    report = run_validation(
        single_accesses=args.accesses,
        mix_accesses=max(10_000, args.accesses * 3 // 4),
    )
    print(report.table())
    print()
    print("overall:", "PASS" if report.passed else "FAIL")
    return 0 if report.passed else 1


_COMMANDS = {
    "workloads": cmd_workloads,
    "trace": cmd_trace,
    "run": cmd_run,
    "experiment": cmd_experiment,
    "validate": cmd_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
