"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

- ``workloads``  -- list the SPEC/PARSEC workload models and the mixes;
- ``trace``      -- generate a synthetic trace, print its statistics,
  optionally save it as ``.npz``;
- ``run``        -- simulate one workload (or mix) on one design and
  print the headline metrics (optionally as JSON);
- ``experiment`` -- regenerate one of the paper's figures end to end;
- ``sweep``      -- cartesian design x workload x size sweep to JSONL;
- ``profile``    -- cProfile one simulation run and rank the hot spots;
- ``validate``   -- grade the paper's headline claims against this build;
- ``check``      -- run structural invariants, reference differentials
  and cross-design bounds (``repro.validate``).
"""

from repro.cli.main import main

__all__ = ["main"]
