"""An Alloy-style block-based DRAM cache (extension design point).

The paper's Table 2 and related-work section contrast page-based caching
against **block-based** designs such as Alloy Cache (Qureshi & Loh,
MICRO 2012): a direct-mapped cache of 64 B blocks whose tag is co-located
with the data in the same DRAM row (a "TAD" unit), so one in-package
access returns tag and data together.  Strengths and weaknesses per
Table 2, all observable in this model:

- *minimal over-fetching*: misses move 64 B, not 4 KB (good);
- *tag storage in DRAM*: no SRAM, but ~12.5 % of the in-package capacity
  feeds tags instead of data (bad);
- *every L3 probe costs an in-package access even on a miss*, and misses
  then pay the off-package block on top (bad for miss-heavy phases);
- *direct-mapped*: conflict misses, no associativity (bad);
- *no row-buffer amortisation*: block-granularity traffic cannot exploit
  a streamed row (bad).

Including it makes the Table 2 comparison quantitative across all three
classes of designs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.addressing import LINES_PER_PAGE
from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.designs.base import MemorySystemDesign
from repro.vm.tlb import TLBEntry

#: Fraction of each in-package row spent on tags (8 B tag per 64 B block
#: in Alloy's 72 B TADs): the capacity tax of block-based caching.
TAG_CAPACITY_TAX = 8 / 72


class AlloyCacheDesign(MemorySystemDesign):
    """Direct-mapped, block-granularity DRAM cache with in-DRAM tags."""

    name = "alloy"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        total_lines = config.cache_pages * LINES_PER_PAGE
        #: Usable block slots after the TAD tag tax.
        self.num_blocks = max(1, int(total_lines * (1 - TAG_CAPACITY_TAX)))
        #: slot -> (physical line, dirty)
        self._slots: Dict[int, Tuple[int, bool]] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _slot_of(self, line: int) -> int:
        return line % self.num_blocks

    def _service_l2_miss(
        self,
        core_id: int,
        entry: TLBEntry,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        line = entry.target_page * LINES_PER_PAGE + line_index
        slot = self._slot_of(line)
        # One in-package access always: the TAD read returns tag+data.
        probe_ns = self.in_package.access_block(
            now_ns, line // LINES_PER_PAGE, is_write
        )
        resident = self._slots.get(slot)
        if resident is not None and resident[0] == line:
            self.hits += 1
            self._slots[slot] = (line, resident[1] or is_write)
            return self.core_cfg.cycles_from_ns(probe_ns)

        # Miss: fetch the block from off-package DRAM, install it, and
        # write back the dirty victim (both off the critical path except
        # the demand block itself).
        self.misses += 1
        if resident is not None and resident[1]:
            self._async_block_write(
                self.off_package, resident[0] // LINES_PER_PAGE, now_ns
            )
            self.writebacks += 1
        fill_ns = self.off_package.access_block(
            now_ns, line // LINES_PER_PAGE, is_write=False
        )
        self._async_block_write(
            self.in_package, line // LINES_PER_PAGE, now_ns
        )
        self._slots[slot] = (line, is_write)
        return self.core_cfg.cycles_from_ns(probe_ns + fill_ns)

    def _writeback_line(self, line: int, now_ns: float) -> None:
        slot = self._slot_of(line)
        resident = self._slots.get(slot)
        if resident is not None and resident[0] == line:
            self._slots[slot] = (line, True)
            self._async_block_write(
                self.in_package, line // LINES_PER_PAGE, now_ns
            )
        else:
            self._async_block_write(
                self.off_package, line // LINES_PER_PAGE, now_ns
            )

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def effective_capacity_fraction(self) -> float:
        """Usable data fraction of the in-package DRAM (Table 2's 'small
        tag storage: bad' row -- the 12.5 % DRAM tag tax)."""
        return 1 - TAG_CAPACITY_TAX

    def register_invariants(self, checker) -> None:
        super().register_invariants(checker)
        checker.register("alloy_slots", self._check_slots)

    def _check_slots(self) -> None:
        """Direct-mapped integrity: every resident line sits in the one
        slot its address hashes to, within the (tag-taxed) capacity."""
        if len(self._slots) > self.num_blocks:
            raise SimulationError(
                f"{len(self._slots)} resident blocks exceed capacity "
                f"{self.num_blocks}"
            )
        for slot, (line, _dirty) in self._slots.items():
            if not (0 <= slot < self.num_blocks):
                raise SimulationError(f"slot {slot} out of range")
            if line % self.num_blocks != slot:
                raise SimulationError(
                    f"line {line} stored in slot {slot}, maps to "
                    f"{line % self.num_blocks}"
                )

    def reset_stats(self) -> None:
        super().reset_stats()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def timeseries_probe(self):
        counters, gauges = super().timeseries_probe()
        counters["l3_hits"] = float(self.hits)
        counters["l3_refs"] = float(self.hits + self.misses)
        counters["writebacks"] = float(self.writebacks)
        return counters, gauges

    def stats(self) -> dict:
        out = super().stats()
        out["l3_hits"] = float(self.hits)
        out["l3_misses"] = float(self.misses)
        out["l3_writebacks"] = float(self.writebacks)
        return out
