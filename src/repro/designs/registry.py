"""Name-based design factory used by the simulator, benches and examples."""

from __future__ import annotations

from typing import Callable, Dict

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.designs.alloy import AlloyCacheDesign
from repro.designs.bank_interleave import BankInterleavingDesign
from repro.designs.base import MemorySystemDesign
from repro.designs.ideal import IdealDesign
from repro.designs.no_l3 import NoL3Design
from repro.designs.sram_tag import SRAMTagDesign
from repro.designs.tagless_design import TaglessDesign
from repro.designs.tagless_resizable import TaglessResizableDesign

_FACTORIES: Dict[str, Callable[[SystemConfig], MemorySystemDesign]] = {
    NoL3Design.name: NoL3Design,
    BankInterleavingDesign.name: BankInterleavingDesign,
    SRAMTagDesign.name: SRAMTagDesign,
    TaglessDesign.name: TaglessDesign,
    IdealDesign.name: IdealDesign,
    AlloyCacheDesign.name: AlloyCacheDesign,
    TaglessResizableDesign.name: TaglessResizableDesign,
}

#: Every registered design, in registration order -- the single source
#: of truth for what :func:`create_design` accepts.  CLI ``choices`` and
#: error messages derive from this tuple.
ALL_DESIGN_NAMES = tuple(_FACTORIES)

#: The evaluation order used throughout the paper's figures -- a strict
#: subset of :data:`ALL_DESIGN_NAMES`.  The block-based "alloy"
#: extension design is constructible (``create_design("alloy", ...)``,
#: ``repro run alloy ...``) but deliberately excluded here because the
#: paper's figure sweeps do not include it; anything iterating
#: ``DESIGN_NAMES`` reproduces the paper's columns exactly.
DESIGN_NAMES = ("no-l3", "bi", "sram", "tagless", "ideal")


def create_design(name: str, config: SystemConfig) -> MemorySystemDesign:
    """Instantiate the design called ``name`` for ``config``.

    >>> design = create_design("tagless", default_system())  # doctest: +SKIP
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown design {name!r}; expected one of "
            f"{', '.join(ALL_DESIGN_NAMES)}"
        ) from None
    return factory(config)
