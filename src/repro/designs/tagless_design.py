"""The tagless DRAM cache design (Figure 2's access path).

Wires the :mod:`repro.core` machinery into the common design interface:

- each core's TLB hierarchy becomes a **cTLB** whose L2-eviction callback
  clears the GIPT residence bit (a page leaving TLB reach becomes
  evictable);
- a TLB miss is handled by :class:`repro.core.miss_handler.CTLBMissHandler`
  (walk + optional fill + GIPT update, Figure 4);
- the on-die L1/L2 are tagged by **cache address** for cached pages and by
  physical address for non-cacheable pages (disjoint key spaces);
- an on-die miss on a cached page is *guaranteed* to hit in-package DRAM
  with zero tag-check latency -- the headline property;
- recycling a cache address invalidates the departing page's lines from
  every core's on-die hierarchy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.addressing import LINES_PER_PAGE
from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.core.ctlb import CacheMapTLB
from repro.core.miss_handler import CTLBMissHandler
from repro.core.tagless_cache import TaglessCacheEngine
from repro.designs.base import PA_NAMESPACE_OFFSET, MemorySystemDesign
from repro.vm.page_table import PageTable
from repro.vm.tlb import TLBEntry, TLBHierarchy


class TaglessDesign(MemorySystemDesign):
    """The paper's fully associative, tagless DRAM cache."""

    name = "tagless"

    #: Engine class hook: the resizable variant substitutes its gated
    #: engine without re-deriving the constructor wiring.
    _engine_class = TaglessCacheEngine

    #: Fused batched kernels apply; subclasses that override the access
    #: path (runtime resizing) clear this so the scalar loop -- which
    #: honours the override -- always runs.
    batchable = True

    def __init__(self, config: SystemConfig):
        self.engine: Optional[TaglessCacheEngine] = None
        super().__init__(config)
        tlb_reach = config.num_cores * config.scaled_tlb.l2_entries
        if config.cache_pages <= tlb_reach:
            raise ConfigurationError(
                f"tagless cache of {config.cache_pages} pages is not "
                f"larger than total TLB reach ({tlb_reach} pages): every "
                "cached page would be eviction-protected and fills would "
                "starve.  Increase the cache size or the tlb_scale."
            )
        self.engine = self._engine_class(
            capacity_pages=config.cache_pages,
            cache_config=config.dram_cache,
            core_config=config.core,
            num_cores=config.num_cores,
            in_package=self.in_package,
            off_package=self.off_package,
            # The GIPT lives past the end of workload-usable physical
            # memory; only at TLB misses/evictions is it touched.
            gipt_base_page=config.off_package_pages,
            on_page_evicted=self._invalidate_ondie_page,
        )
        self.ctlbs: List[CacheMapTLB] = [
            CacheMapTLB(hierarchy) for hierarchy in self.tlbs
        ]
        self.handlers: List[CTLBMissHandler] = [
            CTLBMissHandler(
                core_id=core_id,
                ctlb=self.ctlbs[core_id],
                engine=self.engine,
                walker=self.walker,
                core_config=config.core,
            )
            for core_id in range(config.num_cores)
        ]
        self.nc_accesses = 0
        self.cache_accesses = 0
        #: Optional pluggable caching policy (None = always cache).
        self.caching_policy = None

    # ------------------------------------------------------------------
    # cTLB wiring
    # ------------------------------------------------------------------
    def _make_tlb_hierarchy(self, core_id: int, tlb_cfg) -> TLBHierarchy:
        def on_evict(virtual_page: int, entry: TLBEntry) -> None:
            # A cache-mapped page left this core's TLB reach: clear its
            # residence bit so the replacement logic may evict it.
            if self.engine is not None and not entry.non_cacheable:
                self.engine.gipt.clear_resident(entry.target_page, core_id)

        return TLBHierarchy(
            tlb_cfg.l1_entries, tlb_cfg.l2_entries, on_l2_evict=on_evict
        )

    def _refill_tlb(
        self,
        core_id: int,
        table: PageTable,
        virtual_page: int,
        now_ns: float,
        line_index: int = 0,
    ):
        cycles, outcome = self.handlers[core_id].handle(
            table, virtual_page, now_ns, first_line=line_index
        )
        entry = self.tlbs[core_id].l1.peek(virtual_page)
        if entry is None:
            raise SimulationError(
                f"cTLB miss handler did not install VA page {virtual_page:#x}"
            )
        self.trace_event("ctlb", "miss_fill", now_ns,
                         cycles * self._cycle_time_ns, core_id,
                         {"outcome": outcome.value})
        return cycles, entry

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def _line_key(self, entry: TLBEntry, line_index: int) -> int:
        base = entry.target_page * LINES_PER_PAGE + line_index
        if entry.non_cacheable:
            # NC pages keep physical-address tags in the on-die caches
            # (they bypass only the DRAM cache, Section 3.5).
            return PA_NAMESPACE_OFFSET + base
        return base

    def _service_l2_miss(
        self,
        core_id: int,
        entry: TLBEntry,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        if entry.non_cacheable:
            self.nc_accesses += 1
            latency_ns = self.off_package.access_block(
                now_ns, entry.target_page, is_write
            )
            return self.core_cfg.cycles_from_ns(latency_ns)

        cache_page = entry.target_page
        engine = self.engine
        # One GIPT probe serves both the invariant check and the
        # bookkeeping below (engine.note_access inlined).
        gipt_entry = engine.gipt._entries.get(cache_page)
        if gipt_entry is None:
            raise SimulationError(
                f"cTLB maps VA page {virtual_page:#x} to CA "
                f"{cache_page:#x} which holds no page -- the 'TLB hit "
                "implies cache hit' invariant is broken"
            )
        self.cache_accesses += 1
        engine.victims.on_touch(cache_page)
        gipt_entry.touched_mask |= 1 << line_index
        if is_write:
            gipt_entry.dirty = True
        if engine.footprint is not None:
            # Footprint caching only: a block the predictor skipped is
            # fetched from off-package DRAM on demand.
            latency_ns = engine.ensure_line_fetched(
                cache_page, line_index, now_ns
            )
        else:
            latency_ns = 0.0
        # No tag check: the cache address is final.  One in-package access.
        latency_ns += self.in_package.access_block(now_ns, cache_page, is_write)
        return self.core_cfg.cycles_from_ns(latency_ns)

    def _writeback_line(self, line: int, now_ns: float) -> None:
        if line >= PA_NAMESPACE_OFFSET:
            page = (line - PA_NAMESPACE_OFFSET) // LINES_PER_PAGE
            self._async_block_write(self.off_package, page, now_ns)
            return
        cache_page = line // LINES_PER_PAGE
        self._async_block_write(self.in_package, cache_page, now_ns)
        gipt_entry = self.engine.gipt.lookup(cache_page)
        if gipt_entry is not None:
            gipt_entry.dirty = True

    def _invalidate_ondie_page(self, cache_page: int) -> None:
        """Recycled cache address: purge its lines from every core."""
        for hierarchy in self.ondie:
            hierarchy.invalidate_page(cache_page)

    # ------------------------------------------------------------------
    # Policy surface (Section 3.5)
    # ------------------------------------------------------------------
    def set_non_cacheable(
        self, process_id: int, virtual_page: int, value: bool = True
    ) -> None:
        """Flag a page NC before (or during) a run -- the mmap extension."""
        self.page_table(process_id).set_non_cacheable(virtual_page, value)
        self.trace_event("cache", "nc_pin", 0.0, None, 0,
                         {"process": process_id, "vpn": virtual_page,
                          "value": value})

    def set_caching_policy(self, policy) -> None:
        """Install a pluggable caching policy into every core's miss
        handler (Section 3.5's flexibility hook)."""
        self.caching_policy = policy
        for handler in self.handlers:
            handler.policy = policy

    # ------------------------------------------------------------------
    # Validation (repro.validate)
    # ------------------------------------------------------------------
    def register_invariants(self, checker) -> None:
        super().register_invariants(checker)
        checker.register("engine_accounting", self.engine.check_invariants)
        checker.register("alpha_reserve", self._check_alpha_reserve)
        checker.register("ctlb_residence", self._check_ctlb_residence)
        checker.register("ondie_keys_live", self._check_ondie_keys_live)
        checker.register("victim_tracker", self._check_victim_tracker)

    def _check_alpha_reserve(self) -> None:
        """Free pool >= alpha between accesses, and the eviction queue
        drained (the simulator's drain is state-eager)."""
        fq = self.engine.free_queue
        if fq.pending_evictions != 0:
            raise SimulationError(
                f"{fq.pending_evictions} evictions left undrained between "
                "accesses (eager-drain property broken)"
            )
        if fq.free_blocks < fq.alpha and not self.engine._alpha_deficit_ever:
            raise SimulationError(
                f"free pool holds {fq.free_blocks} < alpha={fq.alpha} "
                "blocks with no recorded alpha deficit"
            )

    def _check_ctlb_residence(self) -> None:
        """Every cTLB translation's cache page is live in the engine with
        this core's GIPT residence bit set -- the paper's "TLB hit
        implies cache hit" guarantee."""
        gipt = self.engine.gipt
        for core_id, tlb in enumerate(self.tlbs):
            for virtual_page, entry in tlb.l2._map.items():
                if entry.non_cacheable:
                    continue
                gipt_entry = gipt.lookup(entry.target_page)
                if gipt_entry is None:
                    raise SimulationError(
                        f"core {core_id} cTLB maps VA {virtual_page:#x} to "
                        f"CA {entry.target_page:#x} which holds no page"
                    )
                if not (gipt_entry.residence_mask >> core_id) & 1:
                    raise SimulationError(
                        f"core {core_id} cTLB maps VA {virtual_page:#x} to "
                        f"CA {entry.target_page:#x} but its GIPT residence "
                        f"bit is clear (mask={gipt_entry.residence_mask:#x})"
                    )

    def _check_ondie_keys_live(self) -> None:
        """No on-die cache holds a line of a recycled cache address.

        CA-keyed lines (below the PA namespace) must belong to pages the
        engine currently maps; anything else means eviction forgot to
        invalidate the on-die hierarchies.  Iterates the (small) on-die
        caches, not the cache's page space.
        """
        live = self.engine.gipt._entries
        for core_id, hierarchy in enumerate(self.ondie):
            for level_name, level in (("l1", hierarchy.l1),
                                      ("l2", hierarchy.l2)):
                for line_key in level:
                    if line_key >= PA_NAMESPACE_OFFSET:
                        continue  # NC line, PA-keyed: no cache page
                    cache_page = line_key // LINES_PER_PAGE
                    if cache_page not in live:
                        raise SimulationError(
                            f"core {core_id} on-die {level_name} holds "
                            f"line {line_key} of CA {cache_page:#x}, which "
                            "is not cached (recycled address not "
                            "invalidated)"
                        )

    def _check_victim_tracker(self) -> None:
        """The victim tracker's live set is exactly the cached pages."""
        tracked = set(self.engine.victims.tracked_pages())
        live = set(self.engine.gipt._entries)
        if tracked != live:
            missing = live - tracked
            stale = tracked - live
            raise SimulationError(
                f"victim tracker out of sync with GIPT: missing={missing} "
                f"stale={stale}"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        super().reset_stats()
        self.nc_accesses = 0
        self.cache_accesses = 0
        self.engine.reset_stats()
        if self.caching_policy is not None:
            # Policy decision counters feed the ``policy_`` stats keys;
            # warmup decisions must not leak into the measured window.
            self.caching_policy.reset_stats()
        for handler in self.handlers:
            handler.outcomes = {o: 0 for o in handler.outcomes}
            handler.cycles_total = 0.0
            handler.superpage_splits = 0
            handler.superpage_nc_pins = 0
        # The simulation clock restarts at zero after a warmup phase;
        # fill-completion timestamps from warmup would otherwise read as
        # fills still in flight and trigger bogus PU busy-waits.
        for table in self._page_tables.values():
            for pte in table._entries.values():
                pte.pending_until_ns = 0.0
                pte.pending_update = False

    def timeseries_probe(self):
        counters, gauges = super().timeseries_probe()
        counters["l3_hits"] = float(self.cache_accesses)
        counters["l3_refs"] = float(self.cache_accesses + self.nc_accesses)
        engine = self.engine
        counters["fills"] = float(engine.fills)
        counters["writebacks"] = float(engine.writebacks)
        counters["evictions"] = float(engine.free_queue.evictions_completed)
        free_queue = engine.free_queue
        gauges["free_queue_depth"] = float(free_queue.free_blocks)
        gauges["free_queue_alpha"] = float(free_queue.alpha)
        gauges["gipt_occupancy"] = engine.occupancy()
        return counters, gauges

    def hit_rate(self) -> float:
        """DRAM-cache hit fraction among L3-bound accesses."""
        total = self.cache_accesses + self.nc_accesses
        if total == 0:
            return 0.0
        return self.cache_accesses / total

    def stats(self) -> dict:
        out = super().stats()
        out["nc_accesses"] = float(self.nc_accesses)
        out["cache_accesses"] = float(self.cache_accesses)
        out.update(self.engine.stats("engine_"))
        for handler in self.handlers:
            out.update(handler.stats(f"core{handler.core_id}_handler_"))
        if self.caching_policy is not None:
            out.update(self.caching_policy.stats("policy_"))
        return out
