"""The SRAM-tag page-based DRAM cache baseline (Figure 1, Section 2.2).

A 16-way set-associative, LRU, 4 KB-page cache whose tags live in on-die
SRAM (Table 6: 4 MB and 11 cycles for a 1 GB cache).  Every L3 access --
hit or miss -- serialises through the tag probe, and the probe burns SRAM
dynamic energy while the array leaks continuously: exactly the overheads
Equation 3 attributes to ``AccessTime_SRAM-tag`` and that the tagless
design deletes.

On a miss the whole page is fetched from off-package DRAM (page-based
caching); the displaced page is written back if dirty.  Unlike the
tagless design, the fill is on the *demand* path of the missing access
(Equation 3's ``MissRate_L3 * PageAccessTime_off-pkg`` term).
"""

from __future__ import annotations

from repro.common.addressing import LINES_PER_PAGE
from repro.common.config import SystemConfig
from repro.designs.base import MemorySystemDesign
from repro.sram.tag_array import SRAMTagArray
from repro.vm.tlb import TLBEntry


class SRAMTagDesign(MemorySystemDesign):
    """Page-based DRAM cache with on-die SRAM tags and LRU replacement."""

    name = "sram"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.tags = SRAMTagArray(
            capacity_pages=config.cache_pages,
            config=config.sram_tag,
            policy="lru",
        )
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _service_l2_miss(
        self,
        core_id: int,
        entry: TLBEntry,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        physical_page = entry.target_page
        # The tag probe gates every L3 access, hit or miss (Section 2.2).
        cycles = float(self.tags.access_cycles)

        cache_page = self.tags.lookup(physical_page, is_write)
        if cache_page is not None:
            self.hits += 1
            latency_ns = self.in_package.access_block(
                now_ns, cache_page, is_write
            )
            return cycles + self.core_cfg.cycles_from_ns(latency_ns)

        self.misses += 1
        cache_page, eviction = self.tags.insert(physical_page, dirty=is_write)
        if eviction is not None and eviction.dirty:
            # Victim drains in the background: read it out of the cache,
            # write it home.  Bus time + energy, no demand latency.
            self.in_package.stream_page(
                now_ns, eviction.cache_page, is_write=False, asynchronous=True
            )
            self.off_package.stream_page(
                now_ns, eviction.physical_page, is_write=True, asynchronous=True
            )
            self.writebacks += 1

        # Demand fill: stream the 4 KB page from off-package DRAM,
        # critical block first (the missing 64 B unblocks the core; the
        # rest of the page streams behind it).
        fill_ns = self.off_package.fill_page(now_ns, physical_page)
        self.in_package.stream_page(
            now_ns, cache_page, is_write=True, asynchronous=True
        )
        return cycles + self.core_cfg.cycles_from_ns(fill_ns)

    def _writeback_line(self, line: int, now_ns: float) -> None:
        """Dirty on-die victims land in the DRAM cache when the page is
        cached (marking it dirty), else go straight home."""
        page = line // LINES_PER_PAGE
        if self.tags.contains(page):
            cache_page = self.tags.lookup(page, is_write=True)
            # lookup() counted a probe; that is faithful -- the write-back
            # must locate the page in the cache too.
            self._async_block_write(self.in_package, cache_page, now_ns)
        else:
            self._async_block_write(self.off_package, page, now_ns)

    # ------------------------------------------------------------------
    # Energy hooks
    # ------------------------------------------------------------------
    def leakage_watts(self) -> float:
        """The tag SRAM leaks as long as the machine is on."""
        return self.tags.leakage_watts

    def probe_energy_nj(self) -> float:
        """Dynamic energy burned by tag probes so far."""
        return self.tags.probes * self.tags.probe_nj

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def register_invariants(self, checker) -> None:
        super().register_invariants(checker)
        checker.register("tag_array", self.tags.check_consistency)

    def reset_stats(self) -> None:
        super().reset_stats()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.tags.reset_stats()

    def timeseries_probe(self):
        counters, gauges = super().timeseries_probe()
        counters["l3_hits"] = float(self.hits)
        counters["l3_refs"] = float(self.hits + self.misses)
        counters["writebacks"] = float(self.writebacks)
        return counters, gauges

    def stats(self) -> dict:
        out = super().stats()
        out["l3_hits"] = float(self.hits)
        out["l3_misses"] = float(self.misses)
        out["l3_writebacks"] = float(self.writebacks)
        out.update(self.tags.stats("tags_"))
        return out
