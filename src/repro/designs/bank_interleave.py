"""The bank-interleaving (BI) heterogeneous-memory design.

The in-package DRAM is mapped into the physical address space alongside
the off-package DRAM, and the OS allocates frames with no awareness of
the heterogeneity (Section 4, "Bank-interleaving").  A fixed slice of the
physical page space is in-package; the frame allocator's scattered
assignment means roughly ``cache_size / total_size`` of any footprint
lands there -- about 1/9 for the default 1 GB + 8 GB machine, which is
why BI improves IPC only modestly.
"""

from __future__ import annotations

from repro.common.addressing import LINES_PER_PAGE
from repro.common.config import SystemConfig
from repro.designs.base import MemorySystemDesign
from repro.vm.tlb import TLBEntry


class BankInterleavingDesign(MemorySystemDesign):
    """OS-oblivious heterogeneous main memory (no caching, no migration)."""

    name = "bi"

    def __init__(self, config: SystemConfig):
        # In-package pages occupy the bottom of the physical space; the
        # allocator's strided scatter spreads every process across both
        # regions in proportion to their sizes.
        self.in_package_pages = config.cache_pages
        super().__init__(config)
        self.in_package_hits = 0

    def _physical_pages(self) -> int:
        return self.config.off_package_pages + self.config.cache_pages

    def is_in_package(self, physical_page: int) -> bool:
        """Placement test: which device does this frame live on?"""
        return physical_page < self.in_package_pages

    def _service_l2_miss(
        self,
        core_id: int,
        entry: TLBEntry,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        page = entry.target_page
        if self.is_in_package(page):
            self.in_package_hits += 1
            latency_ns = self.in_package.access_block(now_ns, page, is_write)
        else:
            latency_ns = self.off_package.access_block(
                now_ns, page - self.in_package_pages, is_write
            )
        return self.core_cfg.cycles_from_ns(latency_ns)

    def _writeback_line(self, line: int, now_ns: float) -> None:
        page = line // LINES_PER_PAGE
        if self.is_in_package(page):
            self._async_block_write(self.in_package, page, now_ns)
        else:
            self._async_block_write(
                self.off_package, page - self.in_package_pages, now_ns
            )

    def reset_stats(self) -> None:
        super().reset_stats()
        self.in_package_hits = 0

    def timeseries_probe(self):
        counters, gauges = super().timeseries_probe()
        counters["l3_hits"] = float(self.in_package_hits)
        return counters, gauges

    def stats(self) -> dict:
        out = super().stats()
        out["in_package_hits"] = float(self.in_package_hits)
        return out
