"""The Ideal upper bound: all data already lives in in-package DRAM.

No fills, no tags, no capacity limit -- every on-die miss is served at
in-package latency and bandwidth.  Section 5.1 uses this point to bound
how much headroom remains above the tagless cache.
"""

from __future__ import annotations

from repro.designs.base import MemorySystemDesign
from repro.vm.tlb import TLBEntry


class IdealDesign(MemorySystemDesign):
    """Everything in package, irrespective of capacity (Section 4)."""

    name = "ideal"

    def _service_l2_miss(
        self,
        core_id: int,
        entry: TLBEntry,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        latency_ns = self.in_package.access_block(
            now_ns, entry.target_page, is_write
        )
        return self.core_cfg.cycles_from_ns(latency_ns)

    def _writeback_line(self, line: int, now_ns: float) -> None:
        from repro.common.addressing import LINES_PER_PAGE

        self._async_block_write(self.in_package, line // LINES_PER_PAGE, now_ns)

    def timeseries_probe(self):
        counters, gauges = super().timeseries_probe()
        # Every L3-bound access is served in package, by construction.
        counters["l3_hits"] = float(self.l3_accesses)
        return counters, gauges
