"""The No-L3 baseline: conventional off-package DDR3 memory only.

Every on-die L2 miss pays a 64 B off-package block access.  All of the
paper's IPC/EDP figures are normalised to this configuration.
"""

from __future__ import annotations

from repro.designs.base import MemorySystemDesign
from repro.vm.tlb import TLBEntry


class NoL3Design(MemorySystemDesign):
    """Baseline with no DRAM cache at all (Section 4, "No L3")."""

    name = "no-l3"

    def _service_l2_miss(
        self,
        core_id: int,
        entry: TLBEntry,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        latency_ns = self.off_package.access_block(
            now_ns, entry.target_page, is_write
        )
        return self.core_cfg.cycles_from_ns(latency_ns)
