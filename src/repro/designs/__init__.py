"""The five memory-system organisations evaluated in Section 5.

Every design implements :class:`repro.designs.base.MemorySystemDesign`:
given a virtual-address access it returns the core-visible latency while
internally driving TLBs, on-die caches, DRAM devices and (where present)
the L3 structure.  The simulator and every benchmark interact with
designs only through this interface and the registry.

- ``no-l3``  -- conventional off-package memory, no DRAM cache (baseline);
- ``bi``     -- bank-interleaved heterogeneous memory, OS-oblivious;
- ``sram``   -- page-based DRAM cache with an on-die SRAM tag array;
- ``tagless``-- the paper's cTLB-based tagless cache;
- ``ideal``  -- all data magically in in-package DRAM (upper bound).
"""

from repro.designs.base import AccessCost, MemorySystemDesign
from repro.designs.bank_interleave import BankInterleavingDesign
from repro.designs.ideal import IdealDesign
from repro.designs.no_l3 import NoL3Design
from repro.designs.registry import (
    ALL_DESIGN_NAMES,
    DESIGN_NAMES,
    create_design,
)
from repro.designs.sram_tag import SRAMTagDesign
from repro.designs.tagless_design import TaglessDesign

__all__ = [
    "AccessCost",
    "MemorySystemDesign",
    "BankInterleavingDesign",
    "IdealDesign",
    "NoL3Design",
    "ALL_DESIGN_NAMES",
    "DESIGN_NAMES",
    "create_design",
    "SRAMTagDesign",
    "TaglessDesign",
]
