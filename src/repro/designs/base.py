"""Shared machinery for the evaluated memory-system designs.

A design owns everything below the core: per-core TLB hierarchies, per-core
on-die L1/L2 caches, per-process page tables, the two DRAM devices, and
whatever L3 structure it defines.  The single entry point is
:meth:`MemorySystemDesign.access`, which the simulator calls once per
memory reference with the core's current local time.

The base class implements the entire conventional access path -- TLB
probe, walk on miss, on-die hierarchy, write-back routing -- and exposes
two hooks for subclasses: :meth:`_refill_tlb` (what a TLB miss does) and
:meth:`_service_l2_miss` (where an on-die miss goes).  The tagless design
overrides both; the other designs override only the second.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.common.addressing import LINES_PER_PAGE
from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.dram.device import DRAMDevice
from repro.obs.events import null_event
from repro.sram.hierarchy import OnDieHierarchy
from repro.vm.page_table import PageTable, PhysicalFrameAllocator
from repro.vm.tlb import TLBEntry, TLBHierarchy
from repro.vm.walker import PageTableWalker

#: Key-space offset separating physical-address lines from cache-address
#: lines inside the on-die caches of the tagless design (whose L1/L2 are
#: tagged by cache address for cached pages but by physical address for
#: non-cacheable pages).
PA_NAMESPACE_OFFSET = 1 << 40


@dataclasses.dataclass(slots=True)
class AccessCost:
    """Core-visible outcome of one memory access.

    ``cycles`` is the full latency; ``l3_cycles`` is the portion counted
    by Figure 8 (everything after an on-die L2 miss, *including* the TLB
    penalty, per Section 5.1); ``l3_involved`` marks whether the access
    reached beyond the on-die caches at all.

    The simulation engine itself never allocates one of these: the hot
    path is :meth:`MemorySystemDesign.access_cycles`, which returns the
    bare latency and parks the remaining fields on the design.
    :meth:`MemorySystemDesign.access` is the allocating adapter kept for
    tests, tools and any caller that wants the full record.
    """

    cycles: float
    l3_cycles: float = 0.0
    l3_involved: bool = False
    tlb_level: str = "l1"
    ondie_level: str = "l1"


class MemorySystemDesign:
    """Base class: conventional translation + on-die caches + routing."""

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, config: SystemConfig):
        self.config = config
        self.core_cfg = config.core
        scaled_tlb = config.scaled_tlb

        self.in_package = DRAMDevice(config.in_package, config.in_package_energy)
        self.off_package = DRAMDevice(config.off_package, config.off_package_energy)

        self.allocator = PhysicalFrameAllocator(self._physical_pages())
        self._page_tables: Dict[int, PageTable] = {}

        self.walker = PageTableWalker(scaled_tlb, pte_backing=self.off_package)
        self.tlbs: List[TLBHierarchy] = [
            self._make_tlb_hierarchy(core_id, scaled_tlb)
            for core_id in range(config.num_cores)
        ]
        self.ondie: List[OnDieHierarchy] = [
            OnDieHierarchy(config.scaled_l1, config.scaled_l2)
            for _ in range(config.num_cores)
        ]

        # Figure 8 accounting.
        self.l3_accesses = 0
        self.l3_latency_cycles = 0.0
        self.accesses = 0

        # Side-channel fields of the most recent access_cycles() call,
        # read by the access() adapter when building an AccessCost.
        self._last_tlb_level = "l1"
        self._last_ondie_level = "l1"
        self._last_l3_cycles = 0.0
        self._last_l3_involved = False

        # Hoisted hot-path constant: config.scaled_tlb is a property
        # that rebuilds a TLBConfig (dataclasses.replace) on every read.
        self._tlb_l2_hit_cycles = float(scaled_tlb.l2_hit_cycles)

        # On-die hit latencies come from the cache configs themselves
        # (OnDieCacheConfig.hit_cycles is the single source of truth;
        # tests/common/test_config.py locks the absence of a duplicate
        # on CoreConfig).
        self._l1_hit_cycles = config.l1.hit_cycles
        self._l2_hit_cycles = config.l2.hit_cycles

        # Observability (repro.obs).  ``trace_event`` is a prebound
        # no-op that installed telemetry rebinds to an EventTracer --
        # the same enable/disable trick ``validate=`` uses -- and it is
        # only ever called on rare paths (TLB refills, evictions).
        self.trace_event = null_event
        self._cycle_time_ns = 1.0 / config.core.frequency_ghz

    # ------------------------------------------------------------------
    # Construction hooks
    # ------------------------------------------------------------------
    def _physical_pages(self) -> int:
        """Size of the physical page space the frame allocator covers."""
        return self.config.off_package_pages

    def _make_tlb_hierarchy(self, core_id: int, tlb_cfg) -> TLBHierarchy:
        return TLBHierarchy(tlb_cfg.l1_entries, tlb_cfg.l2_entries)

    # ------------------------------------------------------------------
    # Page tables
    # ------------------------------------------------------------------
    def page_table(self, process_id: int) -> PageTable:
        table = self._page_tables.get(process_id)
        if table is None:
            table = PageTable(self.allocator, process_id)
            self._page_tables[process_id] = table
        return table

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------
    def access_cycles(
        self,
        core_id: int,
        process_id: int,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        """Perform one memory reference; returns its latency in cycles.

        This is the engine's hot path: it is called once per simulated
        memory reference, so the L1-TLB-hit + on-die-L1-hit common case
        is a hand-inlined short circuit (two dict probes, no allocation,
        no further calls).  The full per-access record is available via
        the :meth:`access` adapter; here the non-latency fields land in
        ``_last_*`` attributes instead of a fresh ``AccessCost``.
        """
        if not (0 <= line_index < LINES_PER_PAGE):
            raise SimulationError(f"line index {line_index} out of page")
        self.accesses += 1
        tlb = self.tlbs[core_id]

        # --- Translation.  Inlined L1 TLB probe (TLB.lookup hit branch
        # plus TLBHierarchy.lookup's L2 recency sync, verbatim).
        l1_tlb = tlb.l1
        l1_map = l1_tlb._map
        entry = l1_map.get(virtual_page)
        if entry is not None:
            l1_tlb.hits += 1
            l1_map[virtual_page] = l1_map.pop(virtual_page)
            tlb.l1_hits += 1
            l2_map = tlb.l2._map
            if virtual_page in l2_map:
                l2_map[virtual_page] = l2_map.pop(virtual_page)
            tlb_level = "l1"
            tlb_cycles = 0.0
        else:
            l1_tlb.misses += 1
            # Inlined TLBHierarchy.lookup_after_l1_miss: L2 probe, and
            # on a hit the promotion into L1 (TLB.insert, verbatim).
            l2_tlb = tlb.l2
            l2_map = l2_tlb._map
            entry = l2_map.get(virtual_page)
            if entry is not None:
                l2_tlb.hits += 1
                l2_map[virtual_page] = l2_map.pop(virtual_page)
                tlb.l2_hits += 1
                if virtual_page in l1_map:
                    del l1_map[virtual_page]
                elif len(l1_map) >= l1_tlb.capacity:
                    del l1_map[next(iter(l1_map))]
                l1_map[virtual_page] = entry
                tlb_level = "l2"
                tlb_cycles = self._tlb_l2_hit_cycles
            else:
                l2_tlb.misses += 1
                tlb.misses += 1
                tlb_level = "miss"
                table = self.page_table(process_id)
                tlb_cycles, entry = self._refill_tlb(
                    core_id, table, virtual_page, now_ns, line_index
                )

        # --- On-die lookup.  The inline key computation matches
        # _line_key for every design when the NC bit is clear (the
        # subclass override only diverges for non-cacheable pages).
        if entry.non_cacheable:
            line_key = self._line_key(entry, line_index)
        else:
            line_key = entry.target_page * LINES_PER_PAGE + line_index

        # Inlined on-die L1 probe (SetAssociativeCache.lookup hit branch
        # for the fused-LRU sets the L1 always uses).
        ondie = self.ondie[core_id]
        l1 = ondie.l1
        l1_set = l1._sets[line_key % l1.num_sets]
        entries = l1_set.entries
        if line_key in entries:
            l1.hits += 1
            entries[line_key] = entries.pop(line_key) or is_write
            ondie.l1_hits += 1
            self._last_tlb_level = tlb_level
            self._last_ondie_level = "l1"
            self._last_l3_cycles = 0.0
            self._last_l3_involved = False
            return tlb_cycles + self._l1_hit_cycles

        # Inlined OnDieHierarchy.access_after_l1_miss and
        # _after_l1_probe_missed: book the L1 miss, probe the fused-LRU
        # L2, fill L1 and drain dirty spills -- same operations in the
        # same order as hierarchy.py (``entries`` above is already the
        # L1 set the fill lands in).
        l1.misses += 1
        writebacks = ondie.pending_writebacks
        writebacks.clear()
        ondie_l2 = ondie.l2
        l2_set = ondie_l2._sets[line_key % ondie_l2.num_sets]
        l2_entries = l2_set.entries
        if line_key in l2_entries:
            ondie_l2.hits += 1
            l2_entries[line_key] = l2_entries.pop(line_key) or is_write
            ondie.l2_hits += 1
            ondie_level = "l2"
        else:
            ondie_l2.misses += 1
            ondie.misses += 1
            if len(l2_entries) >= l2_set.ways:
                victim = next(iter(l2_entries))
                if l2_entries.pop(victim):
                    writebacks.append(victim)
                    ondie.writebacks += 1
            l2_entries[line_key] = False
            ondie_level = "miss"
        # Fill L1 (the line just missed it, so it is not resident).
        if len(entries) >= l1_set.ways:
            victim = next(iter(entries))
            if entries.pop(victim):
                # Dirty L1 victim drains into L2; a dirty line L2 must
                # evict to make room continues toward memory.
                spill_set = ondie_l2._sets[victim % ondie_l2.num_sets]
                spill_entries = spill_set.entries
                if victim in spill_entries:
                    spill_entries[victim] = True
                else:
                    if len(spill_entries) >= spill_set.ways:
                        spilled = next(iter(spill_entries))
                        if spill_entries.pop(spilled):
                            writebacks.append(spilled)
                            ondie.writebacks += 1
                    spill_entries[victim] = True
        entries[line_key] = is_write
        if writebacks:
            self._route_writebacks(writebacks, now_ns)

        cycles = tlb_cycles
        l3_cycles = 0.0
        l3_involved = False
        if ondie_level == "l2":
            cycles += self._l2_hit_cycles
        else:
            l3_involved = True
            # All memory-system requests are issued at the core's issue
            # time.  Adding partial latencies here would make timestamps
            # run ahead of the MLP-overlapped core clock and manufacture
            # phantom queueing between an access and its own successor.
            l3_only = self._service_l2_miss(
                core_id, entry, virtual_page, line_index, is_write, now_ns
            )
            cycles += l3_only
            l3_cycles = tlb_cycles + l3_only
            self.l3_accesses += 1
            self.l3_latency_cycles += l3_cycles

        self._last_tlb_level = tlb_level
        self._last_ondie_level = ondie_level
        self._last_l3_cycles = l3_cycles
        self._last_l3_involved = l3_involved
        return cycles

    def access(
        self,
        core_id: int,
        process_id: int,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> AccessCost:
        """Perform one memory reference and return its full cost record.

        Allocating adapter over :meth:`access_cycles` -- behaviourally
        identical, kept for tests and callers that inspect the levels.
        """
        cycles = self.access_cycles(
            core_id, process_id, virtual_page, line_index, is_write, now_ns
        )
        return AccessCost(
            cycles=cycles,
            l3_cycles=self._last_l3_cycles,
            l3_involved=self._last_l3_involved,
            tlb_level=self._last_tlb_level,
            ondie_level=self._last_ondie_level,
        )

    # ------------------------------------------------------------------
    # Hooks implemented by concrete designs
    # ------------------------------------------------------------------
    def _refill_tlb(
        self,
        core_id: int,
        table: PageTable,
        virtual_page: int,
        now_ns: float,
        line_index: int = 0,
    ):
        """Conventional TLB miss: walk and install a VA->PA mapping.

        Returns (cycles, installed_entry).  ``line_index`` identifies
        the block whose access triggered the miss; the conventional
        handler ignores it, the cTLB handler feeds it to the footprint
        predictor.
        """
        pte, cycles = self.walker.walk(table, virtual_page, now_ns)
        target = pte.physical_page
        if pte.is_superpage:
            # Inside a superpage the walk returns the base PTE; the
            # page's frame is base + offset into the contiguous run.
            target += virtual_page - pte.virtual_page
        entry = TLBEntry(target_page=target, non_cacheable=False)
        self.tlbs[core_id].install(virtual_page, entry)
        self.trace_event("tlb", "walk_fill", now_ns,
                         cycles * self._cycle_time_ns, core_id)
        return cycles, entry

    def _line_key(self, entry: TLBEntry, line_index: int) -> int:
        """On-die cache key for this access (PA-space by default)."""
        return entry.target_page * LINES_PER_PAGE + line_index

    def _service_l2_miss(
        self,
        core_id: int,
        entry: TLBEntry,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        """Service an on-die miss; returns latency in core cycles."""
        raise NotImplementedError

    def _route_writebacks(self, writebacks: List[int], now_ns: float) -> None:
        """Send dirty on-die L2 victims toward memory (asynchronously)."""
        for line in writebacks:
            self._writeback_line(line, now_ns)

    def _writeback_line(self, line: int, now_ns: float) -> None:
        """Default: dirty lines go home to off-package physical memory."""
        self._async_block_write(self.off_package, line // LINES_PER_PAGE, now_ns)

    @staticmethod
    def _async_block_write(device: DRAMDevice, page: int, now_ns: float) -> None:
        """A 64 B write nobody waits on: bus time + energy, no latency."""
        device.energy.charge(64, 0, is_write=True)
        channel = device.channels.channel_of_page(page)
        device.channels.occupy_background(
            channel, now_ns, device.timing.transfer_ns(64)
        )

    # ------------------------------------------------------------------
    # Batched engine (repro.cpu.batched)
    # ------------------------------------------------------------------
    def run_batched(self, bindings, max_accesses=None):
        """Replay ``bindings`` through the fused v2 kernels.

        Bit-identical to :func:`repro.cpu.multicore.run_interleaved`
        (the golden-stats oracle runs under both engines); several
        times faster when the run is unobserved.  Returns the per-core
        results.
        """
        from repro.cpu.batched import run_interleaved_batched

        return run_interleaved_batched(self, bindings, max_accesses)

    # ------------------------------------------------------------------
    # Validation (repro.validate)
    # ------------------------------------------------------------------
    def register_invariants(self, checker) -> None:
        """Register this design's structural invariants with ``checker``
        (an :class:`repro.validate.invariants.InvariantChecker`).

        The base class covers what every design shares -- TLB inclusion
        and on-die cache consistency; subclasses extend this with their
        own structures.  Registered checks must be strictly read-only.
        """
        from repro.validate.invariants import check_tlb_hierarchy

        for core_id, tlb in enumerate(self.tlbs):
            checker.register(
                f"core{core_id}_tlb_inclusion",
                lambda tlb=tlb, core_id=core_id: check_tlb_hierarchy(
                    tlb, f"core{core_id}"
                ),
            )
        for core_id, hierarchy in enumerate(self.ondie):
            checker.register(
                f"core{core_id}_ondie_l1", hierarchy.l1.check_consistency
            )
            checker.register(
                f"core{core_id}_ondie_l2", hierarchy.l2.check_consistency
            )

    # ------------------------------------------------------------------
    # Warmup support
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero every counter while keeping all cached state warm.

        Called at the warmup/measurement boundary.  Subclasses with
        extra counters extend this.
        """
        self.accesses = 0
        self.l3_accesses = 0
        self.l3_latency_cycles = 0.0
        self.walker.reset_stats()
        for tlb in self.tlbs:
            tlb.reset_stats()
        for hierarchy in self.ondie:
            hierarchy.reset_stats()
        self.in_package.reset_stats()
        self.off_package.reset_stats()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def mean_l3_latency_cycles(self) -> float:
        """Figure 8's metric: average latency after an on-die L2 miss."""
        if self.l3_accesses == 0:
            return 0.0
        return self.l3_latency_cycles / self.l3_accesses

    def leakage_watts(self) -> float:
        """Design-specific static power (e.g. the SRAM tag array)."""
        return 0.0

    def probe_energy_nj(self) -> float:
        """Design-specific dynamic energy outside the DRAM devices."""
        return 0.0

    def timeseries_probe(self):
        """Cumulative counters + instantaneous gauges for repro.obs.

        Returns ``(counters, gauges)``.  Counters are monotone within a
        measured window; the timeseries recorder differences successive
        snapshots, so this is called once per sampling window -- never
        on the per-access path.  Subclasses overlay their own counters
        (and real gauge values) on the base dict; the gauge keys exist
        here for every design so artifacts share one column schema.
        """
        tlb_hits = 0
        tlb_refs = 0
        for tlb in self.tlbs:
            hits = tlb.l1_hits + tlb.l2_hits
            tlb_hits += hits
            tlb_refs += hits + tlb.misses
        in_pkg = self.in_package
        off_pkg = self.off_package
        banks = in_pkg.banks
        row_hits = float(banks.row_hits)
        counters = {
            "accesses": float(self.accesses),
            "l3_accesses": float(self.l3_accesses),
            "tlb_hits": float(tlb_hits),
            "tlb_refs": float(tlb_refs),
            # In-package service fraction of L3-bound accesses; designs
            # with an actual cache structure overlay their own counters.
            "l3_hits": 0.0,
            "l3_refs": float(self.l3_accesses),
            "inpkg_bytes": float(
                in_pkg.energy.read_bytes + in_pkg.energy.write_bytes
            ),
            "offpkg_bytes": float(
                off_pkg.energy.read_bytes + off_pkg.energy.write_bytes
            ),
            "inpkg_busy_ns": (in_pkg.channels.demand_busy_ns
                              + in_pkg.channels.background_busy_ns),
            "offpkg_busy_ns": (off_pkg.channels.demand_busy_ns
                               + off_pkg.channels.background_busy_ns),
            "row_hits": row_hits,
            "row_refs": row_hits + banks.row_misses + banks.row_empties,
            "offpkg_demand": float(off_pkg.demand_accesses),
        }
        gauges = {
            "free_queue_depth": 0.0,
            "free_queue_alpha": 0.0,
            "gipt_occupancy": 0.0,
        }
        return counters, gauges

    def stats(self) -> dict:
        out = {
            "accesses": float(self.accesses),
            "l3_accesses": float(self.l3_accesses),
            "l3_latency_cycles": self.l3_latency_cycles,
        }
        for core_id, tlb in enumerate(self.tlbs):
            out.update(tlb.stats(f"core{core_id}_tlb_"))
        for core_id, hierarchy in enumerate(self.ondie):
            out.update(hierarchy.stats(f"core{core_id}_ondie_"))
        out.update(self.in_package.stats("inpkg_"))
        out.update(self.off_package.stats("offpkg_"))
        out.update(self.walker.stats("walker_"))
        return out
