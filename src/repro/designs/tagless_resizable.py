"""Runtime-resizable tagless DRAM cache (consistent-hashing-style churn
bounds on top of the paper's design).

The tagless cache's capacity is normally fixed at construction.  This
variant adds a **capacity schedule**: at configured access counts the
cache shrinks (power-gates its upper address region) or grows (returns
gated blocks to service).  The mechanism follows the structures the
paper already has:

- shrinking first *drains the free queue* of blocks in the doomed
  region (pure bookkeeping: a free block holds no data);
- displaced **live** pages are *remapped* -- migrated to a surviving
  free block with their GIPT entry, PTE, dirtiness and footprint masks
  intact -- under a per-event churn budget (``max_remap_per_resize``),
  the bounded-remapping idea of consistent-hashing DRAM caches; the
  budget's overflow is *evicted* through the ordinary asynchronous
  eviction path instead;
- every displaced page gets a guarded **cTLB shootdown** first, so no
  core retains a stale "TLB hit => cache hit" translation into the
  gated region;
- growing simply un-gates blocks back into the free pool, lowest
  address first (the header pointer's natural order).

The engine's structural invariant generalises to ``live + free +
pending + gated == capacity`` with the gated set exactly the powered-off
upper region, so ``repro check`` holds mid-schedule.  The fused batched
kernels stand down for this design (``batchable = False``): they bypass
the scalar access path that triggers resize events.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.core.footprint import mask_bytes
from repro.core.free_queue import FreeQueue
from repro.core.tagless_cache import TaglessCacheEngine
from repro.designs.tagless_design import TaglessDesign


class GatedFreeQueue(FreeQueue):
    """Free queue aware of a power-gated upper address region.

    ``active_capacity`` splits the cache address space: pages at or
    above it are out of service.  A block evicted while its address is
    gated (a displaced page leaving through the normal eviction path
    mid-shrink) is routed into the gated set instead of the free pool,
    so it can never be re-allocated until the cache grows again.
    """

    def __init__(self, capacity_pages: int, alpha: int = 1):
        super().__init__(capacity_pages, alpha=alpha)
        self.active_capacity = capacity_pages
        self.gated: set = set()

    def mark_free(self, cache_page: int) -> None:
        """Return an evicted block: to the pool, or to the gated set."""
        if not (0 <= cache_page < self.capacity_pages):
            raise SimulationError(
                f"freeing CA {cache_page:#x} outside the cache"
            )
        if cache_page >= self.active_capacity:
            self.gated.add(cache_page)
        else:
            self._free.append(cache_page)
        self.evictions_completed += 1

    def gate_page(self, cache_page: int) -> None:
        """Move one (already vacated) block straight into the gated set."""
        if not (0 <= cache_page < self.capacity_pages):
            raise SimulationError(
                f"gating CA {cache_page:#x} outside the cache"
            )
        self.gated.add(cache_page)

    def gate_free_region(self, new_capacity: int) -> int:
        """Pull every free block >= ``new_capacity`` out of the pool."""
        survivors = [p for p in self._free if p < new_capacity]
        doomed = [p for p in self._free if p >= new_capacity]
        self._free.clear()
        self._free.extend(survivors)
        self.gated.update(doomed)
        return len(doomed)

    def ungate_to(self, new_capacity: int) -> int:
        """Return gated blocks below ``new_capacity`` to the free pool,
        lowest address first (the header pointer's walk order)."""
        restored = sorted(p for p in self.gated if p < new_capacity)
        for page in restored:
            self.gated.discard(page)
            self._free.append(page)
        return len(restored)


class ResizableTaglessEngine(TaglessCacheEngine):
    """Tagless engine whose free queue understands power gating."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Swap in the gated queue before any allocation happens; the
        # base queue carries no state yet at this point.
        self.free_queue = GatedFreeQueue(
            self.capacity_pages, alpha=self.cache_config.alpha
        )

    @property
    def active_capacity(self) -> int:
        return self.free_queue.active_capacity

    def gated_pages(self) -> tuple:
        return tuple(sorted(self.free_queue.gated))

    def occupancy(self) -> float:
        """Occupancy of the *active* region (the serviceable cache)."""
        active = self.free_queue.active_capacity
        if active == 0:
            return 0.0
        return len(self.gipt) / active


class TaglessResizableDesign(TaglessDesign):
    """Tagless cache with a runtime capacity schedule."""

    name = "tagless-resizable"
    _engine_class = ResizableTaglessEngine
    #: The resize trigger lives in the scalar ``access_cycles`` override;
    #: fused kernels would silently skip it.
    batchable = False

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        #: Resolved (at_access, capacity_pages) events, sorted; armed
        #: via :meth:`set_resize_schedule`.
        self._resize_events: List[Tuple[int, int]] = []
        self._next_resize = 0
        self._max_remap = 0
        #: Lifetime access clock -- deliberately never reset, so events
        #: fire at absolute positions in the run even across the
        #: warmup/measure boundary.
        self._resize_clock = 0
        self.resize_events = 0
        self.resize_remapped_pages = 0
        self.resize_evicted_pages = 0
        self.resize_shootdowns = 0
        #: Per-event churn ledger (dicts); the bounded-churn invariant
        #: and the CLI's per-event table read it.
        self.resize_log: List[dict] = []

    # ------------------------------------------------------------------
    # Schedule arming
    # ------------------------------------------------------------------
    def min_capacity_pages(self) -> int:
        """Smallest legal active capacity: the cache must stay larger
        than total TLB reach (else fills starve on eviction-protected
        pages) and than the alpha reserve."""
        tlb_reach = self.config.num_cores * self.config.scaled_tlb.l2_entries
        return max(tlb_reach, self.engine.free_queue.alpha) + 1

    def set_resize_schedule(
        self,
        events: Sequence[Tuple[int, float]],
        max_remap_per_resize: int = 64,
    ) -> None:
        """Arm a capacity schedule: ``(at_access, capacity)`` pairs.

        ``capacity`` <= 1.0 is a fraction of the built capacity;
        anything larger is an absolute page count.  Capacities must stay
        within ``(min_capacity_pages(), capacity_pages]``.
        """
        if max_remap_per_resize < 0:
            raise ConfigurationError("max_remap_per_resize must be >= 0")
        capacity = self.engine.capacity_pages
        floor = self.min_capacity_pages()
        resolved: List[Tuple[int, int]] = []
        for at_access, target in events:
            at_access = int(at_access)
            if at_access < 1:
                raise ConfigurationError("resize at_access must be >= 1")
            pages = (int(round(capacity * float(target)))
                     if float(target) <= 1.0 else int(target))
            if pages > capacity:
                raise ConfigurationError(
                    f"resize target {pages} pages exceeds the built "
                    f"capacity of {capacity} pages"
                )
            if pages < floor:
                raise ConfigurationError(
                    f"resize target {pages} pages is below the minimum "
                    f"active capacity ({floor} pages: total TLB reach "
                    "and the alpha reserve must stay covered)"
                )
            resolved.append((at_access, pages))
        self._resize_events = sorted(resolved)
        self._next_resize = 0
        self._max_remap = max_remap_per_resize

    # ------------------------------------------------------------------
    # Access path: the resize trigger
    # ------------------------------------------------------------------
    def access_cycles(
        self,
        core_id: int,
        process_id: int,
        virtual_page: int,
        line_index: int,
        is_write: bool,
        now_ns: float,
    ) -> float:
        clock = self._resize_clock + 1
        self._resize_clock = clock
        index = self._next_resize
        events = self._resize_events
        while index < len(events) and clock >= events[index][0]:
            self._apply_resize(events[index][1], now_ns)
            index += 1
        self._next_resize = index
        return super().access_cycles(
            core_id, process_id, virtual_page, line_index, is_write, now_ns
        )

    # ------------------------------------------------------------------
    # The resize state machine
    # ------------------------------------------------------------------
    def _apply_resize(self, new_capacity: int, now_ns: float) -> None:
        engine = self.engine
        fq = engine.free_queue
        old_capacity = fq.active_capacity
        event = {
            "at_access": self._resize_clock,
            "from_pages": old_capacity,
            "to_pages": new_capacity,
            "remapped": 0,
            "evicted": 0,
            "shootdowns": 0,
            "room_evictions": 0,
            "gated_free": 0,
            "ungated": 0,
            "max_remap": self._max_remap,
        }
        self.resize_events += 1
        if new_capacity > old_capacity:
            event["ungated"] = fq.ungate_to(new_capacity)
            fq.active_capacity = new_capacity
        elif new_capacity < old_capacity:
            self._shrink_to(new_capacity, now_ns, event)
        self.resize_log.append(event)
        self.trace_event("cache", "resize", now_ns, None, 0, dict(event))

    def _shrink_to(self, new_capacity: int, now_ns: float,
                   event: dict) -> None:
        engine = self.engine
        fq = engine.free_queue
        # 1. Free blocks in the doomed region: pure bookkeeping.
        event["gated_free"] = fq.gate_free_region(new_capacity)
        fq.active_capacity = new_capacity
        # 2. Refill the alpha reserve *inside* the surviving region --
        #    gating usually swallowed part of it, and the refilled
        #    blocks are what displaced pages remap onto.
        engine._maintain_alpha(now_ns)
        # 3. Displaced live pages, in address order (deterministic).
        displaced = sorted(
            ca for ca in engine.gipt._entries if ca >= new_capacity
        )
        num_cores = self.config.num_cores
        remapped = evicted = shootdowns = room_evictions = 0
        for cache_page in displaced:
            entry = engine.gipt._entries[cache_page]
            virtual_page = entry.pte.virtual_page
            mask = entry.residence_mask
            core_id = 0
            while mask:
                if mask & 1:
                    # Guarded shootdown: only drop the translation if it
                    # actually targets the displaced block -- a same-VPN
                    # entry of another process must survive.
                    peeked = self.ctlbs[core_id].hierarchy.l2.peek(
                        virtual_page
                    )
                    if (peeked is not None and not peeked.non_cacheable
                            and peeked.target_page == cache_page):
                        self.ctlbs[core_id].shootdown(virtual_page)
                        shootdowns += 1
                mask >>= 1
                core_id += 1
            if entry.residence_mask:
                # Belt-and-braces: a residence bit whose translation was
                # not found above (it should have been cleared by the
                # shootdown callback) must not block the removal.
                for cid in range(num_cores):
                    engine.gipt.clear_resident(cache_page, cid)
            if remapped < self._max_remap and fq.free_blocks == 0:
                # Make room for the remap: retire a cold *survivor*
                # (below the cut, outside every TLB's reach) through the
                # ordinary eviction path.  Displaced pages stay off
                # limits -- evicting one here would invalidate the
                # snapshot being walked.
                victim = engine.victims.select(
                    protected=lambda ca: (ca >= new_capacity
                                          or engine.gipt.is_resident(ca))
                )
                if victim is not None:
                    fq.enqueue_eviction(victim)
                    engine._drain_evictions(now_ns)
                    room_evictions += 1
            if remapped < self._max_remap and fq.free_blocks > 0:
                self._remap_page(cache_page, now_ns)
                remapped += 1
            else:
                fq.enqueue_eviction(cache_page)
                engine._drain_evictions(now_ns)
                evicted += 1
        # 4. Restore the alpha reserve within the shrunk region.
        engine._maintain_alpha(now_ns)
        event["remapped"] = remapped
        event["evicted"] = evicted
        event["shootdowns"] = shootdowns
        event["room_evictions"] = room_evictions
        self.resize_remapped_pages += remapped
        self.resize_evicted_pages += evicted
        self.resize_shootdowns += shootdowns

    def _remap_page(self, old_ca: int, now_ns: float) -> None:
        """Migrate one displaced page to a surviving free block.

        The GIPT entry moves with its dirtiness and footprint masks, the
        PTE is rewritten to the new cache address, and the old block's
        on-die lines are invalidated (its cache address is being
        retired, exactly like an eviction's recycle).  Costs are charged
        as background traffic plus the conservative GIPT rewrite.
        """
        engine = self.engine
        new_ca = engine.free_queue.allocate()
        moved = engine.gipt.remove(old_ca)
        self._invalidate_ondie_page(old_ca)
        engine.victims.on_evicted(old_ca)
        fresh = engine.gipt.insert(new_ca, moved.physical_page, moved.pte)
        fresh.dirty = moved.dirty
        fresh.fetched_mask = moved.fetched_mask
        fresh.touched_mask = moved.touched_mask
        engine.victims.on_fill(new_ca)
        moved.pte.install_in_cache(new_ca)
        engine.free_queue.gate_page(old_ca)
        # Migration traffic: read the resident bytes out of the doomed
        # block, stream them into the survivor, rewrite the GIPT entries
        # of both addresses (two posted writes, Section 3.4's bound).
        nbytes = mask_bytes(moved.fetched_mask)
        engine.in_package.stream_page(
            now_ns, old_ca, is_write=False, asynchronous=True,
            num_bytes=nbytes,
        )
        engine.in_package.stream_page(
            now_ns, new_ca, is_write=True, asynchronous=True,
            num_bytes=nbytes,
        )
        gipt_device = (
            engine.in_package if engine.cache_config.gipt_in_package
            else engine.off_package
        )
        gipt_device.posted_write_block(
            now_ns, engine.gipt_page_of(old_ca)
        )
        gipt_device.posted_write_block(
            now_ns, engine.gipt_page_of(new_ca)
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def register_invariants(self, checker) -> None:
        super().register_invariants(checker)
        checker.register("resize_region", self._check_resize_region)
        checker.register("resize_churn_bounded", self._check_resize_churn)

    def _check_resize_region(self) -> None:
        """The gated set is exactly the powered-off upper region, and
        nothing in service lives at or above ``active_capacity``."""
        fq = self.engine.free_queue
        active = fq.active_capacity
        expected = set(range(active, fq.capacity_pages))
        if fq.gated != expected:
            missing = expected - fq.gated
            stray = fq.gated - expected
            raise SimulationError(
                f"gated region out of shape at active={active}: "
                f"missing={sorted(missing)[:8]} stray={sorted(stray)[:8]}"
            )
        for label, pages in (
            ("free", fq.free_pages()),
            ("pending", fq.pending_pages()),
            ("live", self.engine.gipt.cached_cache_pages()),
        ):
            breach = [p for p in pages if p >= active]
            if breach:
                raise SimulationError(
                    f"{label} pages {breach[:8]} lie in the power-gated "
                    f"region (active capacity {active})"
                )

    def _check_resize_churn(self) -> None:
        """Every resize event's remapping churn respects the budget."""
        for event in self.resize_log:
            if event["remapped"] > event["max_remap"]:
                raise SimulationError(
                    f"resize at access {event['at_access']} remapped "
                    f"{event['remapped']} pages, over the configured "
                    f"bound of {event['max_remap']}"
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        super().reset_stats()
        self.resize_events = 0
        self.resize_remapped_pages = 0
        self.resize_evicted_pages = 0
        self.resize_shootdowns = 0
        self.resize_log = []
        # _resize_clock deliberately survives: the schedule is positioned
        # in absolute accesses, warmup included.

    def timeseries_probe(self):
        counters, gauges = super().timeseries_probe()
        counters["resize_events"] = float(self.resize_events)
        counters["resize_remapped"] = float(self.resize_remapped_pages)
        counters["resize_evicted"] = float(self.resize_evicted_pages)
        counters["resize_shootdowns"] = float(self.resize_shootdowns)
        fq = self.engine.free_queue
        gauges["resize_gated_free_blocks"] = float(len(fq.gated))
        gauges["resize_active_occupancy"] = (
            fq.active_capacity / fq.capacity_pages
        )
        return counters, gauges

    def stats(self) -> dict:
        out = super().stats()
        fq = self.engine.free_queue
        out["resize_events"] = float(self.resize_events)
        out["resize_remapped_pages"] = float(self.resize_remapped_pages)
        out["resize_evicted_pages"] = float(self.resize_evicted_pages)
        out["resize_shootdowns"] = float(self.resize_shootdowns)
        out["resize_gated_free_blocks"] = float(len(fq.gated))
        out["resize_active_occupancy"] = (
            fq.active_capacity / fq.capacity_pages
        )
        return out
