"""Reproduction of "A Fully Associative, Tagless DRAM Cache" (ISCA 2015).

Public API tour:

>>> from repro import default_system, Simulator, BoundTrace
>>> from repro.workloads import TraceGenerator, spec_profile
>>> config = default_system(cache_megabytes=1024, num_cores=1)
>>> trace = TraceGenerator(spec_profile("mcf"),
...                        capacity_scale=config.capacity_scale).generate(20_000)
>>> result = Simulator(config).run("tagless",
...                                [BoundTrace(core_id=0, process_id=0, trace=trace)])
>>> result.ipc_sum > 0
True

Packages: :mod:`repro.common` (config/addressing/stats),
:mod:`repro.dram` (device models), :mod:`repro.sram` (on-die caches and
the SRAM tag array), :mod:`repro.vm` (page table, TLBs, walker),
:mod:`repro.core` (the tagless cache itself), :mod:`repro.designs` (the
five evaluated organisations), :mod:`repro.cpu` (core model + simulator),
:mod:`repro.workloads` (synthetic SPEC/PARSEC trace models) and
:mod:`repro.analysis` (AMAT equations, energy/EDP, experiment runners).
"""

from repro.common.config import SystemConfig, default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import SimulationResult, Simulator
from repro.designs.registry import DESIGN_NAMES, create_design

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "default_system",
    "BoundTrace",
    "SimulationResult",
    "Simulator",
    "DESIGN_NAMES",
    "create_design",
    "__version__",
]
