"""Replacement policies for set-associative structures.

Each policy tracks ordering metadata for the keys of *one* set (or one
fully-associative structure).  The cache owns residency; the policy only
answers "who should go next?".  LRU serves the on-die caches and the
SRAM-tag baseline (the paper uses LRU there); FIFO and LRU both serve the
tagless design's victim selection (Figure 11); CLOCK and random exist for
ablation studies.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from typing import Hashable, Iterable, Optional


class ReplacementPolicy:
    """Interface: per-set ordering metadata for replacement decisions."""

    def on_insert(self, key: Hashable) -> None:
        """A new key became resident."""
        raise NotImplementedError

    def on_access(self, key: Hashable) -> None:
        """A resident key was touched."""
        raise NotImplementedError

    def on_evict(self, key: Hashable) -> None:
        """A resident key was removed (by any mechanism)."""
        raise NotImplementedError

    def victim(self) -> Hashable:
        """Key that should be evicted next.  Undefined when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> Iterable[Hashable]:
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used ordering via an OrderedDict."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_evict(self, key: Hashable) -> None:
        del self._order[key]

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def keys(self) -> Iterable[Hashable]:
        return self._order.keys()


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: insertion order only, touches are ignored."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        pass  # FIFO deliberately ignores reuse.

    def on_evict(self, key: Hashable) -> None:
        del self._order[key]

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def keys(self) -> Iterable[Hashable]:
        return self._order.keys()


class ClockPolicy(ReplacementPolicy):
    """CLOCK (second-chance FIFO): a 1-bit approximation of LRU.

    Mentioned in Section 5.2 of the paper as the kind of LRU-like policy
    whose extra state the tagless design avoids; included here so the
    Figure 11 ablation can compare three points instead of two.

    Eviction is **lazy**: ``on_evict`` only drops the key from the live
    set (an O(n) ``deque.remove`` would dominate eviction-heavy runs);
    the stale ring slot is discarded when the clock hand reaches it.  A
    re-inserted key gets a fresh ring slot with a new version number so
    its stale older slot cannot masquerade as the live one -- the hand
    therefore visits keys in exactly the order eager removal would
    produce.

    Stale slots the hand never reaches (invalidate-heavy callers may
    never ask for a victim) are bounded by compaction: once stale slots
    outnumber live keys, the ring is rebuilt from its live slots in
    order.  The hand stays at the front and live order is untouched, so
    victim sequences are identical to the never-compacting version, and
    the ring can never exceed ``2 * len(self) + 1`` slots.
    """

    __slots__ = ("_ring", "_referenced", "_version", "_stale")

    def __init__(self) -> None:
        self._ring: deque = deque()  # (key, version) slots, some stale
        self._referenced: dict = {}
        self._version: dict = {}  # key -> live slot's version counter
        self._stale = 0  # stale slots currently in the ring

    def on_insert(self, key: Hashable) -> None:
        version = self._version.get(key, 0) + 1
        self._version[key] = version
        self._ring.append((key, version))
        if key in self._referenced:
            # Re-insert of a live key: its old slot just went stale
            # (eviction's stale slots are counted in on_evict).
            self._stale += 1
        self._referenced[key] = False
        if self._stale > len(self._referenced):
            self._compact()

    def on_access(self, key: Hashable) -> None:
        if key in self._referenced:
            self._referenced[key] = True

    def on_evict(self, key: Hashable) -> None:
        del self._referenced[key]  # ring slot goes stale, dropped lazily
        self._stale += 1
        if self._stale > len(self._referenced):
            self._compact()

    def victim(self) -> Hashable:
        ring = self._ring
        referenced = self._referenced
        version = self._version
        while True:
            key, slot_version = ring[0]
            if key not in referenced or version[key] != slot_version:
                ring.popleft()  # stale slot: evicted or re-inserted since
                self._stale -= 1
                continue
            if referenced[key]:
                referenced[key] = False
                ring.rotate(-1)
                continue
            return key

    def _compact(self) -> None:
        """Rebuild the ring from live slots, front (hand) first.

        Also prunes ``_version`` to live keys: after compaction no stale
        slot survives that an old counter would need to disambiguate.
        """
        referenced = self._referenced
        version = self._version
        live = [
            slot for slot in self._ring
            if slot[0] in referenced and version[slot[0]] == slot[1]
        ]
        self._ring = deque(live)
        self._version = dict(live)
        self._stale = 0

    def __len__(self) -> int:
        return len(self._referenced)

    def keys(self) -> Iterable[Hashable]:
        return self._referenced.keys()


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection with a seeded stream.

    Resident keys live in a list plus a key->slot index map, giving O(1)
    seeded choice and O(1) removal (swap the last key into the vacated
    slot) instead of the former O(n) enumeration scan per victim.  The
    draw stream for a given seed is unchanged; the key a given draw maps
    to can differ from the pre-optimization enumeration order once
    evictions have reshuffled slots -- still uniform over residents,
    which is the only property the policy promises.
    """

    __slots__ = ("_list", "_slot", "_rng")

    def __init__(self, seed: int = 0) -> None:
        self._list: list = []
        self._slot: dict = {}  # key -> index into _list
        self._rng = random.Random(seed)

    def on_insert(self, key: Hashable) -> None:
        self._slot[key] = len(self._list)
        self._list.append(key)

    def on_access(self, key: Hashable) -> None:
        pass

    def on_evict(self, key: Hashable) -> None:
        index = self._slot.pop(key)
        last = self._list.pop()
        if index < len(self._list):  # not the tail slot: backfill it
            self._list[index] = last
            self._slot[last] = index

    def victim(self) -> Hashable:
        if not self._list:
            raise IndexError("victim() on empty policy")
        return self._list[self._rng.randrange(len(self._list))]

    def __len__(self) -> int:
        return len(self._list)

    def keys(self) -> Iterable[Hashable]:
        return tuple(self._list)


_POLICY_FACTORIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "clock": ClockPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: Optional[int] = None) -> ReplacementPolicy:
    """Instantiate a policy by name ("lru", "fifo", "clock", "random")."""
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"expected one of {sorted(_POLICY_FACTORIES)}"
        ) from None
    if name == "random":
        return factory(seed or 0)
    return factory()
