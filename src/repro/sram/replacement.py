"""Replacement policies for set-associative structures.

Each policy tracks ordering metadata for the keys of *one* set (or one
fully-associative structure).  The cache owns residency; the policy only
answers "who should go next?".  LRU serves the on-die caches and the
SRAM-tag baseline (the paper uses LRU there); FIFO and LRU both serve the
tagless design's victim selection (Figure 11); CLOCK and random exist for
ablation studies.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from typing import Hashable, Iterable, Optional


class ReplacementPolicy:
    """Interface: per-set ordering metadata for replacement decisions."""

    def on_insert(self, key: Hashable) -> None:
        """A new key became resident."""
        raise NotImplementedError

    def on_access(self, key: Hashable) -> None:
        """A resident key was touched."""
        raise NotImplementedError

    def on_evict(self, key: Hashable) -> None:
        """A resident key was removed (by any mechanism)."""
        raise NotImplementedError

    def victim(self) -> Hashable:
        """Key that should be evicted next.  Undefined when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> Iterable[Hashable]:
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used ordering via an OrderedDict."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_evict(self, key: Hashable) -> None:
        del self._order[key]

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def keys(self) -> Iterable[Hashable]:
        return self._order.keys()


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: insertion order only, touches are ignored."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        pass  # FIFO deliberately ignores reuse.

    def on_evict(self, key: Hashable) -> None:
        del self._order[key]

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def keys(self) -> Iterable[Hashable]:
        return self._order.keys()


class ClockPolicy(ReplacementPolicy):
    """CLOCK (second-chance FIFO): a 1-bit approximation of LRU.

    Mentioned in Section 5.2 of the paper as the kind of LRU-like policy
    whose extra state the tagless design avoids; included here so the
    Figure 11 ablation can compare three points instead of two.
    """

    __slots__ = ("_ring", "_referenced")

    def __init__(self) -> None:
        self._ring: deque = deque()
        self._referenced: dict = {}

    def on_insert(self, key: Hashable) -> None:
        self._ring.append(key)
        self._referenced[key] = False

    def on_access(self, key: Hashable) -> None:
        if key in self._referenced:
            self._referenced[key] = True

    def on_evict(self, key: Hashable) -> None:
        del self._referenced[key]
        try:
            self._ring.remove(key)
        except ValueError:
            pass

    def victim(self) -> Hashable:
        while True:
            key = self._ring[0]
            if key not in self._referenced:
                self._ring.popleft()
                continue
            if self._referenced[key]:
                self._referenced[key] = False
                self._ring.rotate(-1)
                continue
            return key

    def __len__(self) -> int:
        return len(self._referenced)

    def keys(self) -> Iterable[Hashable]:
        return self._referenced.keys()


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection with a seeded stream."""

    __slots__ = ("_keys", "_rng")

    def __init__(self, seed: int = 0) -> None:
        self._keys: "OrderedDict[Hashable, None]" = OrderedDict()
        self._rng = random.Random(seed)

    def on_insert(self, key: Hashable) -> None:
        self._keys[key] = None

    def on_access(self, key: Hashable) -> None:
        pass

    def on_evict(self, key: Hashable) -> None:
        del self._keys[key]

    def victim(self) -> Hashable:
        index = self._rng.randrange(len(self._keys))
        for i, key in enumerate(self._keys):
            if i == index:
                return key
        raise IndexError("victim() on empty policy")

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> Iterable[Hashable]:
        return self._keys.keys()


_POLICY_FACTORIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "clock": ClockPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: Optional[int] = None) -> ReplacementPolicy:
    """Instantiate a policy by name ("lru", "fifo", "clock", "random")."""
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"expected one of {sorted(_POLICY_FACTORIES)}"
        ) from None
    if name == "random":
        return factory(seed or 0)
    return factory()
