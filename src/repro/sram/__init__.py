"""On-die SRAM structures: L1/L2 caches and the SRAM-tag array baseline.

The generic :class:`repro.sram.set_assoc.SetAssociativeCache` backs both
on-die cache levels; :class:`repro.sram.hierarchy.OnDieHierarchy` wires an
L1 and an L2 together with write-back semantics; and
:class:`repro.sram.tag_array.SRAMTagArray` models the 16-way page-tag
store of the paper's SRAM-tag baseline (Figure 1, Table 6).
"""

from repro.sram.hierarchy import AccessResult, OnDieHierarchy
from repro.sram.replacement import (
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.sram.set_assoc import SetAssociativeCache
from repro.sram.tag_array import SRAMTagArray

__all__ = [
    "AccessResult",
    "OnDieHierarchy",
    "ClockPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "make_policy",
    "SetAssociativeCache",
    "SRAMTagArray",
]
