"""Generic set-associative cache keyed by an integer block identifier.

Used for the on-die L1 and L2 (keys are global 64 B line numbers) and --
with a page-sized "line" -- anywhere a set-associative page structure is
needed.  The cache tracks residency and dirtiness; timing and energy stay
with the caller, keeping this structure purely functional and easy to
property-test.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sram.replacement import ReplacementPolicy, make_policy


@dataclasses.dataclass
class Eviction:
    """A block pushed out of the cache: its key and whether it was dirty."""

    key: int
    dirty: bool


class _CacheSet:
    """One associativity set: residency map plus a replacement policy."""

    __slots__ = ("ways", "entries", "policy")

    def __init__(self, ways: int, policy: ReplacementPolicy):
        self.ways = ways
        self.entries: Dict[int, bool] = {}  # key -> dirty
        self.policy = policy


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache.

    Parameters
    ----------
    num_sets, ways:
        Geometry; ``num_sets * ways`` blocks total.  ``num_sets == 1``
        yields a fully associative structure.
    policy:
        Replacement policy name understood by
        :func:`repro.sram.replacement.make_policy`.
    """

    def __init__(self, num_sets: int, ways: int, policy: str = "lru"):
        if num_sets <= 0 or ways <= 0:
            raise ValueError(
                f"invalid cache geometry: num_sets={num_sets} ways={ways}"
            )
        self.num_sets = num_sets
        self.ways = ways
        self.policy_name = policy
        self._sets: List[_CacheSet] = [
            _CacheSet(ways, make_policy(policy, seed=i)) for i in range(num_sets)
        ]
        self.hits = 0
        self.misses = 0

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.ways

    def _set_for(self, key: int) -> _CacheSet:
        return self._sets[key % self.num_sets]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def lookup(self, key: int, is_write: bool = False) -> bool:
        """Probe for ``key``; on a hit, update recency and dirtiness."""
        cache_set = self._set_for(key)
        if key in cache_set.entries:
            self.hits += 1
            cache_set.policy.on_access(key)
            if is_write:
                cache_set.entries[key] = True
            return True
        self.misses += 1
        return False

    def contains(self, key: int) -> bool:
        """Residency check with no statistics or recency side effects."""
        return key in self._set_for(key).entries

    def insert(self, key: int, dirty: bool = False) -> Optional[Eviction]:
        """Install ``key``, evicting a victim if the set is full.

        Returns the eviction (if any) so the caller can write back dirty
        data.  Inserting an already-resident key refreshes its recency and
        merges dirtiness instead of duplicating it.
        """
        cache_set = self._set_for(key)
        if key in cache_set.entries:
            cache_set.policy.on_access(key)
            cache_set.entries[key] = cache_set.entries[key] or dirty
            return None
        evicted = None
        if len(cache_set.entries) >= cache_set.ways:
            victim = cache_set.policy.victim()
            was_dirty = cache_set.entries.pop(victim)
            cache_set.policy.on_evict(victim)
            evicted = Eviction(victim, was_dirty)
        cache_set.entries[key] = dirty
        cache_set.policy.on_insert(key)
        return evicted

    def invalidate(self, key: int) -> Optional[Eviction]:
        """Drop ``key`` if resident, returning it (with dirtiness)."""
        cache_set = self._set_for(key)
        if key not in cache_set.entries:
            return None
        dirty = cache_set.entries.pop(key)
        cache_set.policy.on_evict(key)
        return Eviction(key, dirty)

    def mark_dirty(self, key: int) -> None:
        """Set the dirty bit of a resident key (no-op if absent)."""
        cache_set = self._set_for(key)
        if key in cache_set.entries:
            cache_set.entries[key] = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._sets)

    def __iter__(self) -> Iterator[int]:
        for cache_set in self._sets:
            yield from cache_set.entries

    def occupancy(self) -> float:
        """Fraction of the cache currently valid."""
        return len(self) / self.capacity_blocks

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def set_of(self, key: int) -> Tuple[int, ...]:
        """Keys currently resident in ``key``'s set (testing aid)."""
        return tuple(self._set_for(key).entries)
