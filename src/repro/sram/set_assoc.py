"""Generic set-associative cache keyed by an integer block identifier.

Used for the on-die L1 and L2 (keys are global 64 B line numbers) and --
with a page-sized "line" -- anywhere a set-associative page structure is
needed.  The cache tracks residency and dirtiness; timing and energy stay
with the caller, keeping this structure purely functional and easy to
property-test.

For the LRU and FIFO policies -- the ones on the per-access hot path --
residency and recency are **fused** into one insertion-ordered dict per
set (``key -> dirty``): Python dicts preserve insertion order, so
move-to-end is pop + reinsert and the victim is the first key.  That
replaces the former parallel ``OrderedDict`` policy object and its
double membership checks with a single dict operation per probe.  The
stateful CLOCK and random policies keep the policy-object path.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sram.replacement import make_policy


@dataclasses.dataclass
class Eviction:
    """A block pushed out of the cache: its key and whether it was dirty."""

    key: int
    dirty: bool


#: Policies whose ordering metadata is exactly "insertion order of the
#: residency dict" -- fused, no policy object.
_FUSED_POLICIES = ("lru", "fifo")


class _CacheSet:
    """One associativity set: residency map (+ policy object if any).

    ``entries`` maps key -> dirty in replacement order for the fused
    policies; ``policy`` is ``None`` then.  ``lru`` selects whether a
    touch refreshes the order (LRU) or leaves it alone (FIFO).
    """

    __slots__ = ("ways", "entries", "policy", "lru")

    def __init__(self, ways: int, policy_name: str, seed: int):
        self.ways = ways
        self.entries: dict = {}  # key -> dirty, in replacement order
        self.lru = policy_name == "lru"
        if policy_name in _FUSED_POLICIES:
            self.policy = None
        else:
            self.policy = make_policy(policy_name, seed=seed)


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache.

    Parameters
    ----------
    num_sets, ways:
        Geometry; ``num_sets * ways`` blocks total.  ``num_sets == 1``
        yields a fully associative structure.
    policy:
        Replacement policy name understood by
        :func:`repro.sram.replacement.make_policy`.
    """

    __slots__ = ("num_sets", "ways", "policy_name", "_sets", "hits",
                 "misses", "evicted_dirty")

    def __init__(self, num_sets: int, ways: int, policy: str = "lru"):
        if num_sets <= 0 or ways <= 0:
            raise ValueError(
                f"invalid cache geometry: num_sets={num_sets} ways={ways}"
            )
        if policy not in _FUSED_POLICIES:
            make_policy(policy, seed=0)  # validate the name eagerly
        self.num_sets = num_sets
        self.ways = ways
        self.policy_name = policy
        self._sets: List[_CacheSet] = [
            _CacheSet(ways, policy, seed=i) for i in range(num_sets)
        ]
        self.hits = 0
        self.misses = 0
        #: Dirtiness of the victim of the most recent insert_fast() that
        #: evicted one (hot-path side channel; see insert_fast).
        self.evicted_dirty = False

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.ways

    def _set_for(self, key: int) -> _CacheSet:
        return self._sets[key % self.num_sets]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def lookup(self, key: int, is_write: bool = False) -> bool:
        """Probe for ``key``; on a hit, update recency and dirtiness."""
        cache_set = self._sets[key % self.num_sets]
        entries = cache_set.entries
        if key in entries:
            self.hits += 1
            policy = cache_set.policy
            if policy is None:
                if cache_set.lru:
                    entries[key] = entries.pop(key) or is_write
                elif is_write:
                    entries[key] = True
            else:
                policy.on_access(key)
                if is_write:
                    entries[key] = True
            return True
        self.misses += 1
        return False

    def contains(self, key: int) -> bool:
        """Residency check with no statistics or recency side effects."""
        return key in self._sets[key % self.num_sets].entries

    def insert(self, key: int, dirty: bool = False) -> Optional[Eviction]:
        """Install ``key``, evicting a victim if the set is full.

        Returns the eviction (if any) so the caller can write back dirty
        data.  Inserting an already-resident key refreshes its recency and
        merges dirtiness instead of duplicating it.
        """
        victim = self.insert_fast(key, dirty)
        if victim is None:
            return None
        return Eviction(victim, self.evicted_dirty)

    def insert_fast(self, key: int, dirty: bool = False) -> Optional[int]:
        """Allocation-free :meth:`insert`: returns the victim key (or
        ``None``), with its dirtiness in :attr:`evicted_dirty`."""
        cache_set = self._sets[key % self.num_sets]
        entries = cache_set.entries
        policy = cache_set.policy
        if key in entries:
            if policy is None:
                if cache_set.lru:
                    entries[key] = entries.pop(key) or dirty
                else:
                    entries[key] = entries[key] or dirty
            else:
                policy.on_access(key)
                entries[key] = entries[key] or dirty
            return None
        victim = None
        if len(entries) >= cache_set.ways:
            if policy is None:
                victim = next(iter(entries))
                self.evicted_dirty = entries.pop(victim)
            else:
                victim = policy.victim()
                self.evicted_dirty = entries.pop(victim)
                policy.on_evict(victim)
        entries[key] = dirty
        if policy is not None:
            policy.on_insert(key)
        return victim

    def invalidate(self, key: int) -> Optional[Eviction]:
        """Drop ``key`` if resident, returning it (with dirtiness)."""
        cache_set = self._sets[key % self.num_sets]
        entries = cache_set.entries
        if key not in entries:
            return None
        dirty = entries.pop(key)
        if cache_set.policy is not None:
            cache_set.policy.on_evict(key)
        return Eviction(key, dirty)

    def mark_dirty(self, key: int) -> None:
        """Set the dirty bit of a resident key (no-op if absent).

        Deliberately does not refresh recency -- a background dirty-bit
        update is not a use of the line.
        """
        entries = self._sets[key % self.num_sets].entries
        if key in entries:
            entries[key] = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._sets)

    def __iter__(self) -> Iterator[int]:
        for cache_set in self._sets:
            yield from cache_set.entries

    def occupancy(self) -> float:
        """Fraction of the cache currently valid."""
        return len(self) / self.capacity_blocks

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def set_of(self, key: int) -> Tuple[int, ...]:
        """Keys currently resident in ``key``'s set (testing aid)."""
        return tuple(self._sets[key % self.num_sets].entries)

    def check_consistency(self) -> None:
        """Validate per-set structure (read-only; ``repro.validate``).

        Every set must respect its associativity, hold only keys that
        map to it, and -- for the policy-object path -- keep the policy's
        key set identical to the residency dict's.
        """
        for index, cache_set in enumerate(self._sets):
            entries = cache_set.entries
            if len(entries) > cache_set.ways:
                raise SimulationError(
                    f"set {index} holds {len(entries)} blocks but has "
                    f"only {cache_set.ways} ways"
                )
            for key in entries:
                if key % self.num_sets != index:
                    raise SimulationError(
                        f"key {key} indexed into set {index} of "
                        f"{self.num_sets} (belongs in {key % self.num_sets})"
                    )
            policy = cache_set.policy
            if policy is not None and set(policy.keys()) != set(entries):
                raise SimulationError(
                    f"set {index}: replacement-policy keys "
                    f"{sorted(policy.keys())} != resident keys "
                    f"{sorted(entries)}"
                )
