"""SRAM tag array for the page-based SRAM-tag baseline (Figure 1).

The baseline DRAM cache keeps a 16-way set-associative tag store on die:
each entry maps a physical page number to a (set, way) slot of the
in-package DRAM, i.e. to a cache page number.  Every L3 access -- hit or
miss -- pays the tag-probe latency of Table 6, and the array's SRAM burns
both dynamic probe energy and leakage, which is precisely the overhead the
tagless design eliminates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.common.config import SRAMTagConfig
from repro.common.errors import SimulationError
from repro.sram.replacement import make_policy


@dataclasses.dataclass
class TagEviction:
    """A page displaced from the SRAM-tag cache."""

    physical_page: int
    cache_page: int
    dirty: bool


class _TagSet:
    __slots__ = ("mapping", "free_ways", "policy")

    def __init__(self, ways: int, policy_name: str):
        self.mapping: Dict[int, int] = {}  # physical page -> way
        self.free_ways: List[int] = list(range(ways - 1, -1, -1))
        self.policy = make_policy(policy_name)


class SRAMTagArray:
    """Physical-page -> cache-page translation with LRU replacement."""

    def __init__(
        self,
        capacity_pages: int,
        config: SRAMTagConfig,
        policy: str = "lru",
    ):
        ways = config.associativity
        if capacity_pages < ways:
            ways = max(1, capacity_pages)
        if capacity_pages % ways:
            raise ValueError(
                f"capacity_pages={capacity_pages} not divisible by "
                f"associativity={ways}"
            )
        self.config = config
        self.capacity_pages = capacity_pages
        self.ways = ways
        self.num_sets = capacity_pages // ways
        self._sets = [_TagSet(ways, policy) for _ in range(self.num_sets)]
        self._dirty: Dict[int, bool] = {}  # cache page -> dirty
        self.probes = 0
        self.hits = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _set_index(self, physical_page: int) -> int:
        return physical_page % self.num_sets

    def _cache_page(self, set_index: int, way: int) -> int:
        return set_index * self.ways + way

    # ------------------------------------------------------------------
    # Operations (each public call models one tag-array probe)
    # ------------------------------------------------------------------
    def lookup(self, physical_page: int, is_write: bool = False) -> Optional[int]:
        """Probe the tags; return the cache page on a hit, else None."""
        self.probes += 1
        tag_set = self._sets[self._set_index(physical_page)]
        way = tag_set.mapping.get(physical_page)
        if way is None:
            return None
        self.hits += 1
        tag_set.policy.on_access(physical_page)
        cache_page = self._cache_page(self._set_index(physical_page), way)
        if is_write:
            self._dirty[cache_page] = True
        return cache_page

    def insert(self, physical_page: int, dirty: bool = False):
        """Allocate a slot for ``physical_page``.

        Returns ``(cache_page, eviction_or_None)``.  The caller fills the
        returned cache page and writes back the eviction if dirty.
        """
        set_index = self._set_index(physical_page)
        tag_set = self._sets[set_index]
        if physical_page in tag_set.mapping:
            way = tag_set.mapping[physical_page]
            tag_set.policy.on_access(physical_page)
            cache_page = self._cache_page(set_index, way)
            if dirty:
                self._dirty[cache_page] = True
            return cache_page, None

        eviction = None
        if tag_set.free_ways:
            way = tag_set.free_ways.pop()
        else:
            victim = tag_set.policy.victim()
            way = tag_set.mapping.pop(victim)
            tag_set.policy.on_evict(victim)
            victim_cache_page = self._cache_page(set_index, way)
            eviction = TagEviction(
                physical_page=victim,
                cache_page=victim_cache_page,
                dirty=self._dirty.pop(victim_cache_page, False),
            )
        tag_set.mapping[physical_page] = way
        tag_set.policy.on_insert(physical_page)
        cache_page = self._cache_page(set_index, way)
        self._dirty[cache_page] = dirty
        return cache_page, eviction

    def contains(self, physical_page: int) -> bool:
        """Residency check without modelling a probe."""
        tag_set = self._sets[self._set_index(physical_page)]
        return physical_page in tag_set.mapping

    # ------------------------------------------------------------------
    # Cost model (Table 6)
    # ------------------------------------------------------------------
    @property
    def access_cycles(self) -> int:
        """Tag-probe latency, on the critical path of every L3 access."""
        return self.config.access_cycles

    @property
    def probe_nj(self) -> float:
        """Dynamic energy of one probe."""
        return self.config.probe_nj

    @property
    def leakage_watts(self) -> float:
        return self.config.leakage_watts

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero probe counters; tag contents stay warm."""
        self.probes = 0
        self.hits = 0

    def check_consistency(self) -> None:
        """Validate tag-store structure (read-only; ``repro.validate``)."""
        allocated = set()
        for index, tag_set in enumerate(self._sets):
            ways_used = set(tag_set.mapping.values())
            if len(ways_used) != len(tag_set.mapping):
                raise SimulationError(
                    f"tag set {index}: two pages share one way"
                )
            free = set(tag_set.free_ways)
            if ways_used & free:
                raise SimulationError(
                    f"tag set {index}: ways {ways_used & free} are both "
                    "mapped and free"
                )
            if len(ways_used) + len(free) != self.ways:
                raise SimulationError(
                    f"tag set {index}: {len(ways_used)} mapped + "
                    f"{len(free)} free ways != associativity {self.ways}"
                )
            for way in ways_used | free:
                if not (0 <= way < self.ways):
                    raise SimulationError(
                        f"tag set {index}: way {way} out of range"
                    )
            if set(tag_set.policy.keys()) != set(tag_set.mapping):
                raise SimulationError(
                    f"tag set {index}: policy keys != mapped pages"
                )
            for page in tag_set.mapping:
                if page % self.num_sets != index:
                    raise SimulationError(
                        f"tag set {index}: PPN {page} belongs in set "
                        f"{page % self.num_sets}"
                    )
            allocated.update(
                self._cache_page(index, way) for way in ways_used
            )
        stray = set(self._dirty) - allocated
        if stray:
            raise SimulationError(
                f"dirty bits for unallocated cache pages {sorted(stray)}"
            )

    def __len__(self) -> int:
        return sum(len(s.mapping) for s in self._sets)

    def hit_rate(self) -> float:
        if self.probes == 0:
            return 0.0
        return self.hits / self.probes

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}probes": float(self.probes),
            f"{prefix}hits": float(self.hits),
            f"{prefix}resident_pages": float(len(self)),
            f"{prefix}probe_energy_nj": self.probes * self.probe_nj,
        }
