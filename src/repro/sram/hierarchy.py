"""Two-level on-die cache hierarchy (the L1/L2 of Table 3).

The hierarchy is indexed by *global line number*.  In the SRAM-tag design
these are physical line numbers; in the tagless design they are **cache**
line numbers (Section 3.1: "on-die SRAM caches are now addressed and
tagged by cache addresses"), which is why the hierarchy also supports
page-granularity invalidation -- when the tagless cache recycles a cache
address, stale lines of the departing page must leave the on-die levels.

Dirty L2 victims are surfaced to the caller as write-backs; timing and
energy for those belong to the memory side.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.common.addressing import LINES_PER_PAGE
from repro.common.config import OnDieCacheConfig
from repro.sram.set_assoc import SetAssociativeCache


@dataclasses.dataclass
class AccessResult:
    """Outcome of one hierarchy access.

    ``level`` is "l1", "l2" or "miss"; ``writebacks`` lists the global
    line numbers of dirty L2 victims that must be written toward memory.
    """

    level: str
    writebacks: List[int]


class OnDieHierarchy:
    """Write-back, write-allocate L1 + L2 with simple inclusion-free flow."""

    def __init__(self, l1: OnDieCacheConfig, l2: OnDieCacheConfig):
        self.l1_config = l1
        self.l2_config = l2
        self.l1 = SetAssociativeCache(l1.num_sets, l1.associativity, "lru")
        self.l2 = SetAssociativeCache(l2.num_sets, l2.associativity, "lru")
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        self.writebacks = 0

    def access(self, line: int, is_write: bool) -> AccessResult:
        """Look up ``line``; fill on miss; return hit level + write-backs."""
        writebacks: List[int] = []
        if self.l1.lookup(line, is_write):
            self.l1_hits += 1
            return AccessResult("l1", writebacks)

        if self.l2.lookup(line, is_write):
            self.l2_hits += 1
            self._fill_l1(line, is_write, writebacks)
            return AccessResult("l2", writebacks)

        self.misses += 1
        # Miss: the line arrives from the next level; install in L2 then L1.
        evicted = self.l2.insert(line, dirty=False)
        if evicted is not None and evicted.dirty:
            writebacks.append(evicted.key)
            self.writebacks += 1
        self._fill_l1(line, is_write, writebacks)
        return AccessResult("miss", writebacks)

    def _fill_l1(self, line: int, is_write: bool, writebacks: List[int]) -> None:
        evicted = self.l1.insert(line, dirty=is_write)
        if evicted is None or not evicted.dirty:
            return
        # Dirty L1 victim drains into L2; if L2 must evict a dirty line to
        # make room, that one continues toward memory.
        if self.l2.contains(evicted.key):
            self.l2.mark_dirty(evicted.key)
            return
        spilled = self.l2.insert(evicted.key, dirty=True)
        if spilled is not None and spilled.dirty:
            writebacks.append(spilled.key)
            self.writebacks += 1

    def invalidate_page(self, page_number: int) -> List[int]:
        """Invalidate all 64 lines of a page; return dirty lines dropped.

        The tagless design calls this when a cache address is recycled.
        Dirty lines are returned so the caller can merge them into the
        page's write-back (they are part of the page being evicted).
        """
        dirty: List[int] = []
        first = page_number * LINES_PER_PAGE
        for line in range(first, first + LINES_PER_PAGE):
            for level in (self.l1, self.l2):
                evicted = level.invalidate(line)
                if evicted is not None and evicted.dirty:
                    dirty.append(line)
        return dirty

    def reset_stats(self) -> None:
        """Zero hit/miss counters; cache contents stay warm."""
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        self.writebacks = 0
        for level in (self.l1, self.l2):
            level.hits = 0
            level.misses = 0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.l1_hits + self.l2_hits + self.misses

    def miss_rate(self) -> float:
        """Fraction of accesses that left the on-die hierarchy."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}l1_hits": float(self.l1_hits),
            f"{prefix}l2_hits": float(self.l2_hits),
            f"{prefix}misses": float(self.misses),
            f"{prefix}writebacks": float(self.writebacks),
        }
