"""Two-level on-die cache hierarchy (the L1/L2 of Table 3).

The hierarchy is indexed by *global line number*.  In the SRAM-tag design
these are physical line numbers; in the tagless design they are **cache**
line numbers (Section 3.1: "on-die SRAM caches are now addressed and
tagged by cache addresses"), which is why the hierarchy also supports
page-granularity invalidation -- when the tagless cache recycles a cache
address, stale lines of the departing page must leave the on-die levels.

Dirty L2 victims are surfaced to the caller as write-backs; timing and
energy for those belong to the memory side.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.common.addressing import LINES_PER_PAGE
from repro.common.config import OnDieCacheConfig
from repro.sram.set_assoc import SetAssociativeCache


@dataclasses.dataclass
class AccessResult:
    """Outcome of one hierarchy access.

    ``level`` is "l1", "l2" or "miss"; ``writebacks`` lists the global
    line numbers of dirty L2 victims that must be written toward memory.
    """

    level: str
    writebacks: List[int]


class OnDieHierarchy:
    """Write-back, write-allocate L1 + L2 with simple inclusion-free flow.

    The hot path is :meth:`access_level` / :meth:`access_after_l1_miss`:
    they return the hit level as a plain string and surface dirty L2
    victims through :attr:`pending_writebacks`, a list **reused across
    calls** (valid until the next miss-path access) so the common case
    allocates nothing.  :meth:`access` wraps them in the original
    allocating :class:`AccessResult` interface for tests and tools.
    """

    __slots__ = ("l1_config", "l2_config", "l1", "l2", "l1_hits",
                 "l2_hits", "misses", "writebacks", "pending_writebacks")

    def __init__(self, l1: OnDieCacheConfig, l2: OnDieCacheConfig):
        self.l1_config = l1
        self.l2_config = l2
        self.l1 = SetAssociativeCache(l1.num_sets, l1.associativity, "lru")
        self.l2 = SetAssociativeCache(l2.num_sets, l2.associativity, "lru")
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        self.writebacks = 0
        #: Dirty L2 victim lines of the most recent miss-path access.
        self.pending_writebacks: List[int] = []

    def access(self, line: int, is_write: bool) -> AccessResult:
        """Look up ``line``; fill on miss; return hit level + write-backs."""
        level = self.access_level(line, is_write)
        writebacks = [] if level == "l1" else list(self.pending_writebacks)
        return AccessResult(level, writebacks)

    def access_level(self, line: int, is_write: bool) -> str:
        """Hot-path access: hit level only; write-backs via
        :attr:`pending_writebacks` (untouched on an L1 hit)."""
        if self.l1.lookup(line, is_write):
            self.l1_hits += 1
            return "l1"
        return self._after_l1_probe_missed(line, is_write)

    def access_after_l1_miss(self, line: int, is_write: bool) -> str:
        """Continuation for callers that inlined the L1 probe themselves
        (without counting the miss): books the L1 miss, then proceeds."""
        self.l1.misses += 1
        return self._after_l1_probe_missed(line, is_write)

    def _after_l1_probe_missed(self, line: int, is_write: bool) -> str:
        # Both levels are always fused-LRU (constructed with "lru"
        # above), so the set-associative probe / insert / spill dict
        # operations are inlined here verbatim -- same operations in the
        # same order as SetAssociativeCache.lookup()/insert_fast(),
        # minus the policy-dispatch branches that can never be taken.
        writebacks = self.pending_writebacks
        writebacks.clear()
        l1 = self.l1
        l2 = self.l2
        l2_set = l2._sets[line % l2.num_sets]
        l2_entries = l2_set.entries
        if line in l2_entries:
            # L2 hit: move-to-end + dirty merge, then fill L1.
            l2.hits += 1
            l2_entries[line] = l2_entries.pop(line) or is_write
            self.l2_hits += 1
            level = "l2"
        else:
            l2.misses += 1
            self.misses += 1
            # Miss: the line arrives from the next level; install in L2
            # (it just missed, so it cannot already be resident).
            if len(l2_entries) >= l2_set.ways:
                victim = next(iter(l2_entries))
                if l2_entries.pop(victim):
                    writebacks.append(victim)
                    self.writebacks += 1
            l2_entries[line] = False
            level = "miss"
        # Fill L1 (the line just missed L1, so it is not resident).
        l1_set = l1._sets[line % l1.num_sets]
        l1_entries = l1_set.entries
        if len(l1_entries) >= l1_set.ways:
            victim = next(iter(l1_entries))
            if l1_entries.pop(victim):
                # Dirty L1 victim drains into L2; if L2 must evict a
                # dirty line to make room, that one continues to memory.
                spill_set = l2._sets[victim % l2.num_sets]
                spill_entries = spill_set.entries
                if victim in spill_entries:
                    # mark_dirty: set the bit without refreshing recency.
                    spill_entries[victim] = True
                else:
                    if len(spill_entries) >= spill_set.ways:
                        spilled = next(iter(spill_entries))
                        if spill_entries.pop(spilled):
                            writebacks.append(spilled)
                            self.writebacks += 1
                    spill_entries[victim] = True
        l1_entries[line] = is_write
        return level

    def invalidate_page(self, page_number: int) -> List[int]:
        """Invalidate all 64 lines of a page; return dirty lines dropped.

        The tagless design calls this when a cache address is recycled.
        Dirty lines are returned so the caller can merge them into the
        page's write-back (they are part of the page being evicted).
        """
        dirty: List[int] = []
        first = page_number * LINES_PER_PAGE
        for line in range(first, first + LINES_PER_PAGE):
            for level in (self.l1, self.l2):
                evicted = level.invalidate(line)
                if evicted is not None and evicted.dirty:
                    dirty.append(line)
        return dirty

    def reset_stats(self) -> None:
        """Zero hit/miss counters; cache contents stay warm."""
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        self.writebacks = 0
        for level in (self.l1, self.l2):
            level.hits = 0
            level.misses = 0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.l1_hits + self.l2_hits + self.misses

    def miss_rate(self) -> float:
        """Fraction of accesses that left the on-die hierarchy."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}l1_hits": float(self.l1_hits),
            f"{prefix}l2_hits": float(self.l2_hits),
            f"{prefix}misses": float(self.misses),
            f"{prefix}writebacks": float(self.writebacks),
        }
