"""Page-table walker cost model.

Both the conventional TLB miss handler and the cTLB miss handler begin
with the same radix-tree walk; its latency is a fixed cycle cost (the
paper folds it into ``MissPenalty_TLB`` in Equations 1 and 5).  Because
walks are frequent for these memory-bound workloads, the walker also
accounts the PTE traffic energy-wise as small reads against the
off-package device, without charging its latency twice.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import TLBConfig
from repro.dram.device import DRAMDevice
from repro.vm.page_table import PageTable, PageTableEntry


class PageTableWalker:
    """Performs walks and accumulates their statistics."""

    def __init__(
        self,
        config: TLBConfig,
        pte_backing: Optional[DRAMDevice] = None,
    ):
        self.config = config
        self.pte_backing = pte_backing
        self.walks = 0
        self.cycles_total = 0.0
        # Hoisted per-walk constants (walks happen once per TLB miss --
        # frequent for these memory-bound workloads).
        self._walk_cycles = float(config.walk_cycles)
        self._pte_nj = (
            pte_backing.energy.config.access_nj(8, 0)
            if pte_backing is not None else 0.0
        )

    def walk(self, table: PageTable, virtual_page: int, now_ns: float = 0.0):
        """Walk for ``virtual_page``.

        Returns ``(pte, cycles)``.  The cycle cost models the multi-level
        pointer chase; MMU caches make it mostly constant, matching the
        fixed ``walk_cycles`` parameter.  The 8-byte PTE read is charged
        to the backing DRAM's energy/bandwidth when a device is attached
        (its latency is already inside ``walk_cycles``).
        """
        pte = table.entry(virtual_page)
        table.walks += 1
        cycles = self._walk_cycles
        backing = self.pte_backing
        if backing is not None:
            # Energy/bus accounting only: the walk-latency constant above
            # already covers the time.  (EnergyAccount.charge inlined;
            # zero activations, so only the read side moves.)
            energy = backing.energy
            energy.dynamic_nj += self._pte_nj
            energy.read_bytes += 8
        self.walks += 1
        self.cycles_total += cycles
        return pte, cycles

    def update_pte(self, pte: PageTableEntry) -> float:
        """Cost of rewriting a PTE (cache fill or eviction completion).

        The PTE is resident in the on-die caches right after a walk, so
        the paper treats this as a cached store; we charge a single core
        cycle and the 8-byte write energy.
        """
        if self.pte_backing is not None:
            self.pte_backing.energy.charge(8, 0, is_write=True)
        return 1.0

    def reset_stats(self) -> None:
        self.walks = 0
        self.cycles_total = 0.0

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}walks": float(self.walks),
            f"{prefix}cycles_total": self.cycles_total,
        }
