"""Two-level TLB hierarchy (Table 3: 32-entry L1, 512-entry L2 per core).

The same hardware serves as the conventional TLB in the baselines and as
the **cTLB** in the tagless design -- the paper stresses the organisation
is identical; only the meaning of the stored translation changes.  Each
entry therefore carries an opaque ``target_page`` (physical or cache page)
plus the NC bit the cTLB needs.

The hierarchy is inclusive (L1 subset of L2), so "resident in any TLB" --
the condition the GIPT's TLB-residence bit vector tracks -- reduces to
membership in the L2 TLB, and an L2 eviction is *the* event at which a
page leaves TLB reach.  Callers observe those events via the eviction
callback to maintain GIPT residence bits.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

EvictionCallback = Callable[[int, "TLBEntry"], None]


@dataclasses.dataclass(slots=True)
class TLBEntry:
    """Payload of one TLB slot."""

    target_page: int
    non_cacheable: bool = False


class TLB:
    """A fully associative, LRU TLB level.

    Real L1 TLBs are fully associative and L2 TLBs highly associative;
    modelling both as fully associative LRU matches the paper's setup
    while keeping miss-rate behaviour faithful.

    Recency lives in the insertion order of a plain dict (guaranteed
    since Python 3.7): move-to-end is pop + reinsert, the LRU victim is
    the first key.  This is measurably faster than an ``OrderedDict``
    on the per-access hot path and semantically identical.
    """

    __slots__ = ("capacity", "_map", "hits", "misses")

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("a TLB needs at least one entry")
        self.capacity = entries
        self._map: dict = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, virtual_page: int) -> Optional[TLBEntry]:
        _map = self._map
        entry = _map.get(virtual_page)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        _map[virtual_page] = _map.pop(virtual_page)
        return entry

    def insert(self, virtual_page: int, entry: TLBEntry):
        """Install a translation; returns the evicted (vpn, entry) or None."""
        _map = self._map
        evicted = None
        if virtual_page in _map:
            del _map[virtual_page]
        elif len(_map) >= self.capacity:
            victim = next(iter(_map))
            evicted = (victim, _map.pop(victim))
        _map[virtual_page] = entry
        return evicted

    def invalidate(self, virtual_page: int) -> Optional[TLBEntry]:
        """Drop one translation (TLB shootdown of a single VPN)."""
        return self._map.pop(virtual_page, None)

    def contains(self, virtual_page: int) -> bool:
        return virtual_page in self._map

    def peek(self, virtual_page: int) -> Optional[TLBEntry]:
        """Read an entry without touching LRU state or statistics."""
        return self._map.get(virtual_page)

    def flush(self) -> int:
        """Drop everything (full shootdown); returns entries dropped."""
        count = len(self._map)
        self._map.clear()
        return count

    def __len__(self) -> int:
        return len(self._map)

    def __iter__(self):
        return iter(self._map)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class TLBHierarchy:
    """Inclusive L1+L2 TLB pair for one core."""

    __slots__ = ("l1", "l2", "on_l2_evict", "l1_hits", "l2_hits", "misses")

    def __init__(
        self,
        l1_entries: int,
        l2_entries: int,
        on_l2_evict: Optional[EvictionCallback] = None,
    ):
        if l2_entries < l1_entries:
            raise ValueError("inclusive hierarchy requires l2 >= l1 entries")
        self.l1 = TLB(l1_entries)
        self.l2 = TLB(l2_entries)
        self.on_l2_evict = on_l2_evict
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    def lookup(self, virtual_page: int):
        """Probe L1 then L2.

        Returns ``(level, entry)`` where level is "l1", "l2" or "miss".
        An L2 hit is promoted into L1 (the dropped L1 victim remains in
        L2, preserving inclusion).
        """
        entry = self.l1.lookup(virtual_page)
        if entry is not None:
            self.l1_hits += 1
            # Keep L2's LRU in step with actual use so that the pages
            # protected from eviction are the genuinely hot ones.
            l2_map = self.l2._map
            if virtual_page in l2_map:
                l2_map[virtual_page] = l2_map.pop(virtual_page)
            return "l1", entry
        return self.lookup_after_l1_miss(virtual_page)

    def lookup_after_l1_miss(self, virtual_page: int):
        """L2 probe half of :meth:`lookup`.

        The design hot path inlines the L1 probe (and its counter
        updates) itself and only calls here on an L1 miss, so this must
        *not* touch L1 statistics.
        """
        entry = self.l2.lookup(virtual_page)
        if entry is not None:
            self.l2_hits += 1
            self.l1.insert(virtual_page, entry)
            return "l2", entry
        self.misses += 1
        return "miss", None

    def install(self, virtual_page: int, entry: TLBEntry) -> None:
        """Install a fresh translation after a walk (into L2 then L1).

        Runs once per TLB miss, so both :meth:`TLB.insert` bodies are
        inlined (same operations in the same order).
        """
        l1 = self.l1
        l2_map = self.l2._map
        evicted = None
        if virtual_page in l2_map:
            # Overwriting a live translation *replaces* its payload: the
            # old entry leaves TLB reach exactly like a capacity victim,
            # so the eviction callback must fire for it too -- otherwise
            # a cache-mapped payload would strand its GIPT residence bit
            # and block that page's eviction forever.
            replaced = l2_map.pop(virtual_page)
            if self.on_l2_evict is not None and replaced is not entry:
                self.on_l2_evict(virtual_page, replaced)
        elif len(l2_map) >= self.l2.capacity:
            victim = next(iter(l2_map))
            evicted = (victim, l2_map.pop(victim))
        l2_map[virtual_page] = entry
        if evicted is not None:
            evicted_vpn, evicted_entry = evicted
            # Inclusion: a page leaving L2 must leave L1 too.
            l1._map.pop(evicted_vpn, None)
            if self.on_l2_evict is not None:
                self.on_l2_evict(evicted_vpn, evicted_entry)
        l1_map = l1._map
        if virtual_page in l1_map:
            del l1_map[virtual_page]
        elif len(l1_map) >= l1.capacity:
            del l1_map[next(iter(l1_map))]
        l1_map[virtual_page] = entry

    def invalidate(self, virtual_page: int) -> bool:
        """Shoot down one translation from both levels.

        Returns True if the page was resident in L2 (i.e. within TLB
        reach).  Fires the eviction callback so residence bookkeeping
        stays consistent.
        """
        self.l1.invalidate(virtual_page)
        entry = self.l2.invalidate(virtual_page)
        if entry is None:
            return False
        if self.on_l2_evict is not None:
            self.on_l2_evict(virtual_page, entry)
        return True

    def flush(self) -> int:
        """Full shootdown of both levels (context switch without ASIDs).

        Unlike :meth:`TLB.flush`, which silently clears one level, this
        fires the eviction callback for every L2 entry: each translation
        leaves TLB reach, and residence bookkeeping (the GIPT bits in
        the tagless design) must observe that.  Returns the number of L2
        entries dropped.
        """
        l2_map = self.l2._map
        dropped = len(l2_map)
        if self.on_l2_evict is not None:
            for virtual_page, entry in list(l2_map.items()):
                self.on_l2_evict(virtual_page, entry)
        l2_map.clear()
        self.l1._map.clear()
        return dropped

    def resident(self, virtual_page: int) -> bool:
        """Is the page within this core's TLB reach?"""
        return self.l2.contains(virtual_page)

    def update_target(self, virtual_page: int, entry: TLBEntry) -> None:
        """Overwrite a resident translation in place (both levels)."""
        if self.l2.contains(virtual_page):
            self.l2._map[virtual_page] = entry
        if self.l1.contains(virtual_page):
            self.l1._map[virtual_page] = entry

    def reset_stats(self) -> None:
        """Zero hit/miss counters; translations stay resident."""
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        for level in (self.l1, self.l2):
            level.hits = 0
            level.misses = 0

    @property
    def accesses(self) -> int:
        return self.l1_hits + self.l2_hits + self.misses

    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}l1_hits": float(self.l1_hits),
            f"{prefix}l2_hits": float(self.l2_hits),
            f"{prefix}misses": float(self.misses),
        }
