"""Page table with the paper's three extra PTE bits (Section 3.2).

Each :class:`PageTableEntry` carries:

- ``VC`` (*Valid-in-Cache*): the page currently lives in the DRAM cache and
  the translation target is a **cache** page number;
- ``NC`` (*Non-Cacheable*): the page bypasses the DRAM cache (but not the
  on-die caches) -- the over-fetching mitigation of Section 3.5;
- ``PU`` (*Pending-Update*): a fill for this page is in flight, so a second
  thread must not issue a duplicate fill.

The x86_64 PTE has 14 unused bits, so these fit for free in real hardware;
here they are plain booleans.

:class:`PhysicalFrameAllocator` stands in for the OS frame allocator.  It
spreads frames over the whole physical space so that the bank-interleaving
design (whose in-package region is just the top slice of physical memory)
sees the OS-oblivious placement the paper describes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from repro.common.errors import SimulationError


@dataclasses.dataclass(slots=True)
class PageTableEntry:
    """One PTE: translation target plus the three new flag bits."""

    virtual_page: int
    physical_page: int
    cache_page: Optional[int] = None
    valid_in_cache: bool = False
    non_cacheable: bool = False
    pending_update: bool = False
    #: Simulation timestamp (ns) at which an in-flight fill completes.
    #: Stands in for the PU busy-wait: a second thread touching the page
    #: before this time stalls until the first thread's fill finishes.
    pending_until_ns: float = 0.0
    #: Non-zero for the base PTE of an unsplit superpage: this entry
    #: maps 2**order contiguous 4 KB pages (Sections 3.5 and 6).
    superpage_order: int = 0

    @property
    def is_superpage(self) -> bool:
        return self.superpage_order > 0

    @property
    def superpage_pages(self) -> int:
        """4 KB pages covered by this mapping (1 for a normal PTE)."""
        return 1 << self.superpage_order

    @property
    def target_page(self) -> int:
        """The page number a TLB refill should cache for this PTE.

        When VC is set this is the in-package cache page, otherwise the
        off-package physical page -- the single field a real PTE would
        hold, with VC disambiguating its meaning.
        """
        if self.valid_in_cache:
            if self.cache_page is None:
                raise SimulationError(
                    f"PTE for VA page {self.virtual_page:#x} has VC=1 but "
                    "no cache page"
                )
            return self.cache_page
        return self.physical_page

    def install_in_cache(self, cache_page: int) -> None:
        """Rewrite the PTE after a cache fill: PA replaced by CA, VC set."""
        self.cache_page = cache_page
        self.valid_in_cache = True

    def evict_from_cache(self) -> None:
        """Rewrite the PTE after eviction: CA replaced by the original PA.

        The original PPN is recovered from the GIPT by the eviction
        machinery; this PTE kept it as well, which the paper permits since
        the GIPT stores a *pointer* to the PTE rather than a copy.
        """
        self.cache_page = None
        self.valid_in_cache = False


class PhysicalFrameAllocator:
    """Assigns physical frames to newly touched virtual pages.

    Frames are handed out by striding through the physical page space with
    a large odd step, which scatters consecutive virtual pages across
    banks and across the in/off-package split the way a long-running OS's
    free list would.  Deterministic, so experiments are reproducible.
    """

    def __init__(self, total_pages: int, stride: int = 997):
        if total_pages <= 0:
            raise ValueError("total_pages must be positive")
        self.total_pages = total_pages
        # A full permutation of the page space requires gcd(stride, total)
        # == 1; nudge the stride until that holds.
        while math.gcd(stride, total_pages) != 1:
            stride += 1
        self.stride = stride
        self._next = 0
        self._allocated = 0
        #: Frames at or above this floor are reserved for contiguous
        #: (superpage) allocations, carved from the top of memory.
        self._contig_floor = total_pages

    def allocate(self) -> int:
        """Return the next free physical page number."""
        while True:
            if self._allocated >= self._contig_floor:
                raise SimulationError(
                    f"physical memory exhausted after {self._allocated} pages"
                )
            frame = self._next
            self._next = (self._next + self.stride) % self.total_pages
            if frame < self._contig_floor:
                self._allocated += 1
                return frame
            # Frame fell in the superpage reservation; skip it.

    def allocate_contiguous(self, num_pages: int) -> int:
        """Reserve ``num_pages`` physically contiguous frames.

        Superpage mappings need contiguous physical memory; the run is
        carved from the top of the page space, which the strided
        single-frame allocator then avoids.  Returns the base frame.
        """
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        new_floor = self._contig_floor - num_pages
        if new_floor < self._allocated:
            raise SimulationError(
                f"cannot reserve {num_pages} contiguous frames: memory "
                "exhausted"
            )
        self._contig_floor = new_floor
        return new_floor

    @property
    def allocated(self) -> int:
        return self._allocated


class PageTable:
    """Per-process virtual-to-physical (or -cache) mapping.

    Pages are materialised lazily on first touch using the shared frame
    allocator, mirroring demand paging.  Multi-threaded workloads share
    one instance across cores (no aliasing, Section 3.5); multi-programmed
    workloads get one instance each.
    """

    def __init__(self, allocator: PhysicalFrameAllocator, process_id: int = 0):
        self.allocator = allocator
        self.process_id = process_id
        self._entries: Dict[int, PageTableEntry] = {}
        #: base virtual page -> superpage order, for unsplit superpages.
        self._superpages: Dict[int, int] = {}
        self.walks = 0
        self.superpage_splits = 0

    # ------------------------------------------------------------------
    # Superpage management (Sections 3.5 and 6)
    # ------------------------------------------------------------------
    def map_superpage(self, base_vpn: int, order: int) -> PageTableEntry:
        """Map 2**order pages at ``base_vpn`` as one superpage.

        The base must be naturally aligned; physical frames are
        contiguous, as real superpages require.  Returns the base PTE.
        """
        pages = 1 << order
        if order <= 0:
            raise ValueError("superpage order must be positive")
        if base_vpn % pages:
            raise ValueError(
                f"superpage base {base_vpn:#x} not aligned to {pages} pages"
            )
        for vpn in range(base_vpn, base_vpn + pages):
            if vpn in self._entries:
                raise SimulationError(
                    f"VA page {vpn:#x} already mapped; cannot fold it "
                    "into a superpage"
                )
        frame = self.allocator.allocate_contiguous(pages)
        pte = PageTableEntry(
            virtual_page=base_vpn,
            physical_page=frame,
            superpage_order=order,
        )
        self._entries[base_vpn] = pte
        self._superpages[base_vpn] = order
        return pte

    def superpage_base(self, virtual_page: int):
        """Return (base_vpn, order) if ``virtual_page`` lies inside an
        unsplit superpage, else None."""
        for base_vpn, order in self._superpages.items():
            if base_vpn <= virtual_page < base_vpn + (1 << order):
                return base_vpn, order
        return None

    def split_superpage(self, base_vpn: int) -> int:
        """Break a superpage into 4 KB PTEs (Section 6's hierarchical
        expansion).  Returns the number of PTEs created."""
        order = self._superpages.pop(base_vpn, None)
        if order is None:
            raise SimulationError(
                f"no unsplit superpage at base {base_vpn:#x}"
            )
        base_pte = self._entries.pop(base_vpn)
        pages = 1 << order
        for offset in range(pages):
            self._entries[base_vpn + offset] = PageTableEntry(
                virtual_page=base_vpn + offset,
                physical_page=base_pte.physical_page + offset,
                non_cacheable=base_pte.non_cacheable,
            )
        self.superpage_splits += 1
        return pages

    def entry(self, virtual_page: int) -> PageTableEntry:
        """Return the PTE for ``virtual_page``, materialising on demand.

        Inside an unsplit superpage this returns the *base* PTE, whose
        ``superpage_order`` tells the handler it covers the whole run.
        """
        pte = self._entries.get(virtual_page)
        if pte is not None:
            return pte
        location = self.superpage_base(virtual_page)
        if location is not None:
            return self._entries[location[0]]
        pte = PageTableEntry(
            virtual_page=virtual_page,
            physical_page=self.allocator.allocate(),
        )
        self._entries[virtual_page] = pte
        return pte

    def existing_entry(self, virtual_page: int) -> Optional[PageTableEntry]:
        """Return the PTE only if the page was already touched."""
        return self._entries.get(virtual_page)

    def set_non_cacheable(self, virtual_page: int, value: bool = True) -> None:
        """Flag a page as NC (the mmap-extension hook of Section 3.5)."""
        self.entry(virtual_page).non_cacheable = value

    def __len__(self) -> int:
        return len(self._entries)

    def cached_pages(self) -> int:
        """Number of pages currently marked Valid-in-Cache."""
        return sum(1 for pte in self._entries.values() if pte.valid_in_cache)
