"""Virtual-memory substrate: page tables, TLBs and the page-table walker.

The paper's mechanism lives almost entirely in this layer: the page table
gains three bits (Valid-in-Cache, Non-Cacheable, Pending-Update,
Section 3.2) and the TLB is reused unmodified as the **cTLB** -- identical
hardware, but the stored translation is a virtual-to-cache mapping.
"""

from repro.vm.page_table import PageTable, PageTableEntry, PhysicalFrameAllocator
from repro.vm.tlb import TLB, TLBHierarchy
from repro.vm.walker import PageTableWalker

__all__ = [
    "PageTable",
    "PageTableEntry",
    "PhysicalFrameAllocator",
    "TLB",
    "TLBHierarchy",
    "PageTableWalker",
]
