"""Reconstruct campaign health from its on-disk artifacts.

``repro status <dir>`` answers "how is that 180-point study doing?"
without attaching to the running process: everything it reports is
derived from the campaign directory's ``spec.json`` (what *should*
run) and ``jobs.jsonl`` (what *has* run), the same artifacts resume
and ``campaign report`` already rely on.

The counter semantics deliberately replicate
:meth:`repro.campaign.compile.CampaignRun.counters` row for row --
status over a finished campaign's artifact must reproduce exactly the
summary its run printed, which is what makes the reconstruction
trustworthy (and testable).  Rows are deduplicated by cache key with
the last row winning, matching how resume chains artifacts.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional

from repro.campaign.spec import CampaignSpec
from repro.campaign.compile import expand


@dataclasses.dataclass
class CampaignStatus:
    """Health of one campaign directory, derived from artifacts."""

    name: str
    spec_hash: str
    cells: int
    repetitions: int
    #: Points the spec expands to (what a complete run must cover).
    expected: int
    #: Distinct points with at least one artifact row (last row wins).
    seen: int
    #: Execution-health counters over the deduplicated rows, with the
    #: exact key set of :meth:`CampaignRun.counters`.
    counters: Dict[str, int]
    #: Terminal failures still standing after dedup: (label, status,
    #: error) -- a point that failed then succeeded on resume is not
    #: listed.
    failures: List[Dict[str, str]]
    #: Sum of recorded per-job wall time over deduplicated rows.
    job_wall_time_s: float

    @property
    def missing(self) -> int:
        return max(0, self.expected - self.seen)

    @property
    def complete(self) -> bool:
        return self.missing == 0 and not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.name,
            "spec_hash": self.spec_hash,
            "cells": self.cells,
            "repetitions": self.repetitions,
            "expected": self.expected,
            "seen": self.seen,
            "missing": self.missing,
            "complete": self.complete,
            **self.counters,
            "failures": self.failures,
            "job_wall_time_s": self.job_wall_time_s,
        }


def _dedupe_rows(artifact_path: str) -> Dict[str, dict]:
    """Last job row per cache key, torn-trailing-line tolerant."""
    rows: Dict[str, dict] = {}
    with open(artifact_path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line: the run died mid-write
            if record.get("record") != "job":
                continue
            key = record.get("key")
            if isinstance(key, str):
                rows[key] = record
    return rows


def counters_from_rows(rows: Dict[str, dict]) -> Dict[str, int]:
    """Replicate :meth:`CampaignRun.counters` from artifact rows."""
    counters = {
        "jobs": len(rows),
        "errors": 0,
        "timeouts": 0,
        "worker_crashes": 0,
        "retries": 0,
        "resumed": 0,
        "cache_hits": 0,
        "computed": 0,
    }
    for record in rows.values():
        counters["retries"] += int(record.get("retries", 0))
        status = record.get("status")
        cache = record.get("cache")
        if status == "timeout":
            counters["timeouts"] += 1
        elif status == "worker-crashed":
            counters["worker_crashes"] += 1
        elif status == "error":
            counters["errors"] += 1
        if cache == "resume":
            counters["resumed"] += 1
        elif cache == "hit":
            counters["cache_hits"] += 1
        elif status == "ok":
            counters["computed"] += 1
    counters["errors"] += counters["timeouts"] + counters["worker_crashes"]
    return counters


def campaign_status(out_dir: str) -> CampaignStatus:
    """Build the status of the campaign directory ``out_dir``.

    Raises ``OSError`` when ``spec.json`` is unreadable (not a campaign
    directory).  A missing ``jobs.jsonl`` is not an error -- it is a
    campaign that has not started -- and reports zero seen points.
    """
    spec = CampaignSpec.from_file(os.path.join(out_dir, "spec.json"))
    expected = len(expand(spec))
    artifact_path = os.path.join(out_dir, "jobs.jsonl")
    rows = (_dedupe_rows(artifact_path)
            if os.path.exists(artifact_path) else {})
    failures = [
        {
            "label": _row_label(record),
            "status": str(record.get("status")),
            "error": str(record.get("error", "")),
        }
        for record in rows.values()
        if record.get("status") not in ("ok", None)
    ]
    wall = sum(float(record.get("wall_time_s", 0.0))
               for record in rows.values())
    return CampaignStatus(
        name=spec.name,
        spec_hash=spec.spec_hash(),
        cells=len(spec.cells()),
        repetitions=spec.repetitions,
        expected=expected,
        seen=len(rows),
        counters=counters_from_rows(rows),
        failures=failures,
        job_wall_time_s=wall,
    )


def _row_label(record: dict) -> str:
    spec = record.get("spec")
    if isinstance(spec, dict):
        design = spec.get("design", "?")
        workload = spec.get("workload", "?")
        return f"{design}/{workload}@seed{spec.get('base_seed', '?')}"
    return record.get("key", "?")[:16]


def render_status(status: CampaignStatus) -> str:
    """Human-readable status block for the CLI."""
    counters = status.counters
    state = ("complete" if status.complete
             else f"incomplete ({status.missing} points missing)"
             if status.missing else "complete with failures")
    lines = [
        f"campaign {status.name} [{status.spec_hash}]: {state}",
        f"  grid     {status.cells} cells x {status.repetitions} "
        f"repetitions = {status.expected} points "
        f"({status.seen} recorded)",
        f"  work     {counters['computed']} computed, "
        f"{counters['cache_hits']} cache hits, "
        f"{counters['resumed']} resumed, "
        f"{status.job_wall_time_s:.1f}s job wall time",
        f"  health   {counters['errors']} errors "
        f"({counters['timeouts']} timeouts, "
        f"{counters['worker_crashes']} worker crashes, "
        f"{counters['retries']} retries)",
    ]
    for failure in status.failures[:10]:
        lines.append(f"  fail     {failure['label']}: "
                     f"{failure['status']} -- {failure['error'][:80]}")
    if len(status.failures) > 10:
        lines.append(f"  fail     ... +{len(status.failures) - 10} more")
    return "\n".join(lines)
