"""Campaign-scale experimentation: declarative studies with statistics.

A campaign is a study described once in a JSON/TOML file -- factors x
levels x seeded repetitions -- compiled to harness jobs, executed
through the fault-tolerant pool (caching, timeouts, retries, resume all
inherited), and reduced to effect-size/confidence-interval reports::

    from repro.campaign import CampaignSpec, run_campaign, reduce_campaign
    from repro.harness import Harness

    spec = CampaignSpec.from_file("examples/study_tagless_vs_sram.json")
    run = run_campaign(spec, Harness(jobs=4))
    report = reduce_campaign(spec, run.cell_results())

The ``repro campaign run|resume|report`` CLI wraps the same pipeline
with a per-study directory (spec copy, resumable JSONL artifact, and
Markdown/CSV/JSON reports).
"""

from repro.campaign.compile import (
    CampaignJob,
    CampaignRun,
    expand,
    results_from_artifact,
    run_campaign,
)
from repro.campaign.report import (
    REPORT_SCHEMA,
    StudyReport,
    reduce_campaign,
    render_markdown,
    validate_report,
    write_reports,
)
from repro.campaign.spec import (
    FACTOR_FIELDS,
    METRIC_KEYS,
    CampaignSpec,
    Cell,
)
from repro.campaign.status import (
    CampaignStatus,
    campaign_status,
    counters_from_rows,
    render_status,
)
from repro.campaign.stats import (
    PairedComparison,
    SampleSummary,
    bootstrap_interval,
    cliffs_delta,
    cohens_d,
    paired_speedup,
    summarize,
    t_interval,
    t_ppf,
)

__all__ = [
    "CampaignJob",
    "CampaignRun",
    "CampaignSpec",
    "CampaignStatus",
    "Cell",
    "FACTOR_FIELDS",
    "METRIC_KEYS",
    "PairedComparison",
    "REPORT_SCHEMA",
    "SampleSummary",
    "StudyReport",
    "bootstrap_interval",
    "campaign_status",
    "cliffs_delta",
    "cohens_d",
    "counters_from_rows",
    "expand",
    "render_status",
    "paired_speedup",
    "reduce_campaign",
    "render_markdown",
    "results_from_artifact",
    "run_campaign",
    "summarize",
    "t_interval",
    "t_ppf",
    "validate_report",
    "write_reports",
]
