"""Statistical reduction for campaign studies.

A campaign cell is a factor assignment run ``repetitions`` times under
independent (but deterministically derived) seeds; this module turns
those per-repetition metric samples into the numbers a study report
needs: location (mean/median), dispersion, t-based and bootstrap 95 %
confidence intervals, paired speedup ratios between designs that share
seeds, and the two standard effect sizes (Cohen's d, Cliff's delta).

Everything here is deterministic: the bootstrap draws from a numpy
generator seeded by the caller (campaigns derive it from the study seed
via :func:`repro.common.rng.derive_seed`), and the Student-t quantile is
computed from closed forms (df 1 and 2) plus the Cornish-Fisher
expansion (df >= 3) -- no SciPy dependency, errors below 1e-2 on the
quantiles a 95 % interval uses.
"""

from __future__ import annotations

import dataclasses
import math
from statistics import NormalDist
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.stats import geometric_mean

#: Default two-sided confidence level for every interval.
DEFAULT_CONFIDENCE = 0.95

#: Default bootstrap resample count (percentile bootstrap of the mean).
DEFAULT_RESAMPLES = 2000

_STANDARD_NORMAL = NormalDist()


def t_ppf(p: float, df: int) -> float:
    """Quantile of Student's t distribution (two closed forms + series).

    >>> round(t_ppf(0.975, 1), 3)
    12.706
    >>> round(t_ppf(0.975, 4), 2)
    2.78
    """
    if not (0.0 < p < 1.0):
        raise ValueError("p must be in (0, 1)")
    if df < 1:
        raise ValueError("df must be >= 1")
    if df == 1:
        return math.tan(math.pi * (p - 0.5))
    if df == 2:
        return (2.0 * p - 1.0) * math.sqrt(2.0 / (4.0 * p * (1.0 - p)))
    z = _STANDARD_NORMAL.inv_cdf(p)
    g1 = (z ** 3 + z) / 4.0
    g2 = (5 * z ** 5 + 16 * z ** 3 + 3 * z) / 96.0
    g3 = (3 * z ** 7 + 19 * z ** 5 + 17 * z ** 3 - 15 * z) / 384.0
    g4 = (79 * z ** 9 + 776 * z ** 7 + 1482 * z ** 5
          - 1920 * z ** 3 - 945 * z) / 92160.0
    return z + g1 / df + g2 / df ** 2 + g3 / df ** 3 + g4 / df ** 4


def sample_stdev(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; 0.0 below two samples."""
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))


def t_interval(values: Sequence[float],
               confidence: float = DEFAULT_CONFIDENCE,
               ) -> Tuple[float, float]:
    """Two-sided t confidence interval for the mean.

    With fewer than two samples there is no dispersion estimate and the
    interval collapses to the point itself -- reports then show a zero
    width rather than a fabricated one.
    """
    if not values:
        raise ValueError("t_interval needs at least one sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, mean
    half = (t_ppf(0.5 + confidence / 2.0, n - 1)
            * sample_stdev(values) / math.sqrt(n))
    return mean - half, mean + half


def bootstrap_interval(values: Sequence[float],
                       confidence: float = DEFAULT_CONFIDENCE,
                       resamples: int = DEFAULT_RESAMPLES,
                       seed: int = 0) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Deterministic given ``seed``; campaigns derive one per (cell,
    metric) so repeated reductions of the same study are bit-identical.
    """
    if not values:
        raise ValueError("bootstrap_interval needs at least one sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 1:
        raise ValueError("resamples must be >= 1")
    data = np.asarray(values, dtype=float)
    n = len(data)
    if n < 2:
        return float(data[0]), float(data[0])
    generator = np.random.default_rng(seed)
    indices = generator.integers(0, n, size=(resamples, n))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))


def cohens_d(a: Sequence[float], b: Sequence[float]) -> float:
    """Cohen's d with the pooled (n-1)-weighted standard deviation.

    Returns 0.0 when the pooled deviation is zero (identical constant
    samples) -- an honest "no measurable standardized effect" rather
    than an infinity that would poison JSON reports.
    """
    if not a or not b:
        raise ValueError("cohens_d needs two non-empty samples")
    na, nb = len(a), len(b)
    mean_a = sum(a) / na
    mean_b = sum(b) / nb
    dof = na + nb - 2
    if dof <= 0:
        return 0.0
    pooled_var = ((na - 1) * sample_stdev(a) ** 2
                  + (nb - 1) * sample_stdev(b) ** 2) / dof
    if pooled_var == 0.0:
        return 0.0
    return (mean_a - mean_b) / math.sqrt(pooled_var)


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> float:
    """Cliff's delta: P(a > b) - P(a < b) over all cross pairs, in [-1, 1]."""
    if not a or not b:
        raise ValueError("cliffs_delta needs two non-empty samples")
    greater = sum(1 for x in a for y in b if x > y)
    less = sum(1 for x in a for y in b if x < y)
    return (greater - less) / (len(a) * len(b))


@dataclasses.dataclass(frozen=True)
class SampleSummary:
    """Reduction of one cell's repetitions for one metric."""

    n: int
    mean: float
    median: float
    stdev: float
    ci_low: float
    ci_high: float
    boot_low: float
    boot_high: float
    minimum: float
    maximum: float

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def summarize(values: Sequence[float],
              confidence: float = DEFAULT_CONFIDENCE,
              resamples: int = DEFAULT_RESAMPLES,
              seed: int = 0) -> SampleSummary:
    """Reduce one metric's repetition samples to a :class:`SampleSummary`."""
    if not values:
        raise ValueError("summarize needs at least one sample")
    data = sorted(float(v) for v in values)
    n = len(data)
    mid = n // 2
    median = data[mid] if n % 2 else (data[mid - 1] + data[mid]) / 2.0
    ci_low, ci_high = t_interval(data, confidence)
    boot_low, boot_high = bootstrap_interval(data, confidence, resamples,
                                             seed)
    return SampleSummary(
        n=n,
        mean=sum(data) / n,
        median=median,
        stdev=sample_stdev(data),
        ci_low=ci_low,
        ci_high=ci_high,
        boot_low=boot_low,
        boot_high=boot_high,
        minimum=data[0],
        maximum=data[-1],
    )


@dataclasses.dataclass(frozen=True)
class PairedComparison:
    """Design-vs-baseline comparison over seed-paired repetitions.

    ``speedup`` is the geometric mean of the per-seed ratios
    ``candidate_i / baseline_i``; its confidence interval is a t
    interval on the log ratios, exponentiated back, which is the
    standard treatment for ratio statistics.
    """

    n: int
    speedup: float
    ci_low: float
    ci_high: float
    cliffs_delta: float
    cohens_d: float
    ratios: Tuple[float, ...]

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["ratios"] = list(self.ratios)
        return data


def paired_speedup(candidate: Sequence[float], baseline: Sequence[float],
                   confidence: float = DEFAULT_CONFIDENCE,
                   ) -> PairedComparison:
    """Compare seed-paired samples of a candidate against a baseline.

    ``candidate[i]`` and ``baseline[i]`` must come from runs sharing the
    i-th repetition seed (the campaign compiler guarantees this by
    excluding the design factor from seed derivation).  Both metrics
    must be positive -- ratios of IPC/EDP/energy always are; a zero
    would be an upstream reporting bug.
    """
    if len(candidate) != len(baseline):
        raise ValueError(
            f"paired samples differ in length: "
            f"{len(candidate)} vs {len(baseline)}"
        )
    if not candidate:
        raise ValueError("paired_speedup needs at least one pair")
    ratios = []
    for c, b in zip(candidate, baseline):
        if c <= 0 or b <= 0:
            raise ValueError(
                f"paired_speedup requires positive values, got {c}/{b}"
            )
        ratios.append(c / b)
    log_low, log_high = t_interval([math.log(r) for r in ratios],
                                   confidence)
    return PairedComparison(
        n=len(ratios),
        speedup=geometric_mean(ratios),
        ci_low=math.exp(log_low),
        ci_high=math.exp(log_high),
        cliffs_delta=cliffs_delta(candidate, baseline),
        cohens_d=cohens_d(candidate, baseline),
        ratios=tuple(ratios),
    )
