"""Reduce campaign results to Markdown / CSV / JSON study reports.

The reduction is a pure, deterministic function of the campaign spec
and the per-repetition metric samples: statistics (including the
bootstrap, whose generator seed derives from the campaign seed) carry
no wall-clock or host state, so re-reducing the same completed study
always produces byte-identical report files.  Execution health
(retries, timeouts, cache hits) deliberately lives in the run summary
and the JSONL artifact, *not* in the report files, for that reason.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.compile import CellResults
from repro.campaign.spec import CampaignSpec, Cell
from repro.campaign.stats import (
    PairedComparison,
    SampleSummary,
    paired_speedup,
    summarize,
)
from repro.common import rng

#: Bump when the JSON report layout changes; the CI smoke gate and any
#: downstream aggregation key on it.
REPORT_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class CellReport:
    """Reduced statistics for one factor-grid cell."""

    cell: Cell
    expected: int
    completed: int
    metrics: Tuple[Tuple[str, SampleSummary], ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "cell": self.cell.as_dict(),
            "label": self.cell.label,
            "expected": self.expected,
            "n": self.completed,
            "metrics": {name: summary.to_dict()
                        for name, summary in self.metrics},
        }


@dataclasses.dataclass(frozen=True)
class PairReport:
    """One design-vs-baseline paired comparison for one metric."""

    pairing: Tuple[Tuple[str, object], ...]
    design: str
    baseline: str
    metric: str
    comparison: PairedComparison

    @property
    def pairing_label(self) -> str:
        return " ".join(f"{n}={v}" for n, v in self.pairing)

    def to_dict(self) -> Dict[str, object]:
        return {
            "pairing": dict(self.pairing),
            "label": self.pairing_label,
            "design": self.design,
            "baseline": self.baseline,
            "metric": self.metric,
            **self.comparison.to_dict(),
        }


@dataclasses.dataclass(frozen=True)
class StudyReport:
    """The complete reduced study."""

    campaign: CampaignSpec
    cells: Tuple[CellReport, ...]
    pairs: Tuple[PairReport, ...]
    #: (cell, repetition) points with no successful result.
    missing_points: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "kind": "campaign-report",
            "name": self.campaign.name,
            "spec_hash": self.campaign.spec_hash(),
            "spec": self.campaign.to_dict(),
            "repetitions": self.campaign.repetitions,
            "confidence": self.campaign.confidence,
            "baseline": self.campaign.effective_baseline,
            "missing_points": self.missing_points,
            "cells": [cell.to_dict() for cell in self.cells],
            "pairs": [pair.to_dict() for pair in self.pairs],
        }


def _bootstrap_seed(campaign: CampaignSpec, cell: Cell, metric: str) -> int:
    """Deterministic bootstrap seed, distinct per (cell, metric)."""
    components: List[object] = ["bootstrap"]
    for name, level in sorted(cell.assignment):
        components.extend((name, level))
    components.append(metric)
    return rng.derive_seed(campaign.campaign_seed, *components)


def reduce_campaign(campaign: CampaignSpec,
                    results: CellResults) -> StudyReport:
    """Reduce per-repetition samples to the full study report.

    Cells keep their grid order; failed repetitions shrink a cell's
    ``n`` (and the paired tables only use repetitions where *both*
    designs completed, preserving the seed pairing).
    """
    cells = campaign.cells()
    cell_reports: List[CellReport] = []
    missing = 0
    for index, cell in enumerate(cells):
        reps = results.get(index, {})
        missing += campaign.repetitions - len(reps)
        metric_summaries: List[Tuple[str, SampleSummary]] = []
        if reps:
            ordered = [reps[r] for r in sorted(reps)]
            for metric in campaign.metrics:
                values = [m[metric] for m in ordered if metric in m]
                if not values:
                    continue
                metric_summaries.append((metric, summarize(
                    values,
                    confidence=campaign.confidence,
                    resamples=campaign.bootstrap_resamples,
                    seed=_bootstrap_seed(campaign, cell, metric),
                )))
        cell_reports.append(CellReport(
            cell=cell,
            expected=campaign.repetitions,
            completed=len(reps),
            metrics=tuple(metric_summaries),
        ))

    pairs: List[PairReport] = []
    baseline = campaign.effective_baseline
    if baseline is not None:
        groups: Dict[Tuple[Tuple[str, object], ...], List[int]] = {}
        for index, cell in enumerate(cells):
            groups.setdefault(cell.pairing_assignment(), []).append(index)
        for pairing in sorted(groups, key=str):
            indices = groups[pairing]
            by_design = {str(cells[i].get("design")): i for i in indices}
            base_index = by_design.get(baseline)
            if base_index is None:
                continue
            base_reps = results.get(base_index, {})
            for design in (str(cells[i].get("design")) for i in indices):
                if design == baseline:
                    continue
                cand_reps = results.get(by_design[design], {})
                shared = sorted(set(base_reps) & set(cand_reps))
                for metric in campaign.metrics:
                    candidate = [cand_reps[r][metric] for r in shared
                                 if metric in cand_reps[r]
                                 and metric in base_reps[r]]
                    base = [base_reps[r][metric] for r in shared
                            if metric in cand_reps[r]
                            and metric in base_reps[r]]
                    if not candidate:
                        continue
                    pairs.append(PairReport(
                        pairing=pairing,
                        design=design,
                        baseline=baseline,
                        metric=metric,
                        comparison=paired_speedup(
                            candidate, base,
                            confidence=campaign.confidence,
                        ),
                    ))
    return StudyReport(
        campaign=campaign,
        cells=tuple(cell_reports),
        pairs=tuple(pairs),
        missing_points=missing,
    )


# ----------------------------------------------------------------------
# Rendering

def _fmt(value: float) -> str:
    return f"{value:.6g}"


def render_markdown(report: StudyReport) -> str:
    """The human-facing study report."""
    campaign = report.campaign
    out = io.StringIO()
    out.write(f"# Campaign report: {campaign.name}\n\n")
    out.write(f"- spec hash: `{campaign.spec_hash()}`\n")
    grid = " x ".join(
        f"{len(levels)} {factor}" for factor, levels in campaign.factors
    )
    out.write(f"- grid: {grid} x {campaign.repetitions} repetitions "
              f"({len(report.cells) * campaign.repetitions} points)\n")
    out.write(f"- confidence: {campaign.confidence:.0%} "
              f"(t and percentile bootstrap, "
              f"{campaign.bootstrap_resamples} resamples)\n")
    if report.missing_points:
        out.write(f"- **missing points: {report.missing_points}** "
                  f"(failed or not yet run; resume to fill)\n")
    factor_names = [factor for factor, _levels in campaign.factors]

    out.write("\n## Per-cell statistics\n\n")
    header = (factor_names
              + ["metric", "n", "mean", "median", "stdev",
                 "ci_low", "ci_high", "boot_low", "boot_high"])
    out.write("| " + " | ".join(header) + " |\n")
    out.write("|" + "---|" * len(header) + "\n")
    for cell_report in report.cells:
        levels = [str(cell_report.cell.get(name)) for name in factor_names]
        if not cell_report.metrics:
            out.write("| " + " | ".join(
                levels + ["-", "0"] + ["-"] * 7) + " |\n")
            continue
        for metric, summary in cell_report.metrics:
            row = levels + [
                metric, str(summary.n), _fmt(summary.mean),
                _fmt(summary.median), _fmt(summary.stdev),
                _fmt(summary.ci_low), _fmt(summary.ci_high),
                _fmt(summary.boot_low), _fmt(summary.boot_high),
            ]
            out.write("| " + " | ".join(row) + " |\n")

    if report.pairs:
        baseline = report.campaign.effective_baseline
        out.write(f"\n## Paired speedups vs `{baseline}` "
                  f"(shared-seed ratios)\n\n")
        header = ["cell", "design", "metric", "n", "speedup",
                  "ci_low", "ci_high", "cliffs_d", "cohens_d"]
        out.write("| " + " | ".join(header) + " |\n")
        out.write("|" + "---|" * len(header) + "\n")
        for pair in report.pairs:
            comparison = pair.comparison
            row = [pair.pairing_label or "-", pair.design, pair.metric,
                   str(comparison.n), _fmt(comparison.speedup),
                   _fmt(comparison.ci_low), _fmt(comparison.ci_high),
                   _fmt(comparison.cliffs_delta),
                   _fmt(comparison.cohens_d)]
            out.write("| " + " | ".join(row) + " |\n")
    return out.getvalue()


def render_cells_csv(report: StudyReport) -> str:
    factor_names = [f for f, _levels in report.campaign.factors]
    lines = [",".join(
        factor_names + ["metric", "n", "mean", "median", "stdev",
                        "ci_low", "ci_high", "boot_low", "boot_high",
                        "min", "max"]
    )]
    for cell_report in report.cells:
        levels = [str(cell_report.cell.get(name)) for name in factor_names]
        for metric, s in cell_report.metrics:
            lines.append(",".join(
                levels + [metric, str(s.n)]
                + [repr(v) for v in (s.mean, s.median, s.stdev,
                                     s.ci_low, s.ci_high,
                                     s.boot_low, s.boot_high,
                                     s.minimum, s.maximum)]
            ))
    return "\n".join(lines) + "\n"


def render_pairs_csv(report: StudyReport) -> str:
    lines = [",".join(["cell", "design", "baseline", "metric", "n",
                       "speedup", "ci_low", "ci_high",
                       "cliffs_delta", "cohens_d"])]
    for pair in report.pairs:
        c = pair.comparison
        lines.append(",".join([
            pair.pairing_label or "-", pair.design, pair.baseline,
            pair.metric, str(c.n),
            repr(c.speedup), repr(c.ci_low), repr(c.ci_high),
            repr(c.cliffs_delta), repr(c.cohens_d),
        ]))
    return "\n".join(lines) + "\n"


def write_reports(report: StudyReport, out_dir: str) -> Dict[str, str]:
    """Write report.md / report.json / cells.csv / pairs.csv; return paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "markdown": os.path.join(out_dir, "report.md"),
        "json": os.path.join(out_dir, "report.json"),
        "cells_csv": os.path.join(out_dir, "cells.csv"),
        "pairs_csv": os.path.join(out_dir, "pairs.csv"),
    }
    with open(paths["markdown"], "w") as handle:
        handle.write(render_markdown(report))
    with open(paths["json"], "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(paths["cells_csv"], "w") as handle:
        handle.write(render_cells_csv(report))
    with open(paths["pairs_csv"], "w") as handle:
        handle.write(render_pairs_csv(report))
    return paths


# ----------------------------------------------------------------------
# Schema validation (the CI smoke gate)

_SUMMARY_KEYS = ("n", "mean", "median", "stdev", "ci_low", "ci_high",
                 "boot_low", "boot_high", "minimum", "maximum")
_PAIR_KEYS = ("design", "baseline", "metric", "n", "speedup",
              "ci_low", "ci_high", "cliffs_delta", "cohens_d")


def validate_report(data: Dict[str, object]) -> List[str]:
    """Structural checks over a JSON report; returns a list of problems."""
    problems: List[str] = []
    if data.get("schema") != REPORT_SCHEMA:
        problems.append(f"schema is {data.get('schema')!r}, "
                        f"expected {REPORT_SCHEMA}")
    if data.get("kind") != "campaign-report":
        problems.append("kind is not 'campaign-report'")
    cells = data.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("cells missing or empty")
        cells = []
    for index, cell in enumerate(cells):
        metrics = cell.get("metrics") if isinstance(cell, dict) else None
        if not isinstance(metrics, dict):
            problems.append(f"cell {index}: metrics missing")
            continue
        for metric, summary in metrics.items():
            missing = [k for k in _SUMMARY_KEYS
                       if not isinstance(summary, dict) or k not in summary]
            if missing:
                problems.append(f"cell {index} metric {metric}: "
                                f"missing {','.join(missing)}")
                continue
            if not (summary["ci_low"] <= summary["mean"]
                    <= summary["ci_high"]):
                problems.append(f"cell {index} metric {metric}: "
                                f"t interval does not bracket the mean")
            if summary["boot_low"] > summary["boot_high"]:
                problems.append(f"cell {index} metric {metric}: "
                                f"bootstrap interval inverted")
    pairs = data.get("pairs")
    if not isinstance(pairs, list):
        problems.append("pairs missing")
        pairs = []
    for index, pair in enumerate(pairs):
        missing = [k for k in _PAIR_KEYS
                   if not isinstance(pair, dict) or k not in pair]
        if missing:
            problems.append(f"pair {index}: missing {','.join(missing)}")
            continue
        if pair["ci_low"] > pair["ci_high"]:
            problems.append(f"pair {index}: speedup interval inverted")
        if not (-1.0 <= pair["cliffs_delta"] <= 1.0):
            problems.append(f"pair {index}: cliffs_delta out of [-1, 1]")
    return problems
