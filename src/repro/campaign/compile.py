"""Compile a campaign spec into harness jobs and execute it.

The compiler is a pure function from :class:`CampaignSpec` to an
ordered list of :class:`CampaignJob` -- one per (cell, repetition),
each carrying the derived seed and the fully-populated
:class:`~repro.harness.jobs.JobSpec`.  Execution then rides the PR-5
supervised harness unchanged: worker fan-out, per-job timeouts,
retries, the content-addressed result cache, and JSONL artifact
streaming (which is what makes an interrupted campaign resumable) all
come for free.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import machine as machine_mod
from repro.common.errors import ConfigurationError
from repro.designs.registry import ALL_DESIGN_NAMES
from repro.harness.artifacts import job_metrics
from repro.harness.jobs import JobResult, JobSpec, infer_workload_kind
from repro.harness.runner import Harness
from repro.obs.metrics import get_registry
from repro.campaign.spec import (
    FACTOR_FIELDS,
    CampaignSpec,
    Cell,
    is_machine_name,
)

#: Per-cell, per-repetition metric samples: the reduction input shared
#: by live runs and artifact replays.  ``results[cell_index][rep]`` is
#: the metric dict of that repetition; failed repetitions are absent.
CellResults = Dict[int, Dict[int, Dict[str, float]]]


@dataclasses.dataclass(frozen=True)
class CampaignJob:
    """One executable point: a cell, a repetition, and its job spec."""

    cell_index: int
    cell: Cell
    repetition: int
    seed: int
    spec: JobSpec


def _job_spec(campaign: CampaignSpec, cell: Cell, repetition: int,
              ) -> JobSpec:
    """Build the harness job for one (cell, repetition).

    Machine-layer names -- ``"preset"`` and dotted override paths --
    are collected into the job's :class:`MachineSpec` instead of
    mapping to a JobSpec field, so a study can vary any SystemConfig
    knob without the harness growing a scalar per knob.
    """
    kwargs: Dict[str, object] = {}
    preset = machine_mod.DEFAULT_PRESET
    overrides: Dict[str, object] = {}
    for name, value in (*campaign.fixed, *cell.assignment):
        if name == "preset":
            preset = str(value)
        elif is_machine_name(name):
            overrides[name] = value
        else:
            kwargs[FACTOR_FIELDS[name]] = value
    if preset != machine_mod.DEFAULT_PRESET or overrides:
        kwargs["machine"] = machine_mod.MachineSpec(
            preset=preset, overrides=overrides
        )
    design = kwargs.get("design")
    if design is None:
        raise ConfigurationError(
            "campaign needs 'design' as a factor or fixed setting"
        )
    if design not in ALL_DESIGN_NAMES:
        raise ConfigurationError(
            f"unknown design {design!r}; expected one of "
            f"{', '.join(ALL_DESIGN_NAMES)}"
        )
    scenario = kwargs.get("scenario")
    if scenario is not None:
        # Multi-tenant point: the scenario file is the workload recipe.
        # ``workload`` becomes a display label (defaulting to the file's
        # basename), not a profile/mix lookup.
        kind = "tenants"
        kwargs.setdefault(
            "workload",
            os.path.splitext(os.path.basename(str(scenario)))[0],
        )
        kwargs.setdefault("num_cores", 4)
    else:
        workload = kwargs.get("workload")
        if workload is None:
            raise ConfigurationError(
                "campaign needs 'workload' as a factor or fixed setting"
            )
        kind = infer_workload_kind(str(workload))
        kwargs.setdefault("num_cores", 1 if kind == "spec" else 4)
    kwargs["workload_kind"] = kind
    kwargs["base_seed"] = campaign.repetition_seed(cell, repetition)
    return JobSpec(**kwargs)


def expand(campaign: CampaignSpec) -> List[CampaignJob]:
    """Expand the factor grid into jobs, repetitions innermost.

    Deterministic: the same spec always expands to the same jobs in the
    same order, which is what lets ``campaign report`` re-associate
    artifact rows with cells and lets a resumed run address the exact
    cache entries its predecessor computed.
    """
    jobs: List[CampaignJob] = []
    cells = 0
    for cell_index, cell in enumerate(campaign.cells()):
        cells += 1
        for repetition in range(campaign.repetitions):
            spec = _job_spec(campaign, cell, repetition)
            jobs.append(CampaignJob(
                cell_index=cell_index,
                cell=cell,
                repetition=repetition,
                seed=spec.base_seed,
                spec=spec,
            ))
    registry = get_registry()
    registry.counter(
        "repro_campaign_cells_expanded_total",
        "Grid cells produced by campaign expansion").inc(cells)
    registry.counter(
        "repro_campaign_points_expanded_total",
        "(cell, repetition) points produced by campaign expansion",
    ).inc(len(jobs))
    return jobs


@dataclasses.dataclass
class CampaignRun:
    """Outcome of executing one campaign: jobs, results, and health."""

    campaign: CampaignSpec
    jobs: List[CampaignJob]
    outcomes: List[JobResult]

    def cell_results(self) -> CellResults:
        """Group successful outcomes into the reduction input."""
        results: CellResults = {}
        for job, outcome in zip(self.jobs, self.outcomes):
            if not outcome.ok:
                continue
            metrics = job_metrics(outcome.result)
            results.setdefault(job.cell_index, {})[job.repetition] = {
                key: value for key, value in metrics.items()
                if isinstance(value, (int, float))
            }
        return results

    def counters(self) -> Dict[str, int]:
        """Execution-health accounting for the run summary.

        ``computed`` counts points that actually ran this invocation
        (cache misses); ``resumed``/``cache_hits`` together say how much
        work a resume or a warm cache saved -- the counters the
        acceptance checks read to verify resume recomputes only what is
        missing.
        """
        counters = {
            "jobs": len(self.outcomes),
            "errors": 0,
            "timeouts": 0,
            "worker_crashes": 0,
            "retries": 0,
            "resumed": 0,
            "cache_hits": 0,
            "computed": 0,
        }
        for outcome in self.outcomes:
            counters["retries"] += outcome.retries
            if outcome.status == "timeout":
                counters["timeouts"] += 1
            elif outcome.status == "worker-crashed":
                counters["worker_crashes"] += 1
            elif outcome.status == "error":
                counters["errors"] += 1
            if outcome.cache_status == "resume":
                counters["resumed"] += 1
            elif outcome.cache_status == "hit":
                counters["cache_hits"] += 1
            elif outcome.ok:
                counters["computed"] += 1
        counters["errors"] += counters["timeouts"] + counters["worker_crashes"]
        return counters


def run_campaign(campaign: CampaignSpec, harness: Harness) -> CampaignRun:
    """Execute every (cell, repetition) of ``campaign`` through ``harness``."""
    jobs = expand(campaign)
    outcomes = harness.run([job.spec for job in jobs])
    return CampaignRun(campaign=campaign, jobs=jobs, outcomes=outcomes)


def _spec_identity(spec: JobSpec) -> str:
    """Code-version-independent identity of a job spec.

    Artifact rows embed the full spec dict; matching on its canonical
    JSON (rather than the cache key, which folds in the code
    fingerprint) lets ``campaign report`` reduce artifacts produced by
    an older build of the simulator.
    """
    return json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))


def results_from_artifact(campaign: CampaignSpec, path: str,
                          ) -> Tuple[List[CampaignJob], CellResults, int]:
    """Re-associate a prior run's artifact rows with the campaign grid.

    Returns ``(jobs, results, dropped_unknown)``: the expansion, the
    reduction input recovered from ``status=="ok"`` rows, and the
    count of rows refused because their spec dict carried keys this
    build does not know.  Such rows were written by a different schema;
    parsing them as a *narrower* job (the old silent-drop behaviour)
    would file a foreign result under the wrong cell, so they are
    skipped and counted instead -- the caller should surface the count.
    Rows that match no expanded job (edited study, foreign artifact)
    are ignored; the caller can diff ``len(jobs) * repetitions``
    against the recovered count to report missing points.  The last
    row per job wins, so chained resume artifacts reduce correctly.
    """
    jobs = expand(campaign)
    by_identity = {_spec_identity(job.spec): job for job in jobs}
    results: CellResults = {}
    dropped_unknown = 0
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # A torn trailing line (the run died mid-write) forfeits
                # that one row, not the whole artifact.
                continue
    for record in records:
        if record.get("record") != "job" or record.get("status") != "ok":
            continue
        spec_dict = record.get("spec")
        metrics = record.get("metrics")
        if not isinstance(spec_dict, dict) or not isinstance(metrics, dict):
            continue
        if JobSpec.unknown_keys(spec_dict):
            dropped_unknown += 1
            continue
        try:
            identity = _spec_identity(JobSpec.from_dict(spec_dict,
                                                        strict=True))
        except (ConfigurationError, TypeError):
            continue
        job = by_identity.get(identity)
        if job is None:
            continue
        results.setdefault(job.cell_index, {})[job.repetition] = {
            key: value for key, value in metrics.items()
            if isinstance(value, (int, float))
        }
    return jobs, results, dropped_unknown
