"""Declarative campaign specifications: factors x levels x repetitions.

A :class:`CampaignSpec` names a study once -- which factors vary
(design, workload, cache_mb, ...), over which levels, how many seeded
repetitions each cell runs, and which metrics the reduction reports --
and everything else follows mechanically: the compiler expands it into
:class:`~repro.harness.jobs.JobSpec` points, the harness executes them
with caching/timeouts/retries/resume, and the reporter reduces the
repetitions to means, confidence intervals and paired speedups.

Seed policy
-----------
Every (cell, repetition) pair gets a child seed derived with
:func:`repro.common.rng.derive_seed` from the campaign seed and the
cell's factor assignment **excluding the design factor**.  Two designs
evaluated on otherwise-identical cells therefore share their
per-repetition seeds -- the property that makes design-vs-baseline
speedup ratios *paired* statistics instead of comparisons of unrelated
draws.  Factor names are sorted before derivation, so reordering the
factors in a study file never re-rolls its seeds.

Specs load from JSON (anywhere) or TOML (Python >= 3.11) and hash
stably: :meth:`CampaignSpec.spec_hash` digests the canonical dict form,
so a campaign directory can detect that it is being resumed with an
edited study.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # Python >= 3.11; JSON studies keep 3.10 fully supported.
    import tomllib
except ImportError:  # pragma: no cover - exercised on py3.10 CI only
    tomllib = None

from repro.common import machine as machine_mod
from repro.common import rng
from repro.common.errors import ConfigurationError

#: Campaign factor name -> :class:`~repro.harness.jobs.JobSpec` field.
#: The same namespace serves ``factors`` (varied) and ``fixed``
#: (held constant); a name may appear in only one of the two.
#: Beyond these, two extra name forms address the machine-spec layer
#: (:mod:`repro.common.machine`): ``"preset"`` selects a named machine
#: preset, and any dotted path (``"dram_cache.gipt_in_package"``,
#: ``"core.model"``, ...) varies that :class:`SystemConfig` field
#: directly.  Both are validated at spec load, not at job time.
FACTOR_FIELDS: Dict[str, str] = {
    "design": "design",
    "workload": "workload",
    "accesses": "accesses",
    "cache_mb": "cache_megabytes",
    "cores": "num_cores",
    "replacement": "replacement",
    "scale": "capacity_scale",
    "warmup": "warmup_fraction",
    "parsec_threads": "parsec_threads",
    "nc_threshold": "nc_threshold",
    "scenario": "scenario",
}

#: Metrics a campaign may reduce -- the scalar keys of
#: :func:`repro.harness.artifacts.job_metrics`.  The ``tenant_*`` and
#: ``resize_*`` keys exist only on multi-tenant / resizable-design jobs;
#: reducing them in a campaign whose jobs do not produce them fails at
#: reduction time with a missing-metric diagnostic.
METRIC_KEYS = ("ipc", "instructions", "elapsed_ms",
               "mean_l3_latency_cycles", "energy_j", "edp_js",
               "tenant_p99_demand_ns", "tenant_ipc_min",
               "resize_remapped_pages")


def is_machine_name(name: str) -> bool:
    """True if a factor/fixed name addresses the machine-spec layer."""
    return name == "preset" or "." in name


def _check_machine_level(name: str, value: object) -> None:
    """Validate one level of a machine factor (raises ConfigurationError)."""
    if name == "preset":
        if not isinstance(value, str) or value not in machine_mod.PRESETS:
            raise ConfigurationError(
                f"unknown machine preset {value!r}; expected one of "
                f"{', '.join(sorted(machine_mod.PRESETS))}"
            )
    else:
        # Raises with the full path/type/frozen diagnostics on bad input.
        machine_mod.coerce_override(name, value)


@dataclasses.dataclass(frozen=True)
class Cell:
    """One point of the factor grid: an ordered factor assignment."""

    assignment: Tuple[Tuple[str, object], ...]

    def get(self, factor: str) -> object:
        for name, level in self.assignment:
            if name == factor:
                return level
        raise KeyError(factor)

    def as_dict(self) -> Dict[str, object]:
        return dict(self.assignment)

    @property
    def label(self) -> str:
        """``factor=level`` pairs in declaration order."""
        return " ".join(f"{name}={level}" for name, level in self.assignment)

    def pairing_assignment(self) -> Tuple[Tuple[str, object], ...]:
        """The assignment without the design factor, sorted by name.

        This is the identity of a *pairing group*: cells equal under it
        differ only in design and share per-repetition seeds.
        """
        return tuple(sorted(
            (name, level) for name, level in self.assignment
            if name != "design"
        ))

    @property
    def pairing_label(self) -> str:
        return " ".join(f"{name}={level}"
                        for name, level in self.pairing_assignment())


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """Everything that defines one study, independent of execution."""

    name: str
    factors: Tuple[Tuple[str, Tuple[object, ...]], ...]
    repetitions: int = 3
    fixed: Tuple[Tuple[str, object], ...] = ()
    metrics: Tuple[str, ...] = ("ipc",)
    #: Design level every other design is compared against in the
    #: paired-speedup tables; defaults to the first design level.
    baseline: Optional[str] = None
    #: Campaign seed all per-repetition seeds derive from; ``None``
    #: means the library default (:data:`repro.common.rng.BASE_SEED`).
    seed: Optional[int] = None
    confidence: float = 0.95
    bootstrap_resamples: int = 2000

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("campaign needs a non-empty name")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if not self.factors:
            raise ConfigurationError("campaign needs at least one factor")
        seen = set()
        for factor, levels in self.factors:
            if factor not in FACTOR_FIELDS and not is_machine_name(factor):
                raise ConfigurationError(
                    f"unknown factor {factor!r}; expected one of "
                    f"{', '.join(sorted(FACTOR_FIELDS))}, 'preset', or a "
                    f"dotted machine override path such as "
                    f"'dram_cache.gipt_in_package'"
                )
            if factor in seen:
                raise ConfigurationError(f"duplicate factor {factor!r}")
            seen.add(factor)
            if not levels:
                raise ConfigurationError(
                    f"factor {factor!r} needs at least one level"
                )
            if len(set(levels)) != len(levels):
                raise ConfigurationError(
                    f"factor {factor!r} has duplicate levels"
                )
            if is_machine_name(factor):
                for level in levels:
                    _check_machine_level(factor, level)
        for name, value in self.fixed:
            if name not in FACTOR_FIELDS and not is_machine_name(name):
                raise ConfigurationError(
                    f"unknown fixed setting {name!r}; expected one of "
                    f"{', '.join(sorted(FACTOR_FIELDS))}, 'preset', or a "
                    f"dotted machine override path"
                )
            if name in seen:
                raise ConfigurationError(
                    f"{name!r} appears in both factors and fixed"
                )
            if is_machine_name(name):
                _check_machine_level(name, value)
        for metric in self.metrics:
            if metric not in METRIC_KEYS:
                raise ConfigurationError(
                    f"unknown metric {metric!r}; expected one of "
                    f"{', '.join(METRIC_KEYS)}"
                )
        if not self.metrics:
            raise ConfigurationError("campaign needs at least one metric")
        if self.baseline is not None:
            designs = self.design_levels()
            if self.baseline not in designs:
                raise ConfigurationError(
                    f"baseline {self.baseline!r} is not a design level "
                    f"({', '.join(str(d) for d in designs) or 'none'})"
                )
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError("confidence must be in (0, 1)")
        if self.bootstrap_resamples < 1:
            raise ConfigurationError("bootstrap_resamples must be >= 1")

    # ------------------------------------------------------------------
    @property
    def campaign_seed(self) -> int:
        return self.seed if self.seed is not None else rng.BASE_SEED

    def design_levels(self) -> Tuple[object, ...]:
        for factor, levels in self.factors:
            if factor == "design":
                return levels
        return ()

    @property
    def effective_baseline(self) -> Optional[str]:
        """The baseline design: explicit, else the first design level."""
        if self.baseline is not None:
            return self.baseline
        designs = self.design_levels()
        return str(designs[0]) if len(designs) >= 2 else None

    def cells(self) -> List[Cell]:
        """The full factor grid, in declaration order (rightmost fastest)."""
        names = [factor for factor, _levels in self.factors]
        level_lists = [levels for _factor, levels in self.factors]
        return [
            Cell(assignment=tuple(zip(names, combo)))
            for combo in itertools.product(*level_lists)
        ]

    def repetition_seed(self, cell: Cell, repetition: int) -> int:
        """The RNG base seed for one (cell, repetition) run.

        Derived from everything *except* the design factor so designs
        sharing a pairing group share seeds (see the module docstring).
        """
        components: List[object] = ["campaign"]
        for name, level in cell.pairing_assignment():
            components.extend((name, level))
        components.extend(("rep", repetition))
        return rng.derive_seed(self.campaign_seed, *components)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "factors": {factor: list(levels)
                        for factor, levels in self.factors},
            "repetitions": self.repetitions,
            "fixed": dict(self.fixed),
            "metrics": list(self.metrics),
            "baseline": self.baseline,
            "seed": self.seed,
            "confidence": self.confidence,
            "bootstrap_resamples": self.bootstrap_resamples,
        }

    def spec_hash(self) -> str:
        """Stable 16-hex-digit digest of the canonical spec content."""
        text = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError("campaign spec must be a mapping")
        known = {"name", "factors", "repetitions", "fixed", "metrics",
                 "baseline", "seed", "confidence", "bootstrap_resamples"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown campaign keys: {', '.join(unknown)}"
            )
        factors = data.get("factors")
        if not isinstance(factors, Mapping):
            raise ConfigurationError(
                "campaign 'factors' must be a mapping of factor -> levels"
            )
        factor_items = []
        for factor, levels in factors.items():
            if not isinstance(levels, Sequence) or isinstance(levels, str):
                raise ConfigurationError(
                    f"levels of factor {factor!r} must be a list"
                )
            factor_items.append((str(factor), tuple(levels)))
        fixed = data.get("fixed", {})
        if not isinstance(fixed, Mapping):
            raise ConfigurationError("campaign 'fixed' must be a mapping")
        metrics = data.get("metrics", ["ipc"])
        if not isinstance(metrics, Sequence) or isinstance(metrics, str):
            raise ConfigurationError("campaign 'metrics' must be a list")
        return cls(
            name=str(data.get("name", "")),
            factors=tuple(factor_items),
            repetitions=int(data.get("repetitions", 3)),
            fixed=tuple((str(k), v) for k, v in fixed.items()),
            metrics=tuple(str(m) for m in metrics),
            baseline=(None if data.get("baseline") is None
                      else str(data["baseline"])),
            seed=(None if data.get("seed") is None
                  else int(data["seed"])),
            confidence=float(data.get("confidence", 0.95)),
            bootstrap_resamples=int(data.get("bootstrap_resamples", 2000)),
        )

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        """Load a study from a ``.json`` or ``.toml`` file."""
        if path.endswith(".toml"):
            if tomllib is None:
                raise ConfigurationError(
                    "TOML studies need Python >= 3.11 (tomllib); "
                    "use the JSON form on this interpreter"
                )
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        else:
            with open(path) as handle:
                try:
                    data = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{path} is not valid JSON: {exc}"
                    ) from None
        return cls.from_dict(data)
