"""Report formatting: paper-style tables and normalised series.

Every benchmark prints its figure/table through these helpers so that the
output is uniform and easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.common.stats import geometric_mean


def normalize_to(
    values: Mapping[str, float], baseline_key: str
) -> Dict[str, float]:
    """Divide every value by the baseline entry's value.

    >>> normalize_to({"a": 2.0, "b": 3.0}, "a")
    {'a': 1.0, 'b': 1.5}
    """
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError(f"baseline {baseline_key!r} is zero; cannot normalise")
    return {key: value / baseline for key, value in values.items()}


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned text table with a title rule."""
    header = [str(c) for c in columns]
    body: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        body.append(rendered)
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def geomean_row(
    label: str, series: Sequence[Mapping[str, float]], keys: Sequence[str]
) -> List[object]:
    """Geometric-mean summary row over a list of per-workload dicts."""
    row: List[object] = [label]
    for key in keys:
        row.append(geometric_mean([entry[key] for entry in series]))
    return row


def percent_delta(new: float, old: float) -> float:
    """Relative change in percent: +10.0 means ``new`` is 10 % above."""
    if old == 0:
        raise ValueError("cannot compute a delta against zero")
    return 100.0 * (new - old) / old
