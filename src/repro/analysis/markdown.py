"""Markdown rendering for experiment results.

The plain-text tables of :mod:`repro.analysis.report` are what the
benchmarks print; this module renders the same data as GitHub-flavoured
markdown so EXPERIMENTS.md can be refreshed mechanically.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def markdown_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a GitHub-flavoured markdown table."""
    header = "| " + " | ".join(str(c) for c in columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    lines = [header, rule]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def normalized_series_markdown(
    title: str,
    series: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
) -> str:
    """Render {row label -> {column -> value}} under a heading.

    Used for normalised IPC/EDP blocks: rows are workloads, columns are
    designs.
    """
    rows: List[List[object]] = []
    for label, values in series.items():
        rows.append([label] + [values[c] for c in columns])
    return f"### {title}\n\n" + markdown_table(
        ["workload"] + list(columns), rows
    )


def experiment_section(
    heading: str,
    description: str,
    tables: Sequence[str],
) -> str:
    """Assemble one experiment's markdown section."""
    body = "\n\n".join(tables)
    return f"## {heading}\n\n{description}\n\n{body}\n"
